//! The unified experiment driver behind the `cac` CLI.
//!
//! The paper's evaluation is a matrix of experiments (the Figure 1
//! stride sweep, Tables 1–3, the §3.1 option studies, the §3.3 hole
//! model, plus this workspace's ablations). Historically each lived in
//! its own binary under `src/bin/` with ad-hoc output; this module
//! subsumes them all behind one registry:
//!
//! * every experiment is a function from parsed parameters
//!   ([`args::ExpArgs`]) to a structured [`report::Report`];
//! * the `cac` binary dispatches subcommands (`cac fig1`, `cac table2`,
//!   `cac trace convert`, ...) to the registry and renders the report as
//!   text, JSON or CSV (`--format`), to stdout or a file (`--out`);
//! * the retired per-experiment binaries remain as thin shims over
//!   [`legacy_main`], which maps their positional arguments onto the
//!   same experiment functions — same code path, same numbers.
//!
//! # Example
//!
//! ```
//! use cac_bench::driver;
//!
//! let words = vec!["--max-stride".to_owned(), "16".to_owned(), "--passes".to_owned(), "2".to_owned()];
//! let report = driver::run_experiment("fig1", &words).unwrap();
//! assert!(report.to_text().contains("pathological"));
//! ```

pub mod args;
pub mod experiments;
pub mod report;

use args::{ExpArgs, ParamSpec};
use report::{OutputFormat, Report};
use std::fmt;
use std::io::Write as _;

/// Error produced by the driver or an experiment.
///
/// The variants define the `cac` exit-code contract:
///
/// | exit | meaning                                                    |
/// |------|------------------------------------------------------------|
/// | 0    | success                                                    |
/// | 1    | ran to completion but the report carries failures          |
/// | 2    | usage error (unknown command, malformed parameters)        |
/// | 3    | input error (unreadable/corrupt trace, bad config file)    |
#[derive(Debug)]
pub enum DriverError {
    /// The command line (or a parameter value) was invalid; exit code 2.
    Usage(String),
    /// The experiment itself failed mid-flight; exit code 1.
    Failed(String),
    /// An input file was missing, unreadable, undecodable, or refused
    /// (config rot, trace corruption under strict decode, stale
    /// checkpoint); exit code 3.
    Input(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Usage(m) | DriverError::Failed(m) | DriverError::Input(m) => {
                f.write_str(m)
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl From<cac_core::Error> for DriverError {
    fn from(e: cac_core::Error) -> Self {
        DriverError::Failed(e.to_string())
    }
}

impl From<std::io::Error> for DriverError {
    fn from(e: std::io::Error) -> Self {
        DriverError::Failed(e.to_string())
    }
}

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Subcommand name (`cac <name>`).
    pub name: &'static str,
    /// Name of the retired standalone binary this subcommand subsumes
    /// (`None` for commands new to the unified CLI).
    pub legacy_bin: Option<&'static str>,
    /// Help grouping.
    pub group: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Declared parameters.
    pub params: &'static [ParamSpec],
    /// The experiment body.
    pub run: fn(&ExpArgs) -> Result<Report, DriverError>,
}

impl fmt::Debug for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("legacy_bin", &self.legacy_bin)
            .finish_non_exhaustive()
    }
}

/// The full experiment registry, in help-display order.
pub fn experiments() -> &'static [Experiment] {
    experiments::REGISTRY
}

/// Looks an experiment up by subcommand name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    experiments().iter().find(|e| e.name == name)
}

/// Looks an experiment up by the name of the standalone binary it
/// retired.
pub fn find_legacy(bin: &str) -> Option<&'static Experiment> {
    experiments().iter().find(|e| e.legacy_bin == Some(bin))
}

/// Parses `words` against the experiment's declared parameters and runs
/// it. This is the programmatic entry the CLI, the shims and the tests
/// all share.
///
/// # Errors
///
/// [`DriverError::Usage`] for unknown experiments or malformed
/// parameters; whatever the experiment itself reports otherwise.
pub fn run_experiment(name: &str, words: &[String]) -> Result<Report, DriverError> {
    let exp = find(name)
        .ok_or_else(|| DriverError::Usage(format!("unknown command {name:?}; try `cac list`")))?;
    let parsed = ExpArgs::parse(exp.params, words)?;
    (exp.run)(&parsed)
}

fn usage() -> String {
    let mut out = String::new();
    out.push_str(
        "cac — experiment driver for the conflict-avoiding-cache reproduction\n\
         \n\
         USAGE:\n\
         \x20   cac [--format text|json|csv] [--out FILE] <command> [--param value ...]\n\
         \x20   cac help <command>     show a command's parameters\n\
         \x20   cac list               one line per command\n\
         \x20   cac --version          print the driver version\n\
         \n\
         Parameters may also be given positionally in declaration order, exactly\n\
         as the retired per-experiment binaries accepted them.\n\
         \n\
         Exit codes: 0 success; 1 report carries failures; 2 usage error;\n\
         3 input error (unreadable/corrupt trace, bad config, stale checkpoint).\n",
    );
    let mut group = "";
    for e in experiments() {
        if e.group != group {
            group = e.group;
            out.push_str(&format!("\n{group}:\n"));
        }
        let legacy = match e.legacy_bin {
            Some(b) => format!("  (was: {b})"),
            None => String::new(),
        };
        out.push_str(&format!("    {:<22} {}{legacy}\n", e.name, e.summary));
    }
    out
}

fn command_help(e: &Experiment) -> String {
    let mut out = format!("cac {} — {}\n", e.name, e.summary);
    if let Some(b) = e.legacy_bin {
        out.push_str(&format!("(subsumes the retired `{b}` binary)\n"));
    }
    if e.params.is_empty() {
        out.push_str("\nno parameters\n");
    } else {
        out.push_str("\nparameters:\n");
        for p in e.params {
            let default = if p.default.is_empty() {
                "unset".to_owned()
            } else {
                format!("default {}", p.default)
            };
            out.push_str(&format!("    --{:<18} {} [{default}]\n", p.name, p.help));
        }
    }
    out
}

/// Full CLI entry point for the `cac` binary. Returns the process exit
/// code: 0 on success, 1 when the run completed but its report carries
/// failures (degraded sweep rows, damaged trace blocks), 2 on usage
/// errors, 3 on input errors (see [`DriverError`]).
pub fn cli_main(raw: Vec<String>) -> i32 {
    let mut format = OutputFormat::Text;
    let mut out_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    // Global flags may precede the subcommand; everything after it is
    // handed to the experiment's own parser.
    while let Some(w) = it.next() {
        match w.as_str() {
            "--format" | "-f" => match it.next().as_deref().and_then(OutputFormat::parse) {
                Some(f) => format = f,
                None => {
                    eprintln!("--format expects one of: text, json, csv");
                    return 2;
                }
            },
            "--out" | "-o" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out expects a file path");
                    return 2;
                }
            },
            "--help" | "-h" | "help" if rest.is_empty() => {
                rest.push("help".to_owned());
                rest.extend(it.by_ref());
            }
            "--version" | "-V" if rest.is_empty() => {
                println!("cac {}", env!("CARGO_PKG_VERSION"));
                return 0;
            }
            _ => {
                rest.push(w);
                rest.extend(it.by_ref());
            }
        }
    }
    let Some(command) = rest.first().cloned() else {
        print!("{}", usage());
        return 2;
    };
    let mut words = rest[1..].to_vec();
    match command.as_str() {
        "help" => {
            if words.is_empty() {
                print!("{}", usage());
                return 0;
            }
            let topic = words.remove(0);
            let name = canonical_name(&topic, &mut words);
            match find(&name) {
                Some(e) => {
                    print!("{}", command_help(e));
                    0
                }
                None => {
                    eprintln!("unknown command {name:?}; try `cac list`");
                    2
                }
            }
        }
        "list" => {
            for e in experiments() {
                println!("{:<22} {}", e.name, e.summary);
            }
            0
        }
        _ => {
            let name = canonical_name(&command, &mut words);
            if let Err(m) = extract_global_flags(&name, &mut words, &mut format, &mut out_path) {
                eprintln!("{m}");
                return 2;
            }
            match run_experiment(&name, &words) {
                Ok(report) => {
                    // A report that completed but carries failure rows
                    // (degraded sweep cells, skipped trace blocks)
                    // still renders in full — the exit code flags it.
                    let ok = if report.failures == 0 { 0 } else { 1 };
                    let rendered = report.render(format);
                    match &out_path {
                        None => {
                            print!("{rendered}");
                            ok
                        }
                        Some(path) => match std::fs::File::create(path)
                            .and_then(|mut f| f.write_all(rendered.as_bytes()))
                        {
                            Ok(()) => ok,
                            Err(e) => {
                                eprintln!("cannot write {path}: {e}");
                                1
                            }
                        },
                    }
                }
                Err(DriverError::Usage(m)) => {
                    eprintln!("{m}");
                    if let Some(e) = find(&name) {
                        eprint!("{}", command_help(e));
                    }
                    2
                }
                Err(DriverError::Failed(m)) => {
                    eprintln!("{name} failed: {m}");
                    1
                }
                Err(DriverError::Input(m)) => {
                    eprintln!("{name}: {m}");
                    3
                }
            }
        }
    }
}

/// Resolves the two-word `trace <sub>` / `config <sub>` /
/// `bench <sub>` / `analytic <sub>` / `corpus <sub>` spellings to the
/// registered `trace-<sub>` / `config-<sub>` / `bench-<sub>` /
/// `analytic-<sub>` / `corpus-<sub>` experiment names, consuming the
/// sub-word from `words`.
fn canonical_name(command: &str, words: &mut Vec<String>) -> String {
    if matches!(
        command,
        "trace" | "config" | "bench" | "analytic" | "corpus"
    ) {
        if let Some(first) = words.first() {
            if !first.starts_with("--") {
                let sub = words.remove(0);
                return format!("{command}-{sub}");
            }
        }
    }
    command.to_owned()
}

/// Lifts global `--format`/`--out` flags given *after* the subcommand
/// (`cac bench sweep --format json`) out of the experiment's words —
/// unless the experiment declares a parameter of that name itself
/// (`cac trace gen --format binary` stays an experiment flag).
///
/// Returns a usage-error message for a malformed global flag value.
fn extract_global_flags(
    name: &str,
    words: &mut Vec<String>,
    format: &mut OutputFormat,
    out_path: &mut Option<String>,
) -> Result<(), String> {
    let declared = |flag: &str| find(name).is_some_and(|e| e.params.iter().any(|p| p.name == flag));
    let mut i = 0;
    while i < words.len() {
        let (flag, inline) = match words[i].split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (words[i].clone(), None),
        };
        let is_format = matches!(flag.as_str(), "--format" | "-f") && !declared("format");
        let is_out = matches!(flag.as_str(), "--out" | "-o") && !declared("out");
        if !is_format && !is_out {
            i += 1;
            continue;
        }
        words.remove(i);
        let value = match inline {
            Some(v) => v,
            None => {
                if i < words.len() {
                    words.remove(i)
                } else {
                    return Err(format!("{flag} expects a value"));
                }
            }
        };
        if is_format {
            *format = OutputFormat::parse(&value)
                .ok_or_else(|| "--format expects one of: text, json, csv".to_owned())?;
        } else {
            *out_path = Some(value);
        }
    }
    Ok(())
}

/// Entry point for the retired per-experiment binaries: maps their
/// positional `std::env::args` onto the registered experiment and
/// prints the text report, preserving the old invocation style
/// (`fig1_stride_sweep [max_stride] [passes]`). Returns the exit code.
pub fn legacy_main(legacy_bin: &str) -> i32 {
    let Some(exp) = find_legacy(legacy_bin) else {
        eprintln!("driver bug: no experiment registered for {legacy_bin}");
        return 1;
    };
    eprintln!(
        "note: `{legacy_bin}` is now `cac {}`; this shim forwards to it",
        exp.name
    );
    let words: Vec<String> = std::env::args().skip(1).collect();
    match run_experiment(exp.name, &words) {
        Ok(report) => {
            print!("{}", report.to_text());
            0
        }
        Err(DriverError::Usage(m)) => {
            eprintln!("{m}");
            2
        }
        // The retired binaries only ever distinguished 0/1/2, so input
        // errors collapse to 1 here to keep their contract stable.
        Err(DriverError::Failed(m)) | Err(DriverError::Input(m)) => {
            eprintln!("{legacy_bin} failed: {m}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let mut names = std::collections::BTreeSet::new();
        let mut legacy = std::collections::BTreeSet::new();
        for e in experiments() {
            assert!(names.insert(e.name), "duplicate command {}", e.name);
            assert!(!e.summary.is_empty(), "{} needs a summary", e.name);
            if let Some(b) = e.legacy_bin {
                assert!(legacy.insert(b), "duplicate legacy bin {b}");
            }
        }
        // Every retired binary keeps exactly one subcommand.
        assert_eq!(legacy.len(), 24, "24 retired binaries must stay covered");
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(matches!(
            run_experiment("nope", &[]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn trace_subcommands_resolve() {
        let mut words = vec!["gen".to_owned(), "--ops".to_owned(), "5".to_owned()];
        assert_eq!(canonical_name("trace", &mut words), "trace-gen");
        assert_eq!(words, vec!["--ops", "5"]);
        let mut words = vec!["validate".to_owned(), "a.toml".to_owned()];
        assert_eq!(canonical_name("config", &mut words), "config-validate");
        assert_eq!(words, vec!["a.toml"]);
        let mut words = vec!["sweep".to_owned()];
        assert_eq!(canonical_name("bench", &mut words), "bench-sweep");
        let mut none: Vec<String> = Vec::new();
        assert_eq!(canonical_name("fig1", &mut none), "fig1");
    }

    #[test]
    fn trailing_global_flags_are_lifted_unless_declared() {
        use report::OutputFormat;
        // `cac bench sweep --ops 9 --format json`: --format is global.
        let mut words: Vec<String> = ["--ops", "9", "--format", "json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let mut format = OutputFormat::Text;
        let mut out = None;
        extract_global_flags("bench-sweep", &mut words, &mut format, &mut out).unwrap();
        assert_eq!(format, OutputFormat::Json);
        assert_eq!(words, vec!["--ops", "9"]);

        // `cac trace gen --format binary`: trace-gen declares --format,
        // so it stays an experiment flag.
        let mut words: Vec<String> = ["--format=binary", "--out=x.bin"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let mut format = OutputFormat::Text;
        let mut out = None;
        extract_global_flags("trace-gen", &mut words, &mut format, &mut out).unwrap();
        assert_eq!(format, OutputFormat::Text);
        assert!(out.is_none());
        assert_eq!(words, vec!["--format=binary", "--out=x.bin"]);

        // Malformed values are usage errors.
        let mut words = vec!["--format".to_owned()];
        let mut format = OutputFormat::Text;
        let mut out = None;
        assert!(extract_global_flags("fig1", &mut words, &mut format, &mut out).is_err());
        let mut words = vec!["--format".to_owned(), "yaml".to_owned()];
        assert!(extract_global_flags("fig1", &mut words, &mut format, &mut out).is_err());
    }
}

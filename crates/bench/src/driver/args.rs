//! Experiment parameter parsing.
//!
//! Every experiment declares its parameters as a static [`ParamSpec`]
//! slice (name, default, help). The CLI accepts them as `--name value`
//! or `--name=value` in any order, or positionally in declaration order
//! — the latter is exactly the interface of the retired per-experiment
//! binaries, so the thin compatibility shims forward their positional
//! arguments unchanged.

use super::DriverError;
use std::collections::BTreeMap;

/// Declaration of one experiment parameter.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Flag name (`--name`).
    pub name: &'static str,
    /// Default value, as a string ("" means "no value").
    pub default: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Variadic: surplus positional arguments append to this parameter
    /// (newline-separated, so values containing spaces survive), so
    /// `cac config validate examples/*.toml` collects every
    /// shell-expanded path. Read the result with [`ExpArgs::list`].
    pub variadic: bool,
}

/// Convenience constructor used by the experiment registry.
pub const fn param(name: &'static str, default: &'static str, help: &'static str) -> ParamSpec {
    ParamSpec {
        name,
        default,
        help,
        variadic: false,
    }
}

/// Variadic-parameter constructor; see [`ParamSpec::variadic`].
pub const fn vparam(name: &'static str, default: &'static str, help: &'static str) -> ParamSpec {
    ParamSpec {
        name,
        default,
        help,
        variadic: true,
    }
}

/// Parsed parameter values for one experiment invocation.
#[derive(Debug, Clone, Default)]
pub struct ExpArgs {
    values: BTreeMap<&'static str, String>,
}

impl ExpArgs {
    /// Builds from raw CLI words against the declared specs, accepting
    /// `--name value`, `--name=value`, and bare positional values (bound
    /// to the specs in declaration order). A parameter whose default is
    /// `"true"`/`"false"` is a boolean flag and may stand alone
    /// (`--verify` means `--verify true`).
    ///
    /// # Errors
    ///
    /// [`DriverError::Usage`] on unknown flags, repeated or surplus
    /// values, or a non-boolean flag without a value.
    pub fn parse(specs: &'static [ParamSpec], words: &[String]) -> Result<Self, DriverError> {
        let mut args = ExpArgs::default();
        for spec in specs {
            args.values.insert(spec.name, spec.default.to_owned());
        }
        let mut positional = specs.iter();
        let mut explicit: Vec<&str> = Vec::new();
        let mut open_variadic: Option<&'static str> = None;
        let mut i = 0;
        while i < words.len() {
            let w = &words[i];
            if let Some(flag) = w.strip_prefix("--") {
                let (name, value) = match flag.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_owned())),
                    None => (flag, words.get(i + 1).cloned()),
                };
                let spec = specs.iter().find(|s| s.name == name).ok_or_else(|| {
                    DriverError::Usage(format!(
                        "unknown flag --{name}; valid: {}",
                        specs
                            .iter()
                            .map(|s| format!("--{}", s.name))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ))
                })?;
                let boolean = matches!(spec.default, "true" | "false");
                let value = match value {
                    // A boolean flag may stand alone (`--verify`); the
                    // next word is only its value when it isn't a flag.
                    Some(v) if boolean && !flag.contains('=') => {
                        if v.starts_with("--") {
                            "true".to_owned()
                        } else {
                            i += 1;
                            v
                        }
                    }
                    Some(v) => {
                        if !flag.contains('=') {
                            i += 1;
                        }
                        v
                    }
                    None if boolean => "true".to_owned(),
                    None => return Err(DriverError::Usage(format!("flag --{flag} needs a value"))),
                };
                if explicit.contains(&spec.name) {
                    return Err(DriverError::Usage(format!("--{name} given twice")));
                }
                explicit.push(spec.name);
                args.values.insert(spec.name, value);
            } else if let Some(name) = open_variadic {
                // A positionally-bound variadic parameter swallows every
                // later positional, so `cac analytic validate a.toml
                // b.toml --trace t.bin` collects both paths into
                // `configs` while later specs stay reachable by flag.
                let joined = args.values.get_mut(name).expect("declared");
                joined.push('\n');
                joined.push_str(w);
            } else {
                // Positional: next spec not yet bound explicitly; a
                // variadic spec keeps collecting (above), and surplus
                // positionals past the last spec fall back to the last
                // variadic spec if any.
                match positional.by_ref().find(|s| !explicit.contains(&s.name)) {
                    Some(spec) => {
                        explicit.push(spec.name);
                        args.values.insert(spec.name, w.clone());
                        if spec.variadic {
                            open_variadic = Some(spec.name);
                        }
                    }
                    None => {
                        let spec = specs.iter().rev().find(|s| s.variadic).ok_or_else(|| {
                            DriverError::Usage(format!("unexpected positional argument {w:?}"))
                        })?;
                        let joined = args.values.get_mut(spec.name).expect("declared");
                        if !joined.is_empty() {
                            joined.push('\n');
                        }
                        joined.push_str(w);
                    }
                }
            }
            i += 1;
        }
        Ok(args)
    }

    /// Raw string value of a declared parameter.
    ///
    /// # Panics
    ///
    /// If `name` was not declared — a driver bug, not a user error.
    pub fn str(&self, name: &str) -> &str {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("parameter {name} not declared"))
    }

    /// `true` if the parameter has a non-empty value.
    pub fn is_set(&self, name: &str) -> bool {
        !self.str(name).is_empty()
    }

    /// A variadic parameter's collected values (one per surplus
    /// positional argument; empty when unset). Values may contain
    /// spaces — the accumulator separates entries with newlines.
    pub fn list(&self, name: &str) -> Vec<&str> {
        self.str(name)
            .split('\n')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect()
    }

    fn parse_as<T: std::str::FromStr>(&self, name: &str) -> Result<T, DriverError> {
        let raw = self.str(name);
        raw.parse().map_err(|_| {
            DriverError::Usage(format!(
                "--{name} expects a {}, got {raw:?}",
                std::any::type_name::<T>()
            ))
        })
    }

    /// The parameter as a `u64`.
    ///
    /// # Errors
    ///
    /// [`DriverError::Usage`] when the value does not parse.
    pub fn u64(&self, name: &str) -> Result<u64, DriverError> {
        self.parse_as(name)
    }

    /// The parameter as a `usize`.
    ///
    /// # Errors
    ///
    /// [`DriverError::Usage`] when the value does not parse.
    pub fn usize(&self, name: &str) -> Result<usize, DriverError> {
        self.parse_as(name)
    }

    /// The parameter as a `u32`.
    ///
    /// # Errors
    ///
    /// [`DriverError::Usage`] when the value does not parse.
    pub fn u32(&self, name: &str) -> Result<u32, DriverError> {
        self.parse_as(name)
    }

    /// Sets a value programmatically (used by tests and the shims).
    pub fn set(&mut self, name: &'static str, value: impl ToString) {
        self.values.insert(name, value.to_string());
    }

    /// Effective `(name, value)` pairs in declaration order, for the
    /// report's parameter echo.
    pub fn echo(&self, specs: &'static [ParamSpec]) -> Vec<(String, String)> {
        specs
            .iter()
            .map(|s| (s.name.to_owned(), self.str(s.name).to_owned()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[ParamSpec] = &[
        param("ops", "1000", "instructions per benchmark"),
        param("seed", "5", "workload seed"),
        param("label", "", "optional label"),
    ];

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_flags_and_positionals() {
        let a = ExpArgs::parse(SPECS, &[]).unwrap();
        assert_eq!(a.u64("ops").unwrap(), 1000);
        assert!(!a.is_set("label"));

        let a = ExpArgs::parse(SPECS, &words(&["--seed", "9", "--label=x"])).unwrap();
        assert_eq!(a.u64("seed").unwrap(), 9);
        assert_eq!(a.str("label"), "x");

        // Positionals bind in declaration order, skipping explicit flags.
        let a = ExpArgs::parse(SPECS, &words(&["--ops", "7", "11"])).unwrap();
        assert_eq!(a.u64("ops").unwrap(), 7);
        assert_eq!(a.u64("seed").unwrap(), 11);
    }

    #[test]
    fn variadic_param_collects_surplus_positionals() {
        const V: &[ParamSpec] = &[
            param("mode", "check", "validation mode"),
            vparam("files", "", "files to validate"),
        ];
        let a = ExpArgs::parse(V, &words(&["strict", "a.toml", "b.toml", "c.toml"])).unwrap();
        assert_eq!(a.str("mode"), "strict");
        assert_eq!(a.list("files"), vec!["a.toml", "b.toml", "c.toml"]);
        // A single-variadic-spec experiment takes any number of files,
        // including paths with spaces.
        const JUST_FILES: &[ParamSpec] = &[vparam("files", "", "files")];
        let a = ExpArgs::parse(JUST_FILES, &words(&["x.toml", "my dir/y.toml"])).unwrap();
        assert_eq!(a.list("files"), vec!["x.toml", "my dir/y.toml"]);
        // Without a variadic spec, surplus positionals stay an error.
        assert!(matches!(
            ExpArgs::parse(SPECS, &words(&["1", "2", "3", "4"])),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn variadic_first_swallows_positionals_but_leaves_flags() {
        // The `analytic validate` shape: the variadic spec comes first
        // and later specs are reachable only by flag — every positional
        // after the first must append to the variadic parameter, not
        // bind `trace`.
        const V: &[ParamSpec] = &[
            vparam("configs", "", "config files"),
            param("trace", "", "trace file"),
            param("ops", "1000", "refs"),
        ];
        let a = ExpArgs::parse(
            V,
            &words(&["a.toml", "b.toml", "--trace", "t.bin", "c.toml"]),
        )
        .unwrap();
        assert_eq!(a.list("configs"), vec!["a.toml", "b.toml", "c.toml"]);
        assert_eq!(a.str("trace"), "t.bin");
        assert_eq!(a.u64("ops").unwrap(), 1000);
        // Explicitly-set variadic flags do not swallow positionals.
        let a = ExpArgs::parse(V, &words(&["--configs", "a.toml", "t.bin"])).unwrap();
        assert_eq!(a.list("configs"), vec!["a.toml"]);
        assert_eq!(a.str("trace"), "t.bin");
    }

    #[test]
    fn boolean_flags_stand_alone() {
        const B: &[ParamSpec] = &[
            param("input", "", "file"),
            param("verify", "false", "audit"),
            param("format", "text", "renderer"),
        ];
        // Bare at the end, bare before another flag, and explicit forms.
        for ws in [
            vec!["t.bin", "--verify"],
            vec!["t.bin", "--verify", "--format", "text"],
            vec!["t.bin", "--verify=true"],
            vec!["t.bin", "--verify", "true"],
        ] {
            let a = ExpArgs::parse(B, &words(&ws)).unwrap();
            assert_eq!(a.str("verify"), "true", "{ws:?}");
            assert_eq!(a.str("input"), "t.bin", "{ws:?}");
            assert_eq!(a.str("format"), "text", "{ws:?}");
        }
        let a = ExpArgs::parse(B, &words(&["t.bin", "--verify", "false"])).unwrap();
        assert_eq!(a.str("verify"), "false");
        // Non-boolean flags still require a value.
        assert!(matches!(
            ExpArgs::parse(B, &words(&["--format"])),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn errors_are_usage_errors() {
        for bad in [
            vec!["--nope", "1"],
            vec!["--ops"],
            vec!["--ops", "1", "--ops", "2"],
            vec!["1", "2", "3", "4"],
        ] {
            let got = ExpArgs::parse(SPECS, &words(&bad));
            assert!(matches!(got, Err(DriverError::Usage(_))), "{bad:?}");
        }
        let a = ExpArgs::parse(SPECS, &words(&["abc"])).unwrap();
        assert!(matches!(a.u64("ops"), Err(DriverError::Usage(_))));
    }
}

//! Shared runner for the paper's Tables 2 and 3: IPC and load miss ratio
//! for every benchmark under the seven measured configurations.

use cac_core::IndexSpec;
use cac_cpu::{CpuConfig, Processor};
use cac_trace::spec::SpecBenchmark;
use cac_trace::TraceOp;

/// Measured results for one benchmark (mirrors the paper's Table 2 column
/// layout).
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Benchmark.
    pub bench: SpecBenchmark,
    /// 16KB conventional IPC.
    pub conv16_ipc: f64,
    /// 16KB conventional load miss ratio (%).
    pub conv16_miss: f64,
    /// 8KB conventional IPC, no address prediction.
    pub conv8_ipc: f64,
    /// 8KB conventional IPC with address prediction.
    pub conv8_ipc_pred: f64,
    /// 8KB conventional load miss ratio (%).
    pub conv8_miss: f64,
    /// 8KB I-Poly (XOR off the critical path) IPC, no prediction.
    pub ipoly_ipc: f64,
    /// 8KB I-Poly load miss ratio (%).
    pub ipoly_miss: f64,
    /// 8KB I-Poly with XOR on the critical path, no prediction.
    pub ipoly_cp_ipc: f64,
    /// 8KB I-Poly with XOR on the critical path and address prediction.
    pub ipoly_cp_ipc_pred: f64,
}

fn run_one(trace: &[TraceOp], config: CpuConfig, ops: u64) -> (f64, f64) {
    let mut cpu = Processor::new(config).expect("valid configuration");
    let stats = cpu.run(trace.iter().copied(), ops);
    (stats.ipc(), stats.load_miss_ratio_pct())
}

/// Instruction slack beyond the simulated-instruction target, so a
/// trace materialised once (and shared by every processor
/// configuration) never runs dry inside the pipeline's in-flight
/// window — which would change drain behaviour relative to an endless
/// generator. Shared by every CPU-level driver that materialises a
/// trace (`cac options` uses it too).
pub const TRACE_SLACK: usize = 4096;

/// Runs all seven configurations of the paper's Table 2 for one
/// benchmark, simulating `ops` instructions per configuration. The
/// benchmark's instruction stream is generated ONCE and shared by all
/// seven (the configurations differ only on the processor side).
pub fn run_benchmark(b: SpecBenchmark, ops: u64, seed: u64) -> Table2Row {
    let trace: Vec<TraceOp> = b.generator(seed).take(ops as usize + TRACE_SLACK).collect();
    let conv16 = run_one(
        &trace,
        CpuConfig::paper_16kb(IndexSpec::modulo()).unwrap(),
        ops,
    );
    let conv8 = run_one(
        &trace,
        CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap(),
        ops,
    );
    let conv8_pred = run_one(
        &trace,
        CpuConfig::paper_baseline(IndexSpec::modulo())
            .unwrap()
            .with_address_prediction(),
        ops,
    );
    let ipoly = run_one(
        &trace,
        CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap(),
        ops,
    );
    let ipoly_cp = run_one(
        &trace,
        CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_xor_in_critical_path(),
        ops,
    );
    let ipoly_cp_pred = run_one(
        &trace,
        CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_xor_in_critical_path()
            .with_address_prediction(),
        ops,
    );
    Table2Row {
        bench: b,
        conv16_ipc: conv16.0,
        conv16_miss: conv16.1,
        conv8_ipc: conv8.0,
        conv8_ipc_pred: conv8_pred.0,
        conv8_miss: conv8.1,
        ipoly_ipc: ipoly.0,
        ipoly_miss: ipoly.1,
        ipoly_cp_ipc: ipoly_cp.0,
        ipoly_cp_ipc_pred: ipoly_cp_pred.0,
    }
}

/// Runs the full 18-benchmark suite.
pub fn run_all(ops: u64, seed: u64) -> Vec<Table2Row> {
    SpecBenchmark::all()
        .into_iter()
        .map(|b| run_benchmark(b, ops, seed))
        .collect()
}

/// Prints one formatted row (measured over paper reference).
pub fn print_row(r: &Table2Row) {
    let p = r.bench.paper_row();
    println!(
        "{:<9} {:>5.2} {:>6.2} | {:>5.2} {:>5.2} {:>6.2} | {:>5.2} {:>6.2} | {:>5.2} {:>5.2}",
        r.bench.name(),
        r.conv16_ipc,
        r.conv16_miss,
        r.conv8_ipc,
        r.conv8_ipc_pred,
        r.conv8_miss,
        r.ipoly_ipc,
        r.ipoly_miss,
        r.ipoly_cp_ipc,
        r.ipoly_cp_ipc_pred,
    );
    println!(
        "{:<9} {:>5.2} {:>6.2} | {:>5.2} {:>5.2} {:>6.2} | {:>5.2} {:>6.2} | {:>5.2} {:>5.2}",
        "  (paper)",
        p.conv16_ipc,
        p.conv16_miss,
        p.conv8_ipc,
        p.conv8_ipc_pred,
        p.conv8_miss,
        p.ipoly_ipc,
        p.ipoly_miss,
        p.ipoly_cp_ipc,
        p.ipoly_cp_ipc_pred,
    );
}

/// Prints the table header.
pub fn print_header(title: &str) {
    println!("{title}");
    println!(
        "{:<9} {:>5} {:>6} | {:>5} {:>5} {:>6} | {:>5} {:>6} | {:>5} {:>5}",
        "bench", "16K", "miss", "8K", "8K+p", "miss", "Hp", "miss", "HpCP", "+pred"
    );
}

/// Summary statistics over a set of rows.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Geometric-mean IPC per configuration (paper's averaging).
    pub conv16_ipc: f64,
    /// Arithmetic-mean miss ratio (%).
    pub conv16_miss: f64,
    /// See [`Table2Row`].
    pub conv8_ipc: f64,
    /// See [`Table2Row`].
    pub conv8_ipc_pred: f64,
    /// See [`Table2Row`].
    pub conv8_miss: f64,
    /// See [`Table2Row`].
    pub ipoly_ipc: f64,
    /// See [`Table2Row`].
    pub ipoly_miss: f64,
    /// See [`Table2Row`].
    pub ipoly_cp_ipc: f64,
    /// See [`Table2Row`].
    pub ipoly_cp_ipc_pred: f64,
}

/// Computes the paper's averages: geometric mean for IPC, arithmetic mean
/// for miss ratios.
pub fn summarize(rows: &[&Table2Row]) -> Summary {
    let g = |f: fn(&Table2Row) -> f64| {
        crate::geometric_mean(&rows.iter().map(|r| f(r)).collect::<Vec<_>>())
    };
    let a = |f: fn(&Table2Row) -> f64| {
        crate::arithmetic_mean(&rows.iter().map(|r| f(r)).collect::<Vec<_>>())
    };
    Summary {
        conv16_ipc: g(|r| r.conv16_ipc),
        conv16_miss: a(|r| r.conv16_miss),
        conv8_ipc: g(|r| r.conv8_ipc),
        conv8_ipc_pred: g(|r| r.conv8_ipc_pred),
        conv8_miss: a(|r| r.conv8_miss),
        ipoly_ipc: g(|r| r.ipoly_ipc),
        ipoly_miss: a(|r| r.ipoly_miss),
        ipoly_cp_ipc: g(|r| r.ipoly_cp_ipc),
        ipoly_cp_ipc_pred: g(|r| r.ipoly_cp_ipc_pred),
    }
}

/// Prints a summary line.
pub fn print_summary(label: &str, s: &Summary) {
    println!(
        "{:<9} {:>5.2} {:>6.2} | {:>5.2} {:>5.2} {:>6.2} | {:>5.2} {:>6.2} | {:>5.2} {:>5.2}",
        label,
        s.conv16_ipc,
        s.conv16_miss,
        s.conv8_ipc,
        s.conv8_ipc_pred,
        s.conv8_miss,
        s.ipoly_ipc,
        s.ipoly_miss,
        s.ipoly_cp_ipc,
        s.ipoly_cp_ipc_pred,
    );
}

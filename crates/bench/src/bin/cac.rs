//! `cac` — the unified experiment CLI for the conflict-avoiding-cache
//! reproduction.
//!
//! One binary drives the paper's whole evaluation matrix (Figure 1,
//! Tables 1–3, the §3.1 option studies, the §3.3 hole model, the
//! ablations) plus the external-trace tooling (`cac trace gen`,
//! `cac trace convert`, `cac replay`), with `--format text|json|csv`
//! report output. `cac --help` lists every subcommand; `cac help <cmd>`
//! shows a command's parameters.
//!
//! Run: `cargo run --release -p cac-bench --bin cac -- fig1 --format csv`.

fn main() {
    std::process::exit(cac_bench::driver::cli_main(
        std::env::args().skip(1).collect(),
    ));
}

//! Compatibility shim: this experiment now lives in the unified `cac`
//! CLI as `cac column` (see `cac_bench::driver`). The shim keeps the
//! old binary name and positional arguments working by forwarding them
//! to the same experiment function.

fn main() {
    std::process::exit(cac_bench::driver::legacy_main("column_assoc"));
}

//! E7 — §3.1 option 4: column-associative cache with polynomial rehash.
//!
//! Replays the workload suite through the direct-mapped
//! column-associative organization and reports the fraction of hits found
//! at the first probe (the paper: "a typical probability of around 90%
//! that a hit is detected at the first probe") together with the miss
//! ratio against plain direct-mapped and 2-way conventional caches.
//!
//! Run: `cargo run --release -p cac-bench --bin column_assoc [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::ColumnAssociative;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let two_way = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    println!("E7 / section 3.1 option 4: column-associative with polynomial rehash ({ops} ops)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "bench", "DM miss%", "2way miss%", "col miss%", "1st-probe%", "probes/hit"
    );
    let mut first_probe = Vec::new();
    for b in SpecBenchmark::all() {
        let mut plain = Cache::build(dm, IndexSpec::modulo()).expect("cache");
        let mut assoc = Cache::build(two_way, IndexSpec::modulo()).expect("cache");
        let mut col = ColumnAssociative::new(dm).expect("cache");
        for r in mem_refs(b.generator(3).take(ops)) {
            if r.is_write {
                continue; // load behaviour, as in the paper's miss ratios
            }
            plain.read(r.addr);
            assoc.read(r.addr);
            col.read(r.addr);
        }
        let s = col.stats();
        first_probe.push(s.first_probe_hit_fraction() * 100.0);
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>12.1} {:>12.3}",
            b.name(),
            plain.stats().miss_ratio() * 100.0,
            assoc.stats().miss_ratio() * 100.0,
            s.miss_ratio() * 100.0,
            s.first_probe_hit_fraction() * 100.0,
            s.avg_probes_per_hit()
        );
    }
    println!(
        "\naverage first-probe hit fraction: {:.1}%  (paper: around 90%)",
        arithmetic_mean(&first_probe)
    );
}

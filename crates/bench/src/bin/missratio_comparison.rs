//! E5 — cache-only miss-ratio comparison (§2.1 quoted result and §5
//! stddev claim).
//!
//! Replays the 18 synthetic SPEC95 workload models through 8KB 2-way
//! caches with conventional, I-Poly and fully-associative placement and
//! prints:
//!
//! * the per-benchmark load miss ratios (with the paper's Table 2 values
//!   for reference),
//! * the suite averages the paper quotes from \[10\] (conventional 13.84% →
//!   I-Poly 7.14% vs fully-associative 6.80%), and
//! * the §5 predictability claim: the standard deviation of miss ratios
//!   across the suite (paper: 18.49 → 5.16).
//!
//! Run with `cargo run --release -p cac-bench --bin missratio_comparison
//! [ops_per_benchmark]`.

use cac_bench::parallel::par_map;
use cac_bench::{arithmetic_mean, std_dev};
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("valid geometry");
    let fa_geom = CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry");

    println!("E5: 8KB 2-way load miss ratios (%), {ops} ops per benchmark");
    println!(
        "{:<10} {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "bench", "conv", "paper", "ipoly", "paper", "fullassoc"
    );
    // One worker per benchmark: each generates the workload once and
    // feeds the same reference stream to all three placements.
    let benches = SpecBenchmark::all();
    let results: Vec<(f64, f64, f64)> = par_map(&benches, |b| {
        let mut conv = Cache::build(geom, IndexSpec::modulo()).expect("cache");
        let mut ipoly = Cache::build(geom, IndexSpec::ipoly_skewed()).expect("cache");
        let mut fa = Cache::build(fa_geom, IndexSpec::modulo()).expect("cache");
        for r in mem_refs(b.generator(12345).take(ops)) {
            conv.access(r.addr, r.is_write);
            ipoly.access(r.addr, r.is_write);
            fa.access(r.addr, r.is_write);
        }
        (
            conv.stats().read_miss_ratio() * 100.0,
            ipoly.stats().read_miss_ratio() * 100.0,
            fa.stats().read_miss_ratio() * 100.0,
        )
    });
    let mut conv_all = Vec::new();
    let mut ipoly_all = Vec::new();
    let mut fa_all = Vec::new();
    for (b, &(c, p, f)) in benches.iter().zip(&results) {
        let row = b.paper_row();
        conv_all.push(c);
        ipoly_all.push(p);
        fa_all.push(f);
        println!(
            "{:<10} {:>10.2} {:>10.2} | {:>10.2} {:>10.2} | {:>10.2}",
            b.name(),
            c,
            row.conv8_miss,
            p,
            row.ipoly_miss,
            f
        );
    }
    println!();
    println!(
        "suite average: conv {:.2}% (paper [10]: 13.84)  ipoly {:.2}% (paper [10]: 7.14)  fully-assoc {:.2}% (paper [10]: 6.80)",
        arithmetic_mean(&conv_all),
        arithmetic_mean(&ipoly_all),
        arithmetic_mean(&fa_all)
    );
    println!(
        "miss-ratio stddev across suite: conv {:.2} (paper: 18.49)  ipoly {:.2} (paper: 5.16)",
        std_dev(&conv_all),
        std_dev(&ipoly_all)
    );
}

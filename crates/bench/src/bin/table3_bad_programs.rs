//! E4 — **Table 3** of the paper: the three programs with high conflict
//! miss ratios (tomcatv, swim, wave5) in detail, plus the averages for
//! the "bad" three and the remaining "good" fifteen.
//!
//! The paper's headline numbers from this table: the bad programs gain
//! 27% IPC from I-Poly without prediction (XOR in critical path) and 33%
//! with prediction, versus the 8KB conventional cache — 16% better than
//! simply doubling the cache to 16KB.
//!
//! Run: `cargo run --release -p cac-bench --bin table3_bad_programs
//! [ops_per_config]`.

use cac_bench::table2::{print_header, print_row, print_summary, run_all, summarize};

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    print_header(&format!(
        "E4 / Table 3: high-conflict programs ({ops} instructions per configuration)"
    ));
    let rows = run_all(ops, 12345);
    let bad: Vec<_> = rows.iter().filter(|r| r.bench.is_high_conflict()).collect();
    let good: Vec<_> = rows
        .iter()
        .filter(|r| !r.bench.is_high_conflict())
        .collect();
    for r in &bad {
        print_row(r);
    }
    println!();
    let sb = summarize(&bad);
    let sg = summarize(&good);
    print_summary("Avg-bad", &sb);
    println!("(paper:    1.28  30.80 |  1.11  1.13  54.61 |  1.46  14.40 |  1.42  1.49)");
    print_summary("Avg-good", &sg);
    println!("(paper:    1.38   6.40 |  1.30  1.32   8.91 |  1.30   8.74 |  1.27  1.30)");
    println!();

    // The paper's derived claims for the bad programs.
    let gain_nopred = (sb.ipoly_cp_ipc / sb.conv8_ipc - 1.0) * 100.0;
    let gain_pred = (sb.ipoly_cp_ipc_pred / sb.conv8_ipc - 1.0) * 100.0;
    let vs_double = (sb.ipoly_cp_ipc_pred / sb.conv16_ipc - 1.0) * 100.0;
    println!(
        "bad-program IPC gain over conv-8KB: {gain_nopred:+.1}% without prediction (paper: +27%)"
    );
    println!(
        "bad-program IPC gain over conv-8KB: {gain_pred:+.1}% with prediction    (paper: +33%)"
    );
    println!(
        "bad-program IPC vs doubling to 16KB: {vs_double:+.1}%                    (paper: +16%)"
    );
    let good_delta = (sg.ipoly_cp_ipc_pred / sg.conv8_ipc - 1.0) * 100.0;
    println!(
        "good-program IPC change (I-Poly in CP, with prediction): {good_delta:+.1}% (paper: about -1.7% without prediction)"
    );
}

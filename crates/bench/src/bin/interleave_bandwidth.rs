//! E12 — stride-insensitive interleaved memory (Rau \[18\]\[19\]), the
//! original habitat of polynomial placement.
//!
//! The paper's §2.1.2 inherits its central guarantee — "all strides of
//! the form 2^k produce address sequences that are free from conflicts" —
//! from pseudo-randomly interleaved memories. This harness replays the
//! classic experiment: a strided vector streamed through a banked memory
//! under different bank-selection functions, reporting sustained
//! bandwidth per stride.
//!
//! Expected shape (matching Rau's ISCA'91 figures): modulo selection
//! collapses to `1/busy` on every stride sharing a power of two with the
//! bank count; prime-modulus (the Lawrie–Vora baseline) fixes those but
//! has its own resonances and needs a hardware divider; polynomial
//! selection holds near-peak bandwidth on all power-of-two strides and
//! almost everywhere else.
//!
//! Run: `cargo run --release -p cac-bench --bin interleave_bandwidth
//! [banks] [busy] [max_stride] [accesses]`.

use cac_core::IndexSpec;
use cac_interleave::{random_sweep, stride_sweep, summarize, BankConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let banks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let busy: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let max_stride: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let accesses: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2048);

    let cfg = match BankConfig::new(banks, 8, busy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "E12 / Rau [19]: {banks} banks x 8B words, busy {busy} cycles, \
         strides 1..={max_stride}, {accesses} accesses per stride"
    );

    let selectors = [
        ("modulo", IndexSpec::modulo()),
        ("prime (Lawrie-Vora)", IndexSpec::prime()),
        ("add-skew (Harper-Jump)", IndexSpec::add_skew()),
        ("rand-table (Raghavan-Hayes)", IndexSpec::rand_table()),
        ("xor-matrix (Frailong)", IndexSpec::xor_matrix()),
        ("ipoly (Rau)", IndexSpec::ipoly()),
    ];

    println!(
        "{:<28} {:>8} {:>8} {:>10} {:>14} {:>12}",
        "selector", "min bw", "mean bw", "degraded", "pow2 min bw", "worst stride"
    );
    for (name, spec) in &selectors {
        let results = match stride_sweep(cfg, spec.clone(), max_stride, accesses) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let summary = summarize(&results, 0.5);
        let pow2_min = (0..)
            .map(|k| 1u64 << k)
            .take_while(|&s| s <= max_stride)
            .map(|s| results[(s - 1) as usize].bandwidth)
            .fold(f64::INFINITY, f64::min);
        let worst = results
            .iter()
            .min_by(|a, b| a.bandwidth.total_cmp(&b.bandwidth))
            .expect("non-empty sweep");
        println!(
            "{name:<28} {:>8.3} {:>8.3} {:>6}/{:<3} {:>14.3} {:>12}",
            summary.min_bandwidth,
            summary.mean_bandwidth,
            summary.degraded,
            max_stride,
            pow2_min,
            worst.stride,
        );
    }

    // Rau's reference point: random traffic, where the selector is
    // irrelevant and only queueing limits bandwidth.
    print!("\nrandom-traffic reference (selector-independent): ");
    let mut rand_bws = Vec::new();
    for (_, spec) in &selectors {
        if let Ok(stats) = random_sweep(cfg, spec.clone(), accesses, 17) {
            rand_bws.push(stats.bandwidth());
        }
    }
    let (lo, hi) = rand_bws
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &b| {
            (lo.min(b), hi.max(b))
        });
    println!("bandwidth {lo:.3}..{hi:.3} across all selectors");

    println!(
        "\n(peak = 1.0 access/cycle; serial floor = {:.3}; 'degraded' counts strides \
         below bandwidth 0.5)",
        1.0 / f64::from(busy)
    );
}

//! E13 — the §3.1 design space: how should an I-Poly L1 get its address
//! bits past the 4KB-page limit?
//!
//! The paper weighs four options; this harness quantifies the two that
//! admit a direct IPC comparison on the out-of-order model:
//!
//! * **Option 1** — translate first, index the L1 *physically*: every
//!   load pays an extra pipeline stage plus page-walk stalls on TLB
//!   misses, but the XOR tree is never on the critical path.
//! * **Option 3** — the two-level virtual-real hierarchy (the paper's
//!   choice): the L1 is indexed with virtual bits at full speed; the XOR
//!   tree may or may not land on the critical path (both shown).
//!
//! Option 2 (page-size-aware index switching) is evaluated by
//! `option2_pagesize`, and option 4 (column-associative polynomial
//! rehash) by `column_assoc` — both at the miss-ratio level.
//!
//! Run: `cargo run --release -p cac-bench --bin options_comparison [ops]`.

use cac_bench::parallel::par_map;
use cac_bench::{arithmetic_mean, geometric_mean};
use cac_core::IndexSpec;
use cac_cpu::{CpuConfig, Processor, TranslationModel};
use cac_trace::spec::SpecBenchmark;

struct Measurement {
    ipc: f64,
    miss: f64,
    tlb_miss: Option<f64>,
}

fn run_one(b: SpecBenchmark, config: CpuConfig, ops: u64) -> Measurement {
    let mut cpu = Processor::new(config).expect("valid configuration");
    let stats = cpu.run(b.generator(11), ops);
    Measurement {
        ipc: stats.ipc(),
        miss: stats.load_miss_ratio_pct(),
        tlb_miss: stats.tlb.map(|t| t.miss_ratio() * 100.0),
    }
}

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);

    println!("E13 / section 3.1: translation options for an 8KB 2-way skewed I-Poly L1 ({ops} ops/benchmark)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "bench", "conv8 IPC", "opt1 IPC", "opt1 TLB%", "opt3 IPC", "opt3CP IPC", "opt3 miss%"
    );

    type ConfigFactory = Box<dyn Fn() -> CpuConfig + Send + Sync>;
    let configs: Vec<(&str, ConfigFactory)> = vec![
        (
            "conv8",
            Box::new(|| CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap()),
        ),
        (
            "opt1",
            Box::new(|| {
                CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
                    .unwrap()
                    .with_physical_indexing(TranslationModel::physically_indexed())
            }),
        ),
        (
            "opt3",
            Box::new(|| CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap()),
        ),
        (
            "opt3cp",
            Box::new(|| {
                CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
                    .unwrap()
                    .with_xor_in_critical_path()
            }),
        ),
    ];

    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut misses: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut tlb_misses: Vec<f64> = Vec::new();

    // One worker per benchmark, each driving all four processor
    // configurations (the per-benchmark CPU simulations dominate the
    // runtime of this experiment).
    let benches = SpecBenchmark::all();
    let per_bench: Vec<Vec<Measurement>> = par_map(&benches, |&b| {
        configs.iter().map(|(_, c)| run_one(b, c(), ops)).collect()
    });
    for (b, ms) in benches.iter().zip(per_bench) {
        for (i, m) in ms.iter().enumerate() {
            ipcs[i].push(m.ipc);
            misses[i].push(m.miss);
        }
        if let Some(t) = ms[1].tlb_miss {
            tlb_misses.push(t);
        }
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            b.name(),
            ms[0].ipc,
            ms[1].ipc,
            ms[1].tlb_miss.unwrap_or(0.0),
            ms[2].ipc,
            ms[3].ipc,
            ms[2].miss,
        );
    }

    println!(
        "\n{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "geo-mean",
        geometric_mean(&ipcs[0]),
        geometric_mean(&ipcs[1]),
        arithmetic_mean(&tlb_misses),
        geometric_mean(&ipcs[2]),
        geometric_mean(&ipcs[3]),
        arithmetic_mean(&misses[2]),
    );

    let opt1_cost = (geometric_mean(&ipcs[2]) / geometric_mean(&ipcs[1]) - 1.0) * 100.0;
    let cp_cost = (geometric_mean(&ipcs[2]) / geometric_mean(&ipcs[3]) - 1.0) * 100.0;
    println!(
        "\nvirtual-real (opt 3) outperforms physical indexing (opt 1) by {opt1_cost:.1}% IPC \
         (the extra load stage + TLB walks);\nputting the XOR on the critical path instead \
         costs only {cp_cost:.1}% — the paper's argument for option 3 plus address prediction."
    );
}

//! Ablation A3 — address-predictor table size.
//!
//! The paper fixes a 1K-entry untagged table; this ablation sweeps the
//! size to show the interference/capacity trade-off behind that choice.
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_predictor [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::AddressPredictor;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    println!("A3: predictor table size vs usable prediction rate ({ops} ops/benchmark)");
    for entries in [16usize, 64, 256, 1024, 4096] {
        let mut rates = Vec::new();
        for b in SpecBenchmark::all() {
            let mut p = AddressPredictor::new(entries).expect("power of two");
            for op in b.generator(11).take(ops) {
                if op.is_load() {
                    p.observe(op.pc, op.addr.expect("loads have addresses"));
                }
            }
            rates.push(p.stats().usable_rate() * 100.0);
        }
        let note = if entries == 1024 {
            " (paper's choice)"
        } else {
            ""
        };
        println!(
            "  {entries:>5} entries: usable {:6.2}%{note}",
            arithmetic_mean(&rates)
        );
    }
}

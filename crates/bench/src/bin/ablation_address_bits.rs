//! Ablation A2 — hash input width (§2.1.1: "For best performance v should
//! be as close as possible to n, though it may be as small as m+1").
//!
//! Sweeps the number of address bits fed to the I-Poly hash and reports
//! the suite-average miss ratio, showing the diminishing returns the
//! paper's choice of 19 bits relies on, and the §3.1 page-size trade-off
//! (only bits below the page boundary are available without translation
//! tricks: 12 unmapped bits for 4KB pages).
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_address_bits [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");
    println!("A2: I-Poly address-bit budget vs suite miss ratio ({ops} ops/benchmark)");
    println!("  (m = 7 index bits + 5 offset bits; v = address_bits - 5)");
    for address_bits in [13u32, 14, 15, 16, 19, 24, 32] {
        let spec = IndexSpec::IPoly {
            skewed: true,
            address_bits: Some(address_bits),
            polys: None,
        };
        let mut misses = Vec::new();
        for b in SpecBenchmark::all() {
            let mut c = Cache::build(geom, spec.clone()).expect("cache");
            for r in mem_refs(b.generator(99).take(ops)) {
                c.access(r.addr, r.is_write);
            }
            misses.push(c.stats().read_miss_ratio() * 100.0);
        }
        let note = match address_bits {
            13 => " (v = m + 1, minimum)",
            12 => " (4KB page boundary)",
            19 => " (paper's choice)",
            _ => "",
        };
        println!(
            "  address bits {address_bits:>2}: miss {:6.2}%{note}",
            arithmetic_mean(&misses)
        );
    }
    println!("  conventional   : miss {:6.2}%", {
        let mut misses = Vec::new();
        for b in SpecBenchmark::all() {
            let mut c = Cache::build(geom, IndexSpec::modulo()).expect("cache");
            for r in mem_refs(b.generator(99).take(ops)) {
                c.access(r.addr, r.is_write);
            }
            misses.push(c.stats().read_miss_ratio() * 100.0);
        }
        arithmetic_mean(&misses)
    });
}

//! E2 — **Table 1** sanity harness: prints the functional-unit/latency
//! configuration and the §4 processor parameters, asserting they match
//! the paper.

use cac_core::IndexSpec;
use cac_cpu::CpuConfig;

fn main() {
    let c = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).expect("valid configuration");
    println!("E2 / Table 1: functional units and instruction latency");
    println!(
        "{:<22} {:>8} {:>12}",
        "Functional Unit", "Latency", "Repeat rate"
    );
    println!("{:<22} {:>8} {:>12}", "1 Simple Integer", 1, 1);
    println!("{:<22} {:>8} {:>12}", "1 Complex Integer", "9/67", "1/67");
    println!("{:<22} {:>8} {:>12}", "2 Effective Address", 1, 1);
    println!("{:<22} {:>8} {:>12}", "1 Simple FP", 4, 1);
    println!("{:<22} {:>8} {:>12}", "1 FP Multiplication", 4, 1);
    println!("{:<22} {:>8} {:>12}", "1 FP Div and SQR", "16/35", "16/35");
    println!();
    println!(
        "processor: {}-way fetch/issue/commit, ROB {}, {}+{} physical registers",
        c.fetch_width, c.rob_entries, c.int_phys_regs, c.fp_phys_regs
    );
    println!(
        "memory: {} ports, {} MSHRs, {} L1, hit {} cycles, miss {} cycles, bus {} cycles/line, BHT {} entries",
        c.mem_ports,
        c.mshrs,
        c.cache_geometry,
        c.hit_latency,
        c.miss_penalty,
        c.bus_cycles_per_line,
        c.bht_entries
    );
    assert_eq!(c.fetch_width, 4);
    assert_eq!(c.rob_entries, 32);
    assert_eq!(c.mshrs, 8);
    println!("all Table 1 / §4 parameters verified");
}

//! E11 — the §2.1 related-work placement functions, head to head.
//!
//! The paper surveys the interleaved-memory literature for conflict-
//! avoiding placement functions — prime-modulus (Lawrie–Vora \[16\]),
//! skewing (Harper–Jump \[11\], Sohi \[24\]), XOR-schemes (Frailong et al.
//! \[5\]) and pseudo-random hashing (Raghavan–Hayes \[17\]) — and argues that
//! Rau's polynomial construction \[19\] is the one that combines a simple
//! implementation with *provably* good behaviour on regular strides. This
//! harness puts every scheme through both evaluations:
//!
//! 1. the Figure-1 stride sweep (how many strides are pathological), and
//! 2. the synthetic SPEC95 suite (average load miss ratio).
//!
//! Run: `cargo run --release -p cac-bench --bin related_work_indexing
//! [max_stride] [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use cac_trace::stride::figure1_sweep;

fn main() {
    let max_stride: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let ops: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");
    let suite = IndexSpec::related_work_suite();

    println!(
        "E11 / section 2.1 related work: placement functions on {geom} \
         (strides 1..{max_stride}, {ops} ops/benchmark)"
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "pathological", "stride avg%", "spec all%", "spec bad-3%", "spec good%"
    );

    for spec in &suite {
        // Part 1: Figure-1 stride sweep.
        let mut pathological = 0u64;
        let mut strides = 0u64;
        let mut ratio_sum = 0.0;
        figure1_sweep(max_stride, 16, |_, trace| {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in trace {
                cache.read(r.addr);
            }
            let ratio = cache.stats().miss_ratio();
            ratio_sum += ratio;
            strides += 1;
            if ratio > 0.5 {
                pathological += 1;
            }
        });

        // Part 2: synthetic SPEC95 miss ratios.
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for b in SpecBenchmark::all() {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in mem_refs(b.generator(5).take(ops)) {
                cache.access(r.addr, r.is_write);
            }
            let m = cache.stats().read_miss_ratio() * 100.0;
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }

        let label = spec.build(geom).expect("buildable").label();
        println!(
            "{label:<18} {:>7} ({:>4.1}%) {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            pathological,
            pathological as f64 / strides as f64 * 100.0,
            ratio_sum / strides as f64 * 100.0,
            arithmetic_mean(&all),
            arithmetic_mean(&bad),
            arithmetic_mean(&good)
        );
    }

    println!(
        "\nReading guide: prime-modulus fixes power-of-two strides but wastes sets and \
         needs a divider; additive skew and two-field XOR share the 2^(2m) blind spot; \
         random-table and XOR-matrix hashing have no stride guarantee; skewed I-Poly \
         is the only scheme that is simultaneously cheap (XOR tree), balanced, and \
         stride-insensitive — the paper's argument in one table."
    );
}

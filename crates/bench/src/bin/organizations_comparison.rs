//! E10 — the §2.1 organization comparison (after the companion study
//! \[10\], which the paper quotes): suite-average load miss ratio for every
//! cache organization the paper names — direct-mapped, set-associative,
//! victim, hash-rehash, column-associative, skewed-associative, I-Poly
//! and fully-associative — all at 8KB with 32-byte lines.
//!
//! Run: `cargo run --release -p cac-bench --bin organizations_comparison
//! [ops]`.

use cac_bench::arithmetic_mean;
use cac_bench::parallel::par_map;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::{ColumnAssociative, RehashKind};
use cac_sim::jouppi::JouppiCache;
use cac_sim::stream::StreamBufferCache;
use cac_sim::victim::VictimCache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let w2 = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");
    let w4 = CacheGeometry::new(8 * 1024, 32, 4).expect("geometry");
    let fa = CacheGeometry::fully_associative(8 * 1024, 32).expect("geometry");

    println!("E10 / section 2.1: 8KB organization comparison, suite-average load miss % ({ops} ops/benchmark)");
    // Each organization is a closure from benchmark to load miss ratio;
    // `Send + Sync` so the benchmark sweep can fan out per organization.
    type Runner = Box<dyn Fn(SpecBenchmark) -> f64 + Send + Sync>;
    let cache_runner = |geom: CacheGeometry, spec: IndexSpec, ops: usize| -> Runner {
        Box::new(move |b: SpecBenchmark| {
            let mut c = Cache::build(geom, spec.clone()).expect("cache");
            c.run_refs(mem_refs(b.generator(5).take(ops)));
            c.stats().read_miss_ratio() * 100.0
        })
    };
    let organizations: Vec<(&str, Runner)> = vec![
        ("direct-mapped", cache_runner(dm, IndexSpec::modulo(), ops)),
        (
            "2-way set-assoc",
            cache_runner(w2, IndexSpec::modulo(), ops),
        ),
        (
            "4-way set-assoc",
            cache_runner(w4, IndexSpec::modulo(), ops),
        ),
        (
            "victim (DM + 4 lines)",
            Box::new(move |b| {
                let mut v = VictimCache::new(dm, 4).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !v.read(r.addr).hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "hash-rehash (bit flip)",
            Box::new(move |b| {
                let mut c =
                    ColumnAssociative::with_rehash(dm, RehashKind::TopBitFlip).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !c.read(r.addr).is_hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "column-assoc (I-Poly)",
            Box::new(move |b| {
                let mut c = ColumnAssociative::new(dm).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !c.read(r.addr).is_hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "stream buffers (DM + 4x4)",
            Box::new(move |b| {
                let mut c = StreamBufferCache::new(dm, 4, 4).expect("cache");
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    c.read(r.addr);
                }
                c.stats().miss_ratio() * 100.0
            }),
        ),
        (
            "Jouppi (DM + victim + stream)",
            Box::new(move |b| {
                let mut c = JouppiCache::new(dm, 4, 4, 4).expect("cache");
                let mut reads = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    c.read(r.addr);
                }
                c.stats().full_misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "2-way skewed XOR",
            cache_runner(w2, IndexSpec::xor_skewed(), ops),
        ),
        ("2-way I-Poly", cache_runner(w2, IndexSpec::ipoly(), ops)),
        (
            "2-way skewed I-Poly",
            cache_runner(w2, IndexSpec::ipoly_skewed(), ops),
        ),
        (
            "fully associative",
            cache_runner(fa, IndexSpec::modulo(), ops),
        ),
    ];

    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "organization", "all", "bad-3", "good-15"
    );
    let benches = SpecBenchmark::all();
    for (name, run) in &organizations {
        // Sweep the 18 benchmarks of this organization in parallel.
        let measurements = par_map(&benches, |&b| run(b));
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for (b, &m) in benches.iter().zip(&measurements) {
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }
        println!(
            "{name:<30} {:>10.2} {:>10.2} {:>10.2}",
            arithmetic_mean(&all),
            arithmetic_mean(&bad),
            arithmetic_mean(&good)
        );
    }
    println!(
        "\n(paper, quoting [10] on full Spec95: 2-way 13.84%, I-Poly 7.14%, fully-assoc 6.80%)"
    );
}

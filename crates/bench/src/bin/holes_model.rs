//! E6 — §3.3: holes in a two-level virtual-real hierarchy.
//!
//! Compares the paper's analytical model
//! `P_H = (2^{m1} − 1) / 2^{m2}` (equations (vii)–(ix)) against the
//! simulated fraction of L2 misses that create a hole at L1, and checks
//! the two published data points:
//!
//! * 8KB/256KB direct-mapped, 32B lines → `P_H = 0.031`;
//! * with a 1MB L2, the measured rate is "< 0.1% on average and never
//!   more than 1.2%", i.e. far below the model's always-resident
//!   assumption.
//!
//! Run: `cargo run --release -p cac-bench --bin holes_model [ops]`.

use cac_core::holes::HoleModel;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::vm::PageMapper;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);

    println!("E6 / section 3.3: hole probability, analytical vs simulated ({ops} ops/benchmark)");

    // Configurations: the worked example of the model (direct-mapped
    // 8KB/256KB, P_H = 0.031), and the paper's simulated setup (8KB 2-way
    // skewed I-Poly L1 over a 1MB 2-way conventionally-indexed L2).
    let configs: [(&str, CacheGeometry, IndexSpec, CacheGeometry, IndexSpec); 2] = [
        (
            "worked example: L1 8KB DM I-Poly / L2 256KB DM I-Poly",
            CacheGeometry::new(8 * 1024, 32, 1).expect("geometry"),
            IndexSpec::ipoly_skewed(),
            CacheGeometry::new(256 * 1024, 32, 1).expect("geometry"),
            IndexSpec::ipoly(),
        ),
        (
            "paper simulation: L1 8KB 2-way skewed I-Poly / L2 1MB 2-way conventional",
            CacheGeometry::new(8 * 1024, 32, 2).expect("geometry"),
            IndexSpec::ipoly_skewed(),
            CacheGeometry::new(1024 * 1024, 32, 2).expect("geometry"),
            IndexSpec::modulo(),
        ),
    ];
    for (label, l1, l1_spec, l2, l2_spec) in configs {
        let model = HoleModel::from_geometries(l1, l2).expect("model");
        println!(
            "\n{label}: analytical P_H = {:.4} (paper's 8KB/256KB example: 0.031)",
            model.p_hole_per_l2_miss()
        );
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>12}",
            "bench", "L2 misses", "holes", "rate %", "model %"
        );
        let mut worst: f64 = 0.0;
        let mut total_rate = 0.0;
        for b in SpecBenchmark::all() {
            let mut h = TwoLevelHierarchy::new(
                l1,
                l1_spec.clone(),
                l2,
                l2_spec.clone(),
                PageMapper::randomized(4096, 1 << 30, 42),
            )
            .expect("hierarchy");
            for r in mem_refs(b.generator(7).take(ops)) {
                h.access(r.addr, r.is_write);
            }
            let rate = h.hole_rate() * 100.0;
            worst = worst.max(rate);
            total_rate += rate;
            println!(
                "{:<10} {:>12} {:>12} {:>10.3} {:>12.2}",
                b.name(),
                h.l2_stats().misses,
                h.stats().holes_created,
                rate,
                model.p_hole_per_l2_miss() * 100.0
            );
        }
        println!(
            "average measured rate {:.3}%, worst {:.3}%  (paper, 1MB L2: avg < 0.1%, max 1.2%)",
            total_rate / 18.0,
            worst
        );
    }
}

//! A7 — ablation (beyond the paper): replacement policy under skew.
//!
//! A skewed cache has no conventional notion of a *set*: the candidate
//! lines for an incoming block sit at different indices in each way, so
//! classic per-set LRU state does not exist. This workspace implements
//! replacement over per-line timestamps (true LRU), FIFO (allocation
//! time) and seeded random choice — the options Seznec's skewed-
//! associative work debates. This ablation measures how much the choice
//! matters for conventional vs skewed I-Poly placement.
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_replacement
//! [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::replacement::ReplacementPolicy;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    println!("A7: replacement policy x placement, suite-average load miss % ({ops} ops/benchmark, {geom})");
    println!(
        "{:<16} {:>14} {:>16} {:>14} {:>14}",
        "policy", "conv all", "conv bad-3", "ipoly-sk all", "ipoly-sk bad-3"
    );

    for (pname, policy) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
    ] {
        let mut cells = Vec::new();
        for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
            let mut all = Vec::new();
            let mut bad = Vec::new();
            for b in SpecBenchmark::all() {
                let mut cache = Cache::builder(geom)
                    .index_spec(spec.clone())
                    .replacement(policy)
                    .seed(42)
                    .build()
                    .expect("cache");
                for r in mem_refs(b.generator(5).take(ops)) {
                    cache.access(r.addr, r.is_write);
                }
                let m = cache.stats().read_miss_ratio() * 100.0;
                all.push(m);
                if b.is_high_conflict() {
                    bad.push(m);
                }
            }
            cells.push(arithmetic_mean(&all));
            cells.push(arithmetic_mean(&bad));
        }
        println!(
            "{pname:<16} {:>14.2} {:>16.2} {:>14.2} {:>14.2}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!(
        "\nReading guide: two effects separate the columns. On the conventional\n\
         cache, *random* replacement actually helps the pathological programs\n\
         (it breaks the deterministic thrash cycle LRU gets locked into), a\n\
         classic result. Under skewed I-Poly, conflicts are already randomised\n\
         and recency is informative again, so LRU is clearly best and the cheap\n\
         policies give back about 1.5 points. The per-line-timestamp LRU used\n\
         here is exactly what a skewed cache can implement (no per-set state\n\
         exists; see DESIGN.md)."
    );
}

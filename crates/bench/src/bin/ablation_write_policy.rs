//! A5 — ablation (beyond the paper): write policy × placement function.
//!
//! The paper's L1 is write-through / no-write-allocate ("to have precise
//! exceptions", §4) — a choice that interacts with placement: write-back
//! / write-allocate caches put store lines *into* the cache, where they
//! can either conflict (conventional indexing) or not (I-Poly). This
//! ablation measures load miss ratio and write-back traffic across the
//! suite for both policies under both placements.
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_write_policy
//! [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::{Cache, WritePolicy};
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    println!("A5: write policy x placement, suite averages ({ops} ops/benchmark, {geom})");
    println!(
        "{:<44} {:>12} {:>12} {:>14}",
        "configuration", "load miss%", "write miss%", "writebacks/kop"
    );

    for (pname, policy) in [
        (
            "write-through/no-allocate",
            WritePolicy::WriteThroughNoAllocate,
        ),
        ("write-back/allocate", WritePolicy::WriteBackAllocate),
    ] {
        for (sname, spec) in [
            ("conventional", IndexSpec::modulo()),
            ("skewed I-Poly", IndexSpec::ipoly_skewed()),
        ] {
            let mut load_miss = Vec::new();
            let mut write_miss = Vec::new();
            let mut wb_per_kop = Vec::new();
            for b in SpecBenchmark::all() {
                let mut cache = Cache::builder(geom)
                    .index_spec(spec.clone())
                    .write_policy(policy)
                    .build()
                    .expect("cache");
                for r in mem_refs(b.generator(5).take(ops)) {
                    cache.access(r.addr, r.is_write);
                }
                let s = cache.stats();
                load_miss.push(s.read_miss_ratio() * 100.0);
                if s.writes > 0 {
                    write_miss.push(s.write_misses as f64 / s.writes as f64 * 100.0);
                }
                wb_per_kop.push(s.writebacks as f64 / (s.accesses as f64 / 1000.0));
            }
            println!(
                "{:<44} {:>12.2} {:>12.2} {:>14.2}",
                format!("{pname} + {sname}"),
                arithmetic_mean(&load_miss),
                arithmetic_mean(&write_miss),
                arithmetic_mean(&wb_per_kop),
            );
        }
    }

    println!(
        "\nReading guide: write-allocate pulls store lines into the cache, which \
         amplifies conflicts under conventional indexing and is close to free under \
         I-Poly — placement robustness buys freedom in the write-policy choice too."
    );
}

//! A4 — ablation (beyond the paper): do the §2.1 related-work placement
//! schemes deliver I-Poly's *IPC*, not just its miss ratio?
//!
//! E11 compares the placement functions at the cache level; this ablation
//! re-runs the three high-conflict programs (the paper's Table 3 subset)
//! through the full out-of-order processor with each placement scheme in
//! the L1. The interesting outcome is that several alternatives track
//! I-Poly closely here — the paper's case for I-Poly over them is the
//! *stride guarantee* and hardware cost (prime needs a divider, tables
//! need SRAM), not average-case miss ratio on these workloads.
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_related_ipc [ops]`.

use cac_bench::geometric_mean;
use cac_core::IndexSpec;
use cac_cpu::{CpuConfig, Processor};
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let bad = [
        SpecBenchmark::Tomcatv,
        SpecBenchmark::Swim,
        SpecBenchmark::Wave5,
    ];

    println!(
        "A4: IPC of the high-conflict programs under every placement scheme \
         (8KB 2-way L1, {ops} ops/benchmark)"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "tomcatv", "swim", "wave5", "geo-mean", "miss avg%"
    );

    for spec in IndexSpec::related_work_suite() {
        let mut ipcs = Vec::new();
        let mut misses = Vec::new();
        for b in bad {
            let config = CpuConfig::paper_baseline(spec.clone()).expect("config");
            let mut cpu = Processor::new(config).expect("processor");
            let stats = cpu.run(b.generator(11), ops);
            ipcs.push(stats.ipc());
            misses.push(stats.load_miss_ratio_pct());
        }
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            spec.name(),
            ipcs[0],
            ipcs[1],
            ipcs[2],
            geometric_mean(&ipcs),
            misses.iter().sum::<f64>() / misses.len() as f64,
        );
    }
}

//! Ad-hoc debugging aid: per-region miss breakdown for one benchmark.
//! Not part of the experiment suite.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use std::collections::BTreeMap;

fn region(addr: u64) -> &'static str {
    match addr {
        0x0010_0000..=0x00FF_FFFF => "hot",
        0x0100_0000..=0x01FF_FFFF => "conflict-short",
        0x0200_0000..=0x0FFF_FFFF => "conflict-long",
        0x1000_0000..=0x1FFF_FFFF => "stream",
        0x2000_0000..=0x3FFF_FFFF => "store",
        _ => "random",
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "swim".into());
    let b = SpecBenchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .expect("unknown benchmark");
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut c = Cache::build(geom, spec.clone()).unwrap();
        let mut acc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for r in mem_refs(b.generator(12345).take(400_000)) {
            let hit = c.access(r.addr, r.is_write).hit;
            let e = acc.entry(region(r.addr)).or_default();
            e.0 += 1;
            if !hit {
                e.1 += 1;
            }
        }
        println!("--- {name} / {spec}");
        for (reg, (n, m)) in &acc {
            println!(
                "  {reg:<15} {n:>8} accesses  {m:>8} misses  ({:.2}%)",
                *m as f64 / *n as f64 * 100.0
            );
        }
    }
}

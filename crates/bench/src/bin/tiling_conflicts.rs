//! E16 — the conclusion's tiling claim: "Tiling often introduces
//! additional conflict misses which depend on array dimensions as well as
//! stride. An I-poly cache would, for example, eliminate the need to
//! compute conflict-free tile dimensions."
//!
//! This harness runs the inner block-row of a tiled matrix multiply
//! through the paper's 8KB 2-way cache while sweeping the tile size, for
//! two storage pitches: a power of two (the natural `LDA = N` layout) and
//! a padded one (`LDA = N + 8`, the folklore fix). Expected shape:
//!
//! * conventional indexing with the power-of-two pitch is catastrophic at
//!   every tile size (columns of A, B and C collide);
//! * padding rescues conventional indexing — that is the manual tuning
//!   the paper says I-Poly makes unnecessary;
//! * skewed I-Poly is flat and low for both pitches: tile size can be
//!   chosen on capacity grounds alone.
//!
//! Run: `cargo run --release -p cac-bench --bin tiling_conflicts [n]`.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::patterns::TiledMatMul;

fn miss_pct(geom: CacheGeometry, spec: &IndexSpec, n: u64, tile: u64, pitch: u64) -> f64 {
    let mut cache = Cache::build(geom, spec.clone()).expect("cache");
    for r in TiledMatMul::new(n, tile, pitch).block_row() {
        cache.access(r.addr, r.is_write);
    }
    cache.stats().read_miss_ratio() * 100.0
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");
    let pow2_pitch = n * TiledMatMul::ELEM;
    let padded_pitch = (n + 8) * TiledMatMul::ELEM;

    println!("E16 / section 5: tiled {n}x{n} matmul block-row, {geom}, load miss %\n");
    println!(
        "{:<6} {:>16} {:>16} {:>16} {:>16} {:>12}",
        "tile", "conv pow2-LDA", "conv padded-LDA", "ipoly pow2-LDA", "ipoly padded", "footprint"
    );

    let conv = IndexSpec::modulo();
    let ipoly = IndexSpec::ipoly_skewed();
    for tile in [4u64, 8, 12, 16, 20, 24, 32] {
        if tile > n {
            continue;
        }
        let mm = TiledMatMul::new(n, tile, pow2_pitch);
        println!(
            "{tile:<6} {:>16.2} {:>16.2} {:>16.2} {:>16.2} {:>9} KB",
            miss_pct(geom, &conv, n, tile, pow2_pitch),
            miss_pct(geom, &conv, n, tile, padded_pitch),
            miss_pct(geom, &ipoly, n, tile, pow2_pitch),
            miss_pct(geom, &ipoly, n, tile, padded_pitch),
            mm.tile_footprint() / 1024,
        );
    }

    println!(
        "\nShape check: column 1 (power-of-two leading dimension, conventional index)\n\
         should dominate everything else; column 2 shows the manual padding fix;\n\
         columns 3-4 show I-Poly insensitive to the pitch — the tile size can be\n\
         picked purely to fit capacity, which is the paper's closing claim."
    );
}

//! E1 — **Figure 1** of the paper: frequency distribution of miss ratios
//! for conventional and pseudo-random indexing schemes.
//!
//! For every stride `1 ≤ S < 4096` (in 8-byte elements), a trace of
//! repeated sweeps over a 64-element vector drives four 8KB 2-way caches
//! that differ only in their index function: `a2` (modulo), `a2-Hx-Sk`
//! (skewed XOR), `a2-Hp` (I-Poly) and `a2-Hp-Sk` (skewed I-Poly). The
//! histogram of per-stride miss ratios reproduces the paper's log-
//! frequency bars; the paper's observations to check:
//!
//! * `a2` and `a2-Hx-Sk` show pathological behaviour (miss ratio > 50%)
//!   on more than 6% of strides;
//! * `a2-Hp-Sk` exhibits no significant conflicts on any stride.
//!
//! Run: `cargo run --release -p cac-bench --bin fig1_stride_sweep
//! [max_stride] [passes]`.

use cac_bench::chart::grouped;
use cac_bench::parallel::par_map_range;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::stride::VectorStride;

/// A named placement-scheme constructor.
type Scheme = (&'static str, fn() -> IndexSpec);

const SCHEMES: [Scheme; 4] = [
    ("a2", IndexSpec::modulo),
    ("a2-Hx-Sk", IndexSpec::xor_skewed),
    ("a2-Hp", IndexSpec::ipoly),
    ("a2-Hp-Sk", IndexSpec::ipoly_skewed),
];

fn main() {
    let max_stride: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let passes: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("valid geometry");

    println!(
        "E1 / Figure 1: miss-ratio distribution over strides 1..{max_stride} ({passes} passes, 64x8B vector, {geom})"
    );
    println!(
        "{:<10} {}",
        "bin",
        SCHEMES.map(|(n, _)| format!("{n:>10}")).join(" ")
    );

    // Each stride is an independent simulation of all four schemes:
    // fan the sweep out across the machine and replay the per-stride
    // trace through the batched API.
    let per_stride: Vec<[f64; 4]> = par_map_range(1..max_stride, |stride| {
        SCHEMES.map(|(_, spec)| {
            let mut cache = Cache::build(geom, spec()).expect("cache");
            let run = cache.run_refs(VectorStride::paper_figure1(stride, passes));
            run.miss_ratio()
        })
    });

    // histogram[scheme][bin]: bins of width 0.1 over (0,1], plus a
    // "conflict-free" bin for ratios at the compulsory floor.
    let mut histogram = [[0u64; 10]; 4];
    let mut pathological = [0u64; 4];
    let strides = per_stride.len() as u64;
    for ratios in &per_stride {
        for (si, &ratio) in ratios.iter().enumerate() {
            let bin = ((ratio * 10.0).ceil() as usize).clamp(1, 10) - 1;
            histogram[si][bin] += 1;
            if ratio > 0.5 {
                pathological[si] += 1;
            }
        }
    }
    for (bin, _) in histogram[0].iter().enumerate() {
        let label = format!("{:.1}-{:.1}", bin as f64 / 10.0, (bin + 1) as f64 / 10.0);
        let cells: Vec<String> = histogram
            .iter()
            .map(|h| format!("{:>10}", h[bin]))
            .collect();
        println!("{label:<10} {}", cells.join(" "));
    }
    println!();
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        println!(
            "{name:<10} pathological strides (miss > 50%): {:>5} of {strides} ({:.2}%)",
            pathological[si],
            pathological[si] as f64 / strides as f64 * 100.0
        );
    }
    println!("(paper: a2 and a2-Hx-Sk > 6% of strides pathological; a2-Hp-Sk none)");

    // Render the paper's log-frequency figure itself: columns = miss-ratio
    // bins, one bar per indexing scheme.
    let categories: Vec<String> = (0..10)
        .map(|b| format!("miss {:.1}-{:.1}", b as f64 / 10.0, (b + 1) as f64 / 10.0))
        .collect();
    let cat_refs: Vec<&str> = categories.iter().map(String::as_str).collect();
    let series: Vec<(&str, Vec<f64>)> = SCHEMES
        .iter()
        .enumerate()
        .map(|(si, (name, _))| (*name, histogram[si].iter().map(|&c| c as f64).collect()))
        .collect();
    println!();
    print!(
        "{}",
        grouped(
            "Figure 1: frequency distribution of per-stride miss ratios",
            &cat_refs,
            &series,
            true,
            48,
        )
    );
}

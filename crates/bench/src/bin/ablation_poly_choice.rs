//! Ablation A1 — polynomial choice (§2.1.1: "For best performance P will
//! be an irreducible polynomial, though it need not be so").
//!
//! Compares suite miss ratios for: the min-fan-in irreducible polynomial,
//! an arbitrary irreducible, a *reducible* polynomial of the right degree,
//! and the degenerate `x^m` (which is exactly conventional indexing).
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_poly_choice [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::{CacheGeometry, IndexSpec};
use cac_gf2::irreducible::{irreducibles, is_irreducible};
use cac_gf2::xor_tree::min_fan_in_poly;
use cac_gf2::Poly;
use cac_sim::cache::Cache;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

fn suite_miss(geom: CacheGeometry, spec: &IndexSpec, ops: usize) -> f64 {
    let mut misses = Vec::new();
    for b in SpecBenchmark::all() {
        let mut c = Cache::build(geom, spec.clone()).expect("cache");
        for r in mem_refs(b.generator(99).take(ops)) {
            c.access(r.addr, r.is_write);
        }
        misses.push(c.stats().read_miss_ratio() * 100.0);
    }
    arithmetic_mean(&misses)
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");
    let m = geom.index_bits();

    // A reducible degree-7 polynomial with odd weight (so it is not
    // trivially bad): (x+1)(x^6+x+1) = x^7+x^6+x^2+1.
    let reducible = Poly::from_bits(0b1100_0101);
    assert!(!is_irreducible(reducible));
    let arbitrary_irreducible = irreducibles(m).last().expect("exists");

    println!("A1: polynomial choice, suite-average load miss ratio (%), {ops} ops/benchmark");
    for (label, poly) in [
        ("min-fan-in irreducible", min_fan_in_poly(m, 14)),
        ("last irreducible", arbitrary_irreducible),
        ("reducible (x+1)(x^6+x+1)", reducible),
        ("x^7 (= conventional)", Poly::monomial(m)),
    ] {
        let spec = IndexSpec::ipoly_with(vec![poly], 19);
        let miss = suite_miss(geom, &spec, ops);
        println!("  {label:<28} P = {poly:<24} miss {miss:6.2}%");
    }
    println!(
        "  {:<28} {:<28} miss {:6.2}%",
        "conventional baseline",
        "",
        suite_miss(geom, &IndexSpec::modulo(), ops)
    );
}

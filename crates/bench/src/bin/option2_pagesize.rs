//! E14 — §3.1 option 2: page-size-aware dynamic index switching.
//!
//! The OS enables I-Poly indexing while every mapped segment has pages at
//! or above a threshold (the paper's example: 256KB), reverting to
//! conventional indexing — with an L1 flush — whenever a small-page
//! segment appears. This harness runs a three-phase process lifetime
//! against that controller and against the two static policies:
//!
//! * **phase A** — only large-page segments mapped; a tomcatv-style
//!   column-stride kernel runs (pathological under conventional
//!   indexing, clean under I-Poly);
//! * **phase B** — the process maps a small-page (4KB) segment and
//!   interleaves uniform accesses to it with the same kernel;
//! * **phase C** — the small segment is unmapped; the kernel continues.
//!
//! Expected shape: the dynamic controller tracks the static-I-Poly miss
//! ratio in phases A and C and the static-conventional ratio in phase B,
//! paying only two flushes (≤ 256 lines each) for the transitions.
//!
//! The three policies are independent simulations of the same phase
//! script, so they run on separate workers.
//!
//! Run: `cargo run --release -p cac-bench --bin option2_pagesize [passes]`.

use cac_bench::parallel::par_map;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
use cac_sim::stats::CacheStats;

const BIG_BASE: u64 = 0;
const SMALL_BASE: u64 = 1 << 31;

/// One pass of the phase-A/C kernel: a 64-column walk with a 4KB leading
/// dimension inside the large-page segment — 64 blocks that all collide
/// on one set pair under conventional indexing but fit trivially (they
/// are only a quarter of capacity) under I-Poly.
fn column_kernel(_pass: u64) -> impl Iterator<Item = u64> {
    (0..64u64).map(move |i| BIG_BASE + i * 4096)
}

/// One pass of the phase-B extra traffic: a sequential scan of 32 blocks
/// of the small-page segment (well-behaved under any index function).
fn small_segment_scan(_pass: u64) -> impl Iterator<Item = u64> {
    (0..32u64).map(move |i| SMALL_BASE + i * 32)
}

/// Which cache policy a worker simulates.
#[derive(Debug, Clone, Copy)]
enum Policy {
    StaticConventional,
    StaticIPoly,
    Dynamic,
}

/// Dynamic-controller details (None for the static policies).
struct DynReport {
    modes: Vec<IndexMode>,
    flushes: u64,
    flushed_lines: u64,
    by_mode: (u64, u64),
}

/// Per-policy result: one `CacheStats` delta per phase.
struct PolicyRun {
    phases: Vec<CacheStats>,
    dynamic: Option<DynReport>,
}

/// Abstracts "a cache plus optional segment-map events" so one phase
/// script drives all three policies. Boxed: the two simulators differ
/// considerably in size and each worker owns exactly one.
enum Sim {
    Plain(Box<Cache>),
    Dynamic(Box<DynamicIndexCache>),
}

impl Sim {
    fn read(&mut self, addr: u64) {
        match self {
            Sim::Plain(c) => {
                c.read(addr);
            }
            Sim::Dynamic(c) => {
                c.read(addr);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Sim::Plain(c) => c.stats(),
            Sim::Dynamic(c) => c.stats(),
        }
    }
}

fn run_policy(policy: Policy, geom: CacheGeometry, passes: u64) -> PolicyRun {
    let mut sim = match policy {
        Policy::StaticConventional => Sim::Plain(Box::new(
            Cache::build(geom, IndexSpec::modulo()).expect("cache"),
        )),
        Policy::StaticIPoly => Sim::Plain(Box::new(
            Cache::build(geom, IndexSpec::ipoly_skewed()).expect("cache"),
        )),
        Policy::Dynamic => Sim::Dynamic(Box::new(
            DynamicIndexCache::new(geom, IndexSpec::ipoly_skewed(), 256 * 1024)
                .expect("controller"),
        )),
    };
    let mut phases = Vec::new();
    let mut modes = Vec::new();
    let mut checkpoint = CacheStats::default();
    let mut phase_end = |sim: &Sim, phases: &mut Vec<CacheStats>| {
        let total = sim.stats();
        phases.push(total - checkpoint);
        checkpoint = total;
    };

    // Phase A: large pages only.
    if let Sim::Dynamic(d) = &mut sim {
        d.map_segment(Segment::new(BIG_BASE, 1 << 28, 256 * 1024).expect("segment"))
            .expect("map");
        modes.push(d.mode());
    }
    for p in 0..passes {
        for a in column_kernel(p) {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    // Phase B: a small-page segment appears (mmap of a 4KB-page file).
    if let Sim::Dynamic(d) = &mut sim {
        d.map_segment(Segment::new(SMALL_BASE, 1 << 20, 4096).expect("segment"))
            .expect("map");
        modes.push(d.mode());
    }
    for p in 0..passes {
        for a in column_kernel(p) {
            sim.read(a);
        }
        for a in small_segment_scan(p) {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    // Phase C: the small segment goes away.
    if let Sim::Dynamic(d) = &mut sim {
        d.unmap_segment(SMALL_BASE);
        modes.push(d.mode());
    }
    for p in 0..passes {
        for a in column_kernel(p) {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    let dynamic = match sim {
        Sim::Dynamic(d) => Some(DynReport {
            modes,
            flushes: d.flushes(),
            flushed_lines: d.flushed_lines(),
            by_mode: d.accesses_by_mode(),
        }),
        Sim::Plain(_) => None,
    };
    PolicyRun { phases, dynamic }
}

fn main() {
    let passes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    let policies = [
        Policy::StaticConventional,
        Policy::StaticIPoly,
        Policy::Dynamic,
    ];
    let runs = par_map(&policies, |&p| run_policy(p, geom, passes));

    println!("E14 / section 3.1 option 2: page-size-aware index switching ({passes} passes/phase, {geom})");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "miss ratio (%)", "phase A", "phase B", "phase C"
    );
    let row = |name: &str, run: &PolicyRun| {
        let cells: Vec<String> = run
            .phases
            .iter()
            .map(|s| format!("{:>12.2}", s.miss_ratio() * 100.0))
            .collect();
        println!("{name:<28} {}", cells.join(" "));
    };
    row("static conventional", &runs[0]);
    row("static I-Poly (option 3)", &runs[1]);
    row("dynamic (option 2)", &runs[2]);

    let report = runs[2].dynamic.as_ref().expect("dynamic policy report");
    println!(
        "\ndynamic controller: modes per phase = {:?}, flushes = {}, lines discarded = {}",
        report
            .modes
            .iter()
            .map(|m| match m {
                IndexMode::Conventional => "conv",
                IndexMode::IPoly => "ipoly",
            })
            .collect::<Vec<_>>(),
        report.flushes,
        report.flushed_lines,
    );
    let (conv_acc, ipoly_acc) = report.by_mode;
    println!("accesses by mode: conventional {conv_acc}, ipoly {ipoly_acc}");
    println!(
        "\nShape check: option 2 matches I-Poly whenever it may (A, C) and conventional \
         when it must (B); the only extra cost is the flush at each transition."
    );
}

//! E14 — §3.1 option 2: page-size-aware dynamic index switching.
//!
//! The OS enables I-Poly indexing while every mapped segment has pages at
//! or above a threshold (the paper's example: 256KB), reverting to
//! conventional indexing — with an L1 flush — whenever a small-page
//! segment appears. This harness runs a three-phase process lifetime
//! against that controller and against the two static policies:
//!
//! * **phase A** — only large-page segments mapped; a tomcatv-style
//!   column-stride kernel runs (pathological under conventional
//!   indexing, clean under I-Poly);
//! * **phase B** — the process maps a small-page (4KB) segment and
//!   interleaves uniform accesses to it with the same kernel;
//! * **phase C** — the small segment is unmapped; the kernel continues.
//!
//! Expected shape: the dynamic controller tracks the static-I-Poly miss
//! ratio in phases A and C and the static-conventional ratio in phase B,
//! paying only two flushes (≤ 256 lines each) for the transitions.
//!
//! Run: `cargo run --release -p cac-bench --bin option2_pagesize [passes]`.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
use cac_sim::stats::CacheStats;

const BIG_BASE: u64 = 0;
const SMALL_BASE: u64 = 1 << 31;

/// One pass of the phase-A/C kernel: a 64-column walk with a 4KB leading
/// dimension inside the large-page segment — 64 blocks that all collide
/// on one set pair under conventional indexing but fit trivially (they
/// are only a quarter of capacity) under I-Poly.
fn column_kernel(_pass: u64) -> impl Iterator<Item = u64> {
    (0..64u64).map(move |i| BIG_BASE + i * 4096)
}

/// One pass of the phase-B extra traffic: a sequential scan of 32 blocks
/// of the small-page segment (well-behaved under any index function).
fn small_segment_scan(_pass: u64) -> impl Iterator<Item = u64> {
    (0..32u64).map(move |i| SMALL_BASE + i * 32)
}

#[derive(Default)]
struct PhaseTotals {
    phases: Vec<CacheStats>,
}

impl PhaseTotals {
    fn push_delta(&mut self, cumulative: CacheStats) {
        let prev: CacheStats = self.phases.iter().copied().fold(
            CacheStats::default(),
            |acc, s| acc + s,
        );
        // CacheStats has no Sub; recompute the delta field-wise via the
        // fields the report needs.
        let delta = CacheStats {
            accesses: cumulative.accesses - prev.accesses,
            hits: cumulative.hits - prev.hits,
            misses: cumulative.misses - prev.misses,
            reads: cumulative.reads - prev.reads,
            writes: cumulative.writes - prev.writes,
            read_misses: cumulative.read_misses - prev.read_misses,
            write_misses: cumulative.write_misses - prev.write_misses,
            evictions: cumulative.evictions - prev.evictions,
            invalidations: cumulative.invalidations - prev.invalidations,
            writebacks: cumulative.writebacks - prev.writebacks,
        };
        self.phases.push(delta);
    }
}

fn main() {
    let passes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    let mut dynamic =
        DynamicIndexCache::new(geom, IndexSpec::ipoly_skewed(), 256 * 1024).expect("controller");
    let mut conv = Cache::build(geom, IndexSpec::modulo()).expect("cache");
    let mut ipoly = Cache::build(geom, IndexSpec::ipoly_skewed()).expect("cache");

    let mut dyn_phases = PhaseTotals::default();
    let mut conv_phases = PhaseTotals::default();
    let mut ipoly_phases = PhaseTotals::default();
    let mut modes = Vec::new();

    // Phase A: large pages only.
    dynamic
        .map_segment(Segment::new(BIG_BASE, 1 << 28, 256 * 1024).expect("segment"))
        .expect("map");
    modes.push(dynamic.mode());
    for p in 0..passes {
        for a in column_kernel(p) {
            dynamic.read(a);
            conv.read(a);
            ipoly.read(a);
        }
    }
    dyn_phases.push_delta(dynamic.stats());
    conv_phases.push_delta(conv.stats());
    ipoly_phases.push_delta(ipoly.stats());

    // Phase B: a small-page segment appears (mmap of a 4KB-page file).
    dynamic
        .map_segment(Segment::new(SMALL_BASE, 1 << 20, 4096).expect("segment"))
        .expect("map");
    modes.push(dynamic.mode());
    for p in 0..passes {
        for a in column_kernel(p) {
            dynamic.read(a);
            conv.read(a);
            ipoly.read(a);
        }
        for a in small_segment_scan(p) {
            dynamic.read(a);
            conv.read(a);
            ipoly.read(a);
        }
    }
    dyn_phases.push_delta(dynamic.stats());
    conv_phases.push_delta(conv.stats());
    ipoly_phases.push_delta(ipoly.stats());

    // Phase C: the small segment goes away.
    dynamic.unmap_segment(SMALL_BASE);
    modes.push(dynamic.mode());
    for p in 0..passes {
        for a in column_kernel(p) {
            dynamic.read(a);
            conv.read(a);
            ipoly.read(a);
        }
    }
    dyn_phases.push_delta(dynamic.stats());
    conv_phases.push_delta(conv.stats());
    ipoly_phases.push_delta(ipoly.stats());

    println!("E14 / section 3.1 option 2: page-size-aware index switching ({passes} passes/phase, {geom})");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "miss ratio (%)", "phase A", "phase B", "phase C"
    );
    let row = |name: &str, phases: &PhaseTotals| {
        let cells: Vec<String> = phases
            .phases
            .iter()
            .map(|s| format!("{:>12.2}", s.miss_ratio() * 100.0))
            .collect();
        println!("{name:<28} {}", cells.join(" "));
    };
    row("static conventional", &conv_phases);
    row("static I-Poly (option 3)", &ipoly_phases);
    row("dynamic (option 2)", &dyn_phases);

    println!(
        "\ndynamic controller: modes per phase = {:?}, flushes = {}, lines discarded = {}",
        modes
            .iter()
            .map(|m| match m {
                IndexMode::Conventional => "conv",
                IndexMode::IPoly => "ipoly",
            })
            .collect::<Vec<_>>(),
        dynamic.flushes(),
        dynamic.flushed_lines(),
    );
    let (conv_acc, ipoly_acc) = dynamic.accesses_by_mode();
    println!("accesses by mode: conventional {conv_acc}, ipoly {ipoly_acc}");
    println!(
        "\nShape check: option 2 matches I-Poly whenever it may (A, C) and conventional \
         when it must (B); the only extra cost is the flush at each transition."
    );
}

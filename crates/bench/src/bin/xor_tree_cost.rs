//! E8 — §3.4: implementation cost of the I-Poly XOR trees.
//!
//! For the cache geometries of the evaluation, enumerates the selected
//! polynomials and reports per-index-bit XOR fan-in, maximum fan-in and
//! estimated 2-input-gate depth, verifying the paper's statements that
//! the fan-in "is never higher than 5" for the chosen polynomials and
//! that only the low 19 address bits are used. The carry-lookahead model
//! then completes the argument: the 19 low bits leave a binary CLA two
//! block-delays before the full 64-bit sum, which is where the XOR tree
//! hides.

use cac_core::cla::ClaModel;
use cac_core::latency::CriticalPath;
use cac_gf2::irreducible::{irreducibles, is_primitive};
use cac_gf2::xor_tree::{min_fan_in_poly, XorTree};

fn main() {
    println!("E8 / section 3.4: XOR-tree cost of I-Poly index functions");

    let cla = ClaModel::binary64();
    println!(
        "\nCLA timing (64-bit binary lookahead): 19 low bits ready at {} block-delays, \
         full sum at {}, slack {}",
        cla.delay_for_bits(19),
        cla.full_delay(),
        cla.slack_for_bits(19)
    );
    assert_eq!(
        cla.delay_for_bits(19),
        9,
        "paper: 'a delay of about 9 blocks'"
    );
    assert_eq!(cla.full_delay(), 11, "paper: 'requires 11 block-delays'");
    for (label, m, v) in [
        ("8KB 2-way (128 sets)", 7u32, 14u32),
        ("16KB 2-way (256 sets)", 8, 14),
        ("8KB DM (256 sets)", 8, 14),
    ] {
        let p = min_fan_in_poly(m, v);
        let tree = XorTree::new(p, v);
        let fan_ins: Vec<u32> = (0..tree.output_bits()).map(|i| tree.fan_in(i)).collect();
        println!(
            "\n{label}: P(x) = {p}, v = {v} block-address bits ({} address bits), {}",
            v + 5,
            if is_primitive(p) {
                "primitive (Rau's original construction)"
            } else {
                "irreducible but not primitive"
            }
        );
        println!("  per-bit fan-in: {fan_ins:?}");
        println!(
            "  max fan-in {} (paper: <= 5), XOR2 depth {}",
            tree.max_fan_in(),
            tree.gate_depth()
        );
        let good = irreducibles(m)
            .filter(|&q| XorTree::new(q, v).max_fan_in() <= 5)
            .count();
        let total = irreducibles(m).count();
        println!("  {good} of {total} irreducible degree-{m} polynomials achieve fan-in <= 5");
        assert!(tree.max_fan_in() <= 5);
        // One XOR2 level per unit of gate depth; assume one lookahead
        // block per XOR2 level for the critical-path verdict.
        let verdict = cla.critical_path_for(v + 5, tree.gate_depth());
        println!(
            "  CLA verdict at depth {}: {}",
            tree.gate_depth(),
            match verdict {
                CriticalPath::XorHidden => "XOR hidden in adder slack",
                CriticalPath::XorExposed => "XOR exposed (one-cycle penalty applies)",
            }
        );
    }
    println!("\nall selected polynomials satisfy the paper's fan-in claim");
}

//! E3 — **Table 2** of the paper: IPC and load miss ratio for the 18
//! SPEC95 workload models under seven configurations:
//!
//! | column | configuration |
//! |--------|---------------|
//! | `16K`, `miss` | 16KB 2-way conventional |
//! | `8K`, `8K+p`, `miss` | 8KB 2-way conventional, without/with address prediction |
//! | `Hp`, `miss` | 8KB skewed I-Poly, XOR off the critical path |
//! | `HpCP`, `+pred` | 8KB skewed I-Poly, XOR on the critical path, without/with prediction |
//!
//! Each measured row is followed by the paper's published row for shape
//! comparison. Run: `cargo run --release -p cac-bench --bin table2_ipc
//! [ops_per_config]`.

use cac_bench::table2::{print_header, print_row, print_summary, run_all, summarize};

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    print_header(&format!(
        "E3 / Table 2: IPC and load miss ratio ({ops} instructions per configuration)"
    ));
    let rows = run_all(ops, 12345);
    for r in &rows {
        print_row(r);
    }
    println!();
    let ints: Vec<_> = rows.iter().filter(|r| !r.bench.is_fp()).collect();
    let fps: Vec<_> = rows.iter().filter(|r| r.bench.is_fp()).collect();
    let all: Vec<_> = rows.iter().collect();
    print_summary("Int avg", &summarize(&ints));
    print_summary("Fp avg", &summarize(&fps));
    print_summary("Combined", &summarize(&all));
    println!("(paper combined: 1.36 10.47 | 1.27 1.28 16.53 | 1.33 9.68 | 1.29 1.33)");

    // §5 predictability claim.
    let conv: Vec<f64> = rows.iter().map(|r| r.conv8_miss).collect();
    let ipoly: Vec<f64> = rows.iter().map(|r| r.ipoly_miss).collect();
    println!(
        "miss-ratio stddev: conv {:.2} -> ipoly {:.2}  (paper: 18.49 -> 5.16)",
        cac_bench::std_dev(&conv),
        cac_bench::std_dev(&ipoly)
    );
}

//! A6 — ablation (beyond the paper): does the **L2** index function
//! matter for holes?
//!
//! §3.3's analytical model assumes the L1 and L2 indices are
//! *uncorrelated* pseudo-random hashes ("As these functions are
//! pseudo-random there will be no correlation between the indices at L1
//! and L2"). But the decorrelation already comes from two places: the
//! different hash families *and* the VA→PA page mapping. This ablation
//! fixes the L1 at skewed I-Poly and sweeps the L2 index function to ask
//! whether a plain conventional L2 (cheaper, and what the paper's E6
//! configuration uses) changes the hole rate.
//!
//! Run: `cargo run --release -p cac-bench --bin ablation_l2_index
//! [blocks] [rounds]`.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::vm::PageMapper;

fn main() {
    let blocks: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16384);
    let rounds: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let l1 = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let l2 = CacheGeometry::new(256 * 1024, 32, 1).expect("geometry");
    // The §3.3 worked example: P_H = (2^m1 - 1)/2^m2 = 255/8192.
    let p_h = 255.0 / 8192.0;

    println!(
        "A6: hole rate vs L2 index function (8KB DM I-Poly L1 / 256KB DM L2, \
         {blocks}-block stream x {rounds} rounds, randomized 4KB pages)"
    );
    println!("analytical P_H (upper bound, assumes every L2 victim is L1-resident): {p_h:.4}\n");
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "L2 index", "L2 misses", "holes created", "hole rate"
    );

    for (name, l2_spec) in [
        ("conventional", IndexSpec::modulo()),
        ("I-Poly", IndexSpec::ipoly()),
        ("XOR-fold", IndexSpec::xor()),
        ("random-table", IndexSpec::rand_table()),
    ] {
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            l2_spec,
            PageMapper::randomized(4096, 1 << 28, 7),
        )
        .expect("hierarchy");
        for round in 0..rounds {
            for i in 0..blocks {
                h.read(i * 32 + (round % 2) * 8);
            }
        }
        assert!(h.check_inclusion(), "inclusion violated");
        let stats = h.stats();
        println!(
            "{name:<22} {:>12} {:>14} {:>12.4}",
            h.l2_stats().misses,
            stats.holes_created,
            h.hole_rate(),
        );
    }

    println!(
        "\nFinding: all rates sit within ~2x of the analytical estimate, but they are\n\
         NOT identical — the model's assumption that the L2 victim is L1-resident\n\
         with uniform probability 2^(m1-m2) holds well for a conventional L2 on\n\
         streaming traffic (victims are old) and degrades when a pseudo-random L2\n\
         index makes eviction correlate with recency (hot hashed sets evict young\n\
         blocks, which are exactly the L1-resident ones). The absolute effect stays\n\
         negligible either way, which is what the paper's conclusion relies on."
    );
}

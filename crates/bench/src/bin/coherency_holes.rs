//! E15 — §3.3 cause 3: holes from external coherency actions.
//!
//! The paper lists three causes of L1 holes in the virtual-real hierarchy
//! — L2 replacements, virtual-alias removal, and external coherency
//! invalidations — and sets the third aside because such invalidations
//! "occur regardless of the cache architecture". This harness checks that
//! dismissal: four nodes on a write-invalidate snooping bus run identical
//! private working sets plus a shared ping-pong region, once with
//! conventional L1 indexing and once with skewed I-Poly. The external
//! hole counts should be (nearly) identical across the two index
//! functions, while the L1 conflict behaviour differs as usual.
//!
//! Run: `cargo run --release -p cac-bench --bin coherency_holes
//! [rounds]`.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::coherence::SnoopingBus;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::vm::PageMapper;

const NODES: usize = 4;
/// Shared region: 64 blocks at 1MB.
const SHARED_BASE: u64 = 1 << 20;

fn build_bus(l1_spec: IndexSpec) -> SnoopingBus {
    let nodes = (0..NODES)
        .map(|_| {
            TwoLevelHierarchy::new(
                CacheGeometry::new(8 * 1024, 32, 2).expect("geometry"),
                l1_spec.clone(),
                CacheGeometry::new(256 * 1024, 32, 2).expect("geometry"),
                IndexSpec::modulo(),
                PageMapper::identity(),
            )
            .expect("hierarchy")
        })
        .collect();
    SnoopingBus::new(nodes).expect("bus")
}

/// One round of traffic: every node sweeps its private column-strided
/// array (pathological under conventional indexing), then the round's
/// writer updates the shared region that all nodes then read.
fn run(bus: &mut SnoopingBus, rounds: u64) {
    for round in 0..rounds {
        for node in 0..NODES {
            // Private 64-column walk, 4KB leading dimension, node-offset.
            let base = (node as u64) << 32;
            for i in 0..64u64 {
                bus.read(node, base + i * 4096);
            }
        }
        // Shared phase: one writer, everyone reads.
        let writer = (round % NODES as u64) as usize;
        for blk in 0..16u64 {
            bus.write(writer, SHARED_BASE + blk * 32);
        }
        for node in 0..NODES {
            for blk in 0..16u64 {
                bus.read(node, SHARED_BASE + blk * 32);
            }
        }
    }
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    println!("E15 / section 3.3 cause 3: coherence holes, {NODES} nodes, {rounds} rounds");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "L1 indexing", "L1 miss%", "repl holes", "alias holes", "coher holes", "snoop hit%"
    );

    for (name, spec) in [
        ("conventional", IndexSpec::modulo()),
        ("skewed I-Poly", IndexSpec::ipoly_skewed()),
    ] {
        let mut bus = build_bus(spec);
        run(&mut bus, rounds);
        assert!(bus.check_invariants(), "inclusion violated");

        let mut miss_pct = 0.0;
        let (mut repl, mut alias, mut coher) = (0u64, 0u64, 0u64);
        for i in 0..NODES {
            let node = bus.node(i);
            miss_pct += node.l1_stats().miss_ratio() * 100.0 / NODES as f64;
            let s = node.stats();
            repl += s.holes_created;
            alias += s.alias_invalidations;
            coher += s.external_invalidations_l1;
        }
        println!(
            "{name:<22} {:>12.2} {:>12} {:>12} {:>12} {:>12.1}",
            miss_pct,
            repl,
            alias,
            coher,
            bus.stats().snoop_hit_rate() * 100.0,
        );
    }

    println!(
        "\nShape check: the two rows differ wildly in L1 miss ratio (the private \
         column walk is pathological under conventional indexing) but agree on \
         coherence holes — external invalidations depend on sharing, not on the \
         index function, which is why the paper sets them aside (section 3.3)."
    );
}

//! E9 — §3.4/§4: memory address predictability.
//!
//! Runs the workload suite's dynamic loads through the 1K-entry untagged
//! last-address + stride predictor and reports the usable (confident and
//! correct) prediction rate. The paper, citing \[9\], expects "the address
//! of about 75% of the dynamically executed memory instructions" to be
//! predictable on SPEC95.
//!
//! Run: `cargo run --release -p cac-bench --bin predictor_accuracy [ops]`.

use cac_bench::arithmetic_mean;
use cac_core::AddressPredictor;
use cac_trace::spec::SpecBenchmark;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    println!("E9 / section 3.4: address-prediction rates ({ops} ops/benchmark, 1K-entry table)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "bench", "loads", "usable %", "precision %", "raw %"
    );
    let mut usable = Vec::new();
    for b in SpecBenchmark::all() {
        let mut p = AddressPredictor::paper_default();
        let mut loads = 0u64;
        for op in b.generator(11).take(ops) {
            if op.is_load() {
                p.observe(op.pc, op.addr.expect("loads have addresses"));
                loads += 1;
            }
        }
        let s = p.stats();
        usable.push(s.usable_rate() * 100.0);
        println!(
            "{:<10} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            b.name(),
            loads,
            s.usable_rate() * 100.0,
            s.confidence_precision() * 100.0,
            s.raw_rate() * 100.0
        );
    }
    println!(
        "\naverage usable prediction rate: {:.1}%  (paper, citing [9]: about 75%)",
        arithmetic_mean(&usable)
    );
}

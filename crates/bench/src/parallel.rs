//! Work-stealing parallel map for configuration sweeps.
//!
//! The experiment drivers sweep hundreds-to-thousands of independent
//! cache configurations (strides, benchmarks, organizations); each
//! simulation is pure, so the sweep is embarrassingly parallel. The
//! build environment has no crate registry, so instead of `rayon` this
//! module provides the one primitive the drivers need — an
//! order-preserving [`par_map`] — on top of `std::thread::scope` with an
//! atomic work queue. If `rayon` becomes available,
//! `items.par_iter().map(f).collect()` is a drop-in replacement.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Applies `f` to every item on a pool of OS threads, returning results
/// in input order.
///
/// Items are handed out dynamically (an atomic cursor), so uneven
/// per-item cost — a pathological stride simulating 10× slower than a
/// conflict-free one — load-balances naturally. Spawns at most
/// `available_parallelism` threads and runs inline for trivial inputs.
///
/// # Ordering
///
/// `out[i] == f(&items[i])` always: results are reassembled by index,
/// so the output order is the **input order**, never completion order,
/// regardless of how items were scheduled across workers. Experiments
/// rely on this to zip sweep results back to their configurations.
/// `f` itself may observe items in any interleaving and must not
/// depend on evaluation order (it only gets `&T`, and shared state
/// would serialise the sweep anyway).
///
/// # Panics
///
/// If `f` panics for any item, the sweep stops handing out new work,
/// already-computed results are discarded, and one panic propagates to
/// the caller once every worker has been joined (the message names the
/// first undelivered item; with several concurrent panics, which
/// payload surfaces is unspecified). There is no partial-result
/// recovery: a sweep either completes for every item or panics.
///
/// # Example
///
/// ```
/// let squares = cac_bench::parallel::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // Ends when every worker has dropped its sender — including after
        // a worker panic, which the scope then re-raises on join.
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("a worker panicked before delivering this result"))
            .collect()
    })
}

/// [`par_map`] over an inclusive-exclusive index range, for sweeps whose
/// "items" are just config numbers (strides, seeds).
///
/// # Example
///
/// ```
/// let doubled = cac_bench::parallel::par_map_range(0..5, |i| i * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn par_map_range<R, F>(range: std::ops::Range<u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let items: Vec<u64> = range.collect();
    par_map(&items, |&i| f(i))
}

/// [`par_map_range`] in contiguous *blocks*: `f` receives a sub-range
/// and returns one result per index; the flattened output is in range
/// order, exactly as `par_map_range` would produce.
///
/// The point of blocking is per-block state reuse: a sweep worker can
/// build its simulation models (LUT compilation, storage allocation)
/// once per block and `reset()` them between items, instead of paying
/// construction per item — the dominant cost for short-trace sweeps
/// like `cac fig1`. Several blocks per worker are created so uneven
/// per-item cost still load-balances.
///
/// # Example
///
/// ```
/// let out = cac_bench::parallel::par_map_blocked(0..10, |block| {
///     // one "expensive setup" per block, reused across its items
///     let base = 100;
///     block.map(|i| base + i).collect()
/// });
/// assert_eq!(out, (100..110).collect::<Vec<_>>());
/// ```
pub fn par_map_blocked<R, F>(range: std::ops::Range<u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<u64>) -> Vec<R> + Sync,
{
    let n = range.end.saturating_sub(range.start);
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1) as u64;
    // ~8 blocks per worker: few enough to amortise per-block setup,
    // many enough that a block of pathological items load-balances.
    let blocks = (workers * 8).min(n);
    let len = n.div_ceil(blocks);
    let ranges: Vec<std::ops::Range<u64>> = (0..blocks)
        .map(|b| {
            let start = range.start + b * len;
            start..(start + len).min(range.end)
        })
        .filter(|r| !r.is_empty())
        .collect();
    let out = par_map(&ranges, |r| {
        let got = f(r.clone());
        assert_eq!(
            got.len(),
            (r.end - r.start) as usize,
            "block callback must return one result per index"
        );
        got
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_load_balances() {
        // Items with wildly different costs still come back in order.
        let out = par_map_range(0..64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_map_flattens_in_range_order() {
        assert_eq!(
            par_map_blocked(5..25, |b| b.map(|i| i * 2).collect()),
            (5..25).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert!(par_map_blocked(3..3, |b| b.collect::<Vec<_>>()).is_empty());
        assert_eq!(par_map_blocked(7..8, |b| b.collect()), vec![7]);
    }

    #[test]
    fn results_come_back_in_input_order_not_completion_order() {
        // Earlier items sleep longer, so completion order is roughly the
        // REVERSE of input order; the output must still be input order.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, |&x| {
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 100));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], |&x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}

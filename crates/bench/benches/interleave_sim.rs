//! Micro-benchmark: throughput of the banked-memory simulator.
//!
//! Measures simulated accesses per wall-clock second for the selection
//! functions the E12 experiment compares, so regressions in the
//! interleave substrate are caught the same way as in the cache and CPU
//! simulators.

use cac_core::IndexSpec;
use cac_interleave::{BankConfig, InterleavedMemory};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_interleave(c: &mut Criterion) {
    let cfg = BankConfig::new(16, 8, 6).unwrap();
    let mut group = c.benchmark_group("interleave_access");
    group.throughput(Throughput::Elements(4096));
    for spec in [
        IndexSpec::modulo(),
        IndexSpec::prime(),
        IndexSpec::ipoly(),
        IndexSpec::rand_table(),
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                let mut m = InterleavedMemory::build(cfg, spec.clone()).unwrap();
                for i in 0..4096u64 {
                    m.access(black_box(i * 24));
                }
                black_box(m.stats().bandwidth())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interleave);
criterion_main!(benches);

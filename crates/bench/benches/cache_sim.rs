//! Micro-benchmark: cache-simulator throughput (accesses per second) for
//! single-level caches and the two-level virtual-real hierarchy.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::vm::PageMapper;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_cache(c: &mut Criterion) {
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let addrs: Vec<u64> = (0..4096u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 7) & 0xF_FFFF)
        .collect();

    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        group.bench_function(spec.name(), |b| {
            let mut cache = Cache::build(geom, spec.clone()).unwrap();
            b.iter(|| {
                for &a in &addrs {
                    black_box(cache.read(black_box(a)));
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hierarchy_access");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("l1_ipoly_l2_conv", |b| {
        let l2 = CacheGeometry::new(256 * 1024, 32, 2).unwrap();
        let mut h = TwoLevelHierarchy::new(
            geom,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 28, 1),
        )
        .unwrap();
        b.iter(|| {
            for &a in &addrs {
                black_box(h.read(black_box(a)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);

//! Micro-benchmark: cache-simulator throughput (accesses per second) for
//! single-level caches and the two-level virtual-real hierarchy.
//!
//! `cache_access/...` drives the post-overhaul simulator (LUT-compiled
//! placement + struct-of-arrays storage); `cache_access_computed/...`
//! drives the same simulator with LUT compilation defeated, i.e. the
//! seed's per-probe dynamic-dispatch path, so the end-to-end speedup of
//! the overhaul is measured rather than asserted. `cache_replay` runs
//! the batched `run_refs` API over a pre-materialised trace — the form
//! the experiment drivers use.

use cac_core::{CacheGeometry, IndexFunction, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::replacement::ReplacementPolicy;
use cac_sim::vm::PageMapper;
use cac_trace::MemRef;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

/// Hides a placement's structure so `IndexTable` keeps the computed
/// (pre-overhaul) path.
#[derive(Debug)]
struct Opaque(Arc<dyn IndexFunction>);

impl IndexFunction for Opaque {
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        self.0.set_index(block_addr, way)
    }
    fn num_sets(&self) -> u32 {
        self.0.num_sets()
    }
    fn ways(&self) -> u32 {
        self.0.ways()
    }
    fn is_skewed(&self) -> bool {
        self.0.is_skewed()
    }
    fn label(&self) -> String {
        self.0.label()
    }
}

fn addrs() -> Vec<u64> {
    (0..4096u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 7) & 0xF_FFFF)
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let addrs = addrs();

    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        group.bench_function(spec.name(), |b| {
            let mut cache = Cache::build(geom, spec.clone()).unwrap();
            b.iter(|| {
                for &a in &addrs {
                    black_box(cache.read(black_box(a)));
                }
            })
        });
    }
    group.finish();

    // The same accesses with LUT compilation defeated: one dynamic
    // dispatch + hash evaluation per probed way, as the seed simulator
    // (with its nested Vec<Vec<Option<Line>>> replaced) paid.
    let mut group = c.benchmark_group("cache_access_computed");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        group.bench_function(spec.name(), |b| {
            let mut cache = Cache::from_parts(
                geom,
                Arc::new(Opaque(spec.build(geom).unwrap())),
                ReplacementPolicy::Lru,
                Default::default(),
                0x5eed_cace,
            );
            b.iter(|| {
                for &a in &addrs {
                    black_box(cache.read(black_box(a)));
                }
            })
        });
    }
    group.finish();

    // Batched replay, the form the experiment drivers use.
    let mut group = c.benchmark_group("cache_replay");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    let refs: Vec<MemRef> = addrs
        .iter()
        .map(|&addr| MemRef {
            pc: 0x1000,
            addr,
            is_write: false,
        })
        .collect();
    group.bench_function("ipoly-skew_run_refs", |b| {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| black_box(cache.run_refs(refs.iter().copied())))
    });
    // The same replay through the `MemoryModel` trait object, as
    // `cac run --config` drives it: the dynamic dispatch is once per
    // slice, so this must stay within 5% of the concrete path above.
    group.bench_function("ipoly-skew_run_refs_dyn", |b| {
        use cac_sim::model::MemoryModel;
        let mut model: Box<dyn MemoryModel> =
            Box::new(Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap());
        b.iter(|| black_box(model.run_refs(&refs)))
    });
    group.finish();

    let mut group = c.benchmark_group("hierarchy_access");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("l1_ipoly_l2_conv", |b| {
        let l2 = CacheGeometry::new(256 * 1024, 32, 2).unwrap();
        let mut h = TwoLevelHierarchy::new(
            geom,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 28, 1),
        )
        .unwrap();
        b.iter(|| {
            for &a in &addrs {
                black_box(h.read(black_box(a)));
            }
        })
    });
    group.finish();
}

/// The O(1) fully-associative engine: per-op and batched replay on the
/// degenerate one-set geometry (8KB/32B = 256 ways — the paper's
/// reference curve), plus a 64KB/2048-way configuration where the old
/// O(ways) scan was hopeless. The same hashed 1MB address mix as
/// `cache_access`, so numbers are comparable across groups.
fn bench_fully_assoc(c: &mut Criterion) {
    let addrs = addrs();
    let refs: Vec<MemRef> = addrs
        .iter()
        .map(|&addr| MemRef {
            pc: 0x1000,
            addr,
            is_write: false,
        })
        .collect();

    let mut group = c.benchmark_group("fully_assoc");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    let fa8k = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
    group.bench_function("8k_256w_read", |b| {
        let mut cache = Cache::build(fa8k, IndexSpec::modulo()).unwrap();
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.read(black_box(a)));
            }
        })
    });
    group.bench_function("8k_256w_run_refs", |b| {
        let mut cache = Cache::build(fa8k, IndexSpec::modulo()).unwrap();
        b.iter(|| black_box(cache.run_refs_slice(&refs)))
    });
    let fa64k = CacheGeometry::fully_associative(64 * 1024, 32).unwrap();
    group.bench_function("64k_2048w_run_refs", |b| {
        let mut cache = Cache::build(fa64k, IndexSpec::modulo()).unwrap();
        b.iter(|| black_box(cache.run_refs_slice(&refs)))
    });
    group.finish();
}

/// The per-ways probe kernels behind `run_refs`: one monomorphized
/// kernel per (ways, policy) shape. 8 ways exercises the generic
/// fallback loop for comparison.
fn bench_probe_kernels(c: &mut Criterion) {
    use cac_sim::replacement::ReplacementPolicy;

    let addrs = addrs();
    let refs: Vec<MemRef> = addrs
        .iter()
        .map(|&addr| MemRef {
            pc: 0x1000,
            addr,
            is_write: false,
        })
        .collect();

    let mut group = c.benchmark_group("probe_kernels");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, ways) in [
        ("1way", 1u32),
        ("2way", 2),
        ("4way", 4),
        ("8way_generic", 8),
    ] {
        let geom = CacheGeometry::new(8 * 1024, 32, ways).unwrap();
        group.bench_function(name, |b| {
            let mut cache = Cache::build(geom, IndexSpec::modulo()).unwrap();
            b.iter(|| black_box(cache.run_refs_slice(&refs)))
        });
    }
    let g2 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    group.bench_function("2way_skew", |b| {
        let mut cache = Cache::build(g2, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| black_box(cache.run_refs_slice(&refs)))
    });
    group.bench_function("2way_random", |b| {
        let mut cache = Cache::builder(g2)
            .replacement(ReplacementPolicy::Random)
            .build()
            .unwrap();
        b.iter(|| black_box(cache.run_refs_slice(&refs)))
    });
    group.finish();
}

/// Binary-format streaming replay vs in-memory batched replay on a
/// 10M-reference trace: the acceptance bar for the trace codec is that
/// decoding varint/delta records off a byte stream sustains at least
/// 80% of `run_refs` on a pre-materialised `Vec<MemRef>`.
fn bench_trace_streaming(c: &mut Criterion) {
    use cac_sim::replay::{run_cache_chunked, run_cache_refs};
    use cac_trace::io::{write_trace_binary, BinaryTraceReader, DEFAULT_CHUNK_OPS};
    use cac_trace::TraceOp;

    const OPS: u64 = 10_000_000;
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    // A load-only trace with the same hashed 1MB address mix as the
    // access benches, so every record is a cache reference.
    let ops_iter = || {
        (0..OPS).map(|i| {
            let addr = (i.wrapping_mul(0x9E37_79B9) >> 7) & 0xF_FFFF;
            TraceOp::load(0x40_0000 + i * 4, addr, 5, Some(3))
        })
    };
    let refs: Vec<MemRef> = ops_iter().map(|op| op.mem_ref().unwrap()).collect();
    let bytes = write_trace_binary(Vec::new(), ops_iter()).unwrap();

    let mut group = c.benchmark_group("trace_streaming");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("inmem_run_refs", |b| {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| black_box(cache.run_refs(refs.iter().copied())))
    });
    group.bench_function("binary_stream", |b| {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| {
            let mut reader = BinaryTraceReader::new(black_box(&bytes[..])).unwrap();
            black_box(run_cache_refs(&mut cache, &mut reader).unwrap())
        })
    });
    group.bench_function("binary_stream_ops", |b| {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| {
            let reader = BinaryTraceReader::new(black_box(&bytes[..])).unwrap();
            black_box(run_cache_chunked(&mut cache, reader, DEFAULT_CHUNK_OPS).unwrap())
        })
    });
    group.bench_function("binary_decode_only", |b| {
        let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
        b.iter(|| {
            let mut reader = BinaryTraceReader::new(black_box(&bytes[..])).unwrap();
            let mut n = 0u64;
            while reader.read_chunk(&mut buf, DEFAULT_CHUNK_OPS).unwrap() > 0 {
                n += buf.len() as u64;
            }
            black_box(n)
        })
    });
    // The fault-tolerance bar: on clean input, lenient decode must stay
    // within 10% of the strict streaming path above.
    group.bench_function("binary_stream_lenient", |b| {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        b.iter(|| {
            let mut reader = BinaryTraceReader::new_lenient(black_box(&bytes[..])).unwrap();
            black_box(run_cache_refs(&mut cache, &mut reader).unwrap())
        })
    });
    group.finish();
}

/// Decode-once multi-model sweep vs independent per-configuration
/// replay over the §2.1 organization matrix: the whole-matrix shape
/// `cac organizations` / `cac missratio` run. The engine pays trace
/// generation once for the matrix; the baseline pays it per
/// configuration (as the drivers did before the sweep engine).
fn bench_multi_model_sweep(c: &mut Criterion) {
    use cac_bench::driver::experiments::organization_matrix;
    use cac_sim::model::MemoryModel;
    use cac_sim::sweep::Sweep;
    use cac_trace::kernels::mem_refs;
    use cac_trace::spec::SpecBenchmark;

    const OPS: usize = 500_000;
    let organizations = organization_matrix();
    let refs: Vec<MemRef> = mem_refs(SpecBenchmark::Swim.generator(7).take(OPS)).collect();
    let model_refs = (refs.len() * organizations.len()) as u64;

    let mut group = c.benchmark_group("multi_model_sweep");
    group.throughput(Throughput::Elements(model_refs));
    group.bench_function("engine_one_pass", |b| {
        b.iter(|| {
            let mut models: Vec<Box<dyn MemoryModel>> = organizations
                .iter()
                .map(|(_, cfg)| cfg.build().unwrap())
                .collect();
            black_box(Sweep::new().workers(1).run_refs(&mut models, &refs))
        })
    });
    group.bench_function("per_config_regenerate", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for (_, cfg) in &organizations {
                let alone: Vec<MemRef> =
                    mem_refs(SpecBenchmark::Swim.generator(7).take(OPS)).collect();
                let mut model = cfg.build().unwrap();
                out.push(model.run_refs(&alone));
            }
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_fully_assoc,
    bench_probe_kernels,
    bench_trace_streaming,
    bench_multi_model_sweep
);
criterion_main!(benches);

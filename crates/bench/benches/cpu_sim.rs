//! Micro-benchmark: out-of-order-processor simulation throughput
//! (simulated instructions per second) on a representative workload.

use cac_core::IndexSpec;
use cac_cpu::{CpuConfig, Processor};
use cac_trace::spec::SpecBenchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_run");
    const OPS: u64 = 20_000;
    group.throughput(Throughput::Elements(OPS));
    group.sample_size(20);
    for (name, spec) in [
        ("conventional", IndexSpec::modulo()),
        ("ipoly_skewed", IndexSpec::ipoly_skewed()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = CpuConfig::paper_baseline(spec.clone()).unwrap();
                let mut cpu = Processor::new(config).unwrap();
                black_box(cpu.run(SpecBenchmark::Tomcatv.generator(1), OPS))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);

//! Micro-benchmark: GF(2) polynomial arithmetic primitives.

use cac_gf2::irreducible::is_irreducible;
use cac_gf2::xor_tree::XorTree;
use cac_gf2::{default_poly, Poly};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_gf2(c: &mut Criterion) {
    let p7 = default_poly(7);
    let a = Poly::from_bits(0x3a5b);
    c.bench_function("poly_rem_deg14_by_deg7", |b| {
        b.iter(|| black_box(black_box(a).rem(p7)))
    });
    c.bench_function("poly_mulmod_deg7", |b| {
        let x = Poly::from_bits(0x5e);
        let y = Poly::from_bits(0x71);
        b.iter(|| black_box(black_box(x).mulmod(black_box(y), p7)))
    });
    c.bench_function("is_irreducible_deg14", |b| {
        let f = default_poly(14);
        b.iter(|| black_box(is_irreducible(black_box(f))))
    });
    c.bench_function("xor_tree_synthesis_deg7_v14", |b| {
        b.iter(|| black_box(XorTree::new(black_box(p7), 14)))
    });
    c.bench_function("xor_tree_apply", |b| {
        let t = XorTree::new(p7, 14);
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(t.apply(black_box(x)))
        })
    });
}

criterion_group!(benches, bench_gf2);
criterion_main!(benches);

//! Micro-benchmark: per-access cost of each placement function.
//!
//! The paper argues (§3) that the I-Poly hash is "remarkably simple" —
//! a handful of XOR gates. In software the analogue is a few mask+popcnt
//! operations; this bench quantifies it against modulo and XOR-fold
//! indexing.

use cac_core::{CacheGeometry, IndexSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_index_functions(c: &mut Criterion) {
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let mut group = c.benchmark_group("set_index");
    for spec in [
        IndexSpec::modulo(),
        IndexSpec::xor_skewed(),
        IndexSpec::ipoly(),
        IndexSpec::ipoly_skewed(),
        IndexSpec::prime_skewed(),
        IndexSpec::add_skew_skewed(),
        IndexSpec::rand_table_skewed(),
        IndexSpec::xor_matrix_skewed(),
    ] {
        let f = spec.build(geom).unwrap();
        group.bench_function(spec.name(), |b| {
            let mut addr = 0x1234_5678u64;
            b.iter(|| {
                addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
                let ba = geom.block_addr(addr);
                black_box(f.set_index(black_box(ba), 0) ^ f.set_index(black_box(ba), 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_functions);
criterion_main!(benches);

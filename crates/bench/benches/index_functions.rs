//! Micro-benchmark: per-access cost of each placement function.
//!
//! The paper argues (§3) that the I-Poly hash is "remarkably simple" —
//! a handful of XOR gates. In software the analogue is a few mask+popcnt
//! operations; this bench quantifies it against modulo and XOR-fold
//! indexing, and — since the hot-path overhaul — against the
//! LUT-compiled form (`cac_core::IndexTable`) the simulators actually
//! run, which answers in a single table load. The `set_index/...` group
//! measures the seed's computed path (dynamic dispatch + per-way hash);
//! `set_index_lut/...` measures the compiled path; their ratio is the
//! speedup the LUT compilation buys per lookup.

use cac_core::{CacheGeometry, IndexSpec, IndexTable};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SPECS: fn() -> [IndexSpec; 8] = || {
    [
        IndexSpec::modulo(),
        IndexSpec::xor_skewed(),
        IndexSpec::ipoly(),
        IndexSpec::ipoly_skewed(),
        IndexSpec::prime_skewed(),
        IndexSpec::add_skew_skewed(),
        IndexSpec::rand_table_skewed(),
        IndexSpec::xor_matrix_skewed(),
    ]
};

fn bench_index_functions(c: &mut Criterion) {
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();

    // The computed path: one dyn call + hash evaluation per way (what
    // the seed simulator paid on every probe).
    let mut group = c.benchmark_group("set_index");
    for spec in SPECS() {
        let f = spec.build(geom).unwrap();
        group.bench_function(spec.name(), |b| {
            let mut addr = 0x1234_5678u64;
            b.iter(|| {
                addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
                let ba = geom.block_addr(addr);
                black_box(f.set_index(black_box(ba), 0) ^ f.set_index(black_box(ba), 1))
            })
        });
    }
    group.finish();

    // The LUT-compiled path the simulators run after the overhaul.
    let mut group = c.benchmark_group("set_index_lut");
    for spec in SPECS() {
        let t = spec.build_table(geom).unwrap();
        group.bench_function(spec.name(), |b| {
            let mut addr = 0x1234_5678u64;
            b.iter(|| {
                addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
                let ba = geom.block_addr(addr);
                black_box(t.set_index(black_box(ba), 0) ^ t.set_index(black_box(ba), 1))
            })
        });
    }
    group.finish();

    // Compilation cost: what a cache construction pays per scheme.
    let mut group = c.benchmark_group("lut_compile");
    for spec in [IndexSpec::ipoly_skewed(), IndexSpec::xor_skewed()] {
        let f = spec.build(geom).unwrap();
        group.bench_function(spec.name(), |b| {
            b.iter(|| black_box(IndexTable::compile(black_box(f.clone()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_functions);
criterion_main!(benches);

//! Equivalence guards for the declarative config layer.
//!
//! Three claims are load-bearing:
//!
//! 1. every organization in the paper's §2.1/§4 comparison matrix is
//!    expressible as a **shipped** `examples/*.toml` config, and the
//!    file builds the *same model* as the driver's in-code
//!    [`organization_matrix`] entry (identical counters on an identical
//!    reference stream);
//! 2. `cac run --config` on those files reproduces the counters the
//!    hand-wired constructions produce — including the retired
//!    write-skipping measurement loops of the old `organizations`
//!    experiment;
//! 3. the shipped virtual-real hierarchy config reproduces a hand-built
//!    [`TwoLevelHierarchy`] access for access.

use cac_bench::driver::experiments::organization_matrix;
use cac_bench::driver::{self};
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::{ColumnAssociative, RehashKind};
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::jouppi::JouppiCache;
use cac_sim::victim::VictimCache;
use cac_sim::vm::PageMapper;
use cac_sim::SimConfig;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use cac_trace::MemRef;
use std::path::PathBuf;

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name);
    path.to_str().expect("utf-8 path").to_owned()
}

fn workload(ops: usize) -> Vec<MemRef> {
    mem_refs(SpecBenchmark::Tomcatv.generator(99).take(ops)).collect()
}

/// Matrix entry name → shipped config file.
const SHIPPED: &[(&str, &str)] = &[
    ("direct-mapped", "direct_mapped.toml"),
    ("2-way set-assoc", "two_way.toml"),
    ("4-way set-assoc", "four_way.toml"),
    ("victim (DM + 4 lines)", "victim.toml"),
    ("hash-rehash (bit flip)", "hash_rehash.toml"),
    ("column-assoc (I-Poly)", "column_ipoly.toml"),
    ("stream buffers (DM + 4x4)", "stream_buffers.toml"),
    ("Jouppi (DM + victim + stream)", "jouppi.toml"),
    ("2-way skewed XOR", "xor_skewed.toml"),
    ("2-way I-Poly", "ipoly.toml"),
    ("2-way skewed I-Poly", "ipoly_skewed.toml"),
    ("fully associative", "fully_assoc.toml"),
];

#[test]
fn every_matrix_organization_ships_as_an_equivalent_toml_config() {
    let matrix = organization_matrix();
    assert_eq!(matrix.len(), SHIPPED.len(), "matrix/file mapping drifted");
    let refs = workload(40_000);
    for (name, file) in SHIPPED {
        let (_, in_code) = matrix
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("matrix lost organization {name:?}"));
        let shipped = SimConfig::load(&example(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        let mut a = in_code.build().expect("in-code config builds");
        let mut b = shipped.build().unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(a.describe(), b.describe(), "{name} vs {file}");
        let da = a.run_refs(&refs);
        let db = b.run_refs(&refs);
        assert_eq!(da, db, "{name} vs {file}");
    }
}

/// The old `organizations` experiment hand-wired each model and skipped
/// stores before probing the read-only organizations. The config-built
/// models must reproduce those loops' counters exactly.
#[test]
fn configs_reproduce_the_hand_wired_measurement_loops() {
    let dm = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
    let w2 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let refs = workload(40_000);

    // Plain cache: full stream, write-through/no-allocate.
    let mut cache = Cache::build(w2, IndexSpec::ipoly_skewed()).unwrap();
    for r in &refs {
        cache.access(r.addr, r.is_write);
    }
    let mut model = SimConfig::load(&example("ipoly_skewed.toml"))
        .unwrap()
        .build()
        .unwrap();
    model.run_refs(&refs);
    assert_eq!(model.stats().demand, cache.stats());

    // Victim cache: the retired loop skipped writes entirely.
    let mut victim = VictimCache::new(dm, 4).unwrap();
    let (mut reads, mut misses) = (0u64, 0u64);
    for r in refs.iter().filter(|r| !r.is_write) {
        reads += 1;
        if !victim.read(r.addr).hit() {
            misses += 1;
        }
    }
    let mut model = SimConfig::load(&example("victim.toml"))
        .unwrap()
        .build()
        .unwrap();
    model.run_refs(&refs);
    let d = model.stats().demand;
    assert_eq!((d.reads, d.read_misses), (reads, misses), "victim");

    // Column-associative, polynomial rehash.
    let mut col = ColumnAssociative::with_rehash(dm, RehashKind::Polynomial).unwrap();
    let (mut reads, mut misses) = (0u64, 0u64);
    for r in refs.iter().filter(|r| !r.is_write) {
        reads += 1;
        if !col.read(r.addr).is_hit() {
            misses += 1;
        }
    }
    let mut model = SimConfig::load(&example("column_ipoly.toml"))
        .unwrap()
        .build()
        .unwrap();
    model.run_refs(&refs);
    let d = model.stats().demand;
    assert_eq!((d.reads, d.read_misses), (reads, misses), "column");

    // The full Jouppi organization.
    let mut jouppi = JouppiCache::new(dm, 4, 4, 4).unwrap();
    let mut reads = 0u64;
    for r in refs.iter().filter(|r| !r.is_write) {
        reads += 1;
        jouppi.read(r.addr);
    }
    let mut model = SimConfig::load(&example("jouppi.toml"))
        .unwrap()
        .build()
        .unwrap();
    model.run_refs(&refs);
    let d = model.stats().demand;
    assert_eq!(
        (d.reads, d.read_misses),
        (reads, jouppi.stats().full_misses),
        "jouppi"
    );
    assert_eq!(
        model.stats().extra("victim-hits"),
        Some(jouppi.stats().victim_hits)
    );
    assert_eq!(
        model.stats().extra("stream-hits"),
        Some(jouppi.stats().stream_hits)
    );
}

#[test]
fn shipped_virtual_real_config_matches_a_hand_built_hierarchy() {
    // ipoly_two_level.toml, hand-built: 8KB 2-way skewed-I-Poly L1 over
    // a 256KB 2-way conventional L2, randomized 4KB paging over 256MB,
    // seed 42.
    let mut reference = TwoLevelHierarchy::new(
        CacheGeometry::new(8 * 1024, 32, 2).unwrap(),
        IndexSpec::ipoly_skewed(),
        CacheGeometry::new(256 * 1024, 32, 2).unwrap(),
        IndexSpec::modulo(),
        PageMapper::randomized(4096, 256 << 20, 42),
    )
    .unwrap();
    let refs = workload(60_000);
    for r in &refs {
        reference.access(r.addr, r.is_write);
    }
    let mut model = SimConfig::load(&example("ipoly_two_level.toml"))
        .unwrap()
        .build()
        .unwrap();
    model.run_refs(&refs);
    let s = model.stats();
    assert_eq!(s.component("l1"), Some(&reference.l1_stats()));
    assert_eq!(s.component("l2"), Some(&reference.l2_stats()));
    assert_eq!(
        s.extra("holes-created"),
        Some(reference.stats().holes_created)
    );
    assert_eq!(
        s.extra("alias-invalidations"),
        Some(reference.stats().alias_invalidations)
    );
}

#[test]
fn cac_run_reports_the_same_counters_as_a_direct_replay() {
    let words: Vec<String> = vec![
        "--config".into(),
        example("ipoly_skewed.toml"),
        "--bench".into(),
        "swim".into(),
        "--ops".into(),
        "30000".into(),
        "--seed".into(),
        "7".into(),
    ];
    let report = driver::run_experiment("run", &words).expect("cac run succeeds");

    let mut reference = Cache::build(
        CacheGeometry::new(8 * 1024, 32, 2).unwrap(),
        IndexSpec::ipoly_skewed(),
    )
    .unwrap();
    let expect = reference.run_trace(SpecBenchmark::Swim.generator(7).take(30_000));

    let demand = &report.tables[0];
    let field = |name: &str| -> u64 {
        demand
            .rows
            .iter()
            .find(|row| row[0].render() == name)
            .and_then(|row| row[1].as_f64())
            .unwrap_or_else(|| panic!("row {name} missing")) as u64
    };
    assert_eq!(field("accesses"), expect.accesses);
    assert_eq!(field("reads"), expect.reads);
    assert_eq!(field("writes"), expect.writes);
    assert_eq!(field("misses"), expect.misses);
}

#[test]
fn config_validate_accepts_all_shipped_configs_and_rejects_rot() {
    let files: Vec<String> = SHIPPED
        .iter()
        .map(|(_, f)| example(f))
        .chain([
            example("ipoly_two_level.toml"),
            example("three_level_sidecars.toml"),
        ])
        .collect();
    let report = driver::run_experiment("config-validate", &files).expect("all shipped ok");
    assert_eq!(report.tables[0].rows.len(), files.len());

    // A rotten config fails the whole validation (the CI contract).
    let dir = std::env::temp_dir().join(format!("cac-config-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "[cache]\nsize = \"8KiB\"\nindex = \"md5\"\n").unwrap();
    let words = vec![files[0].clone(), bad.display().to_string()];
    let got = driver::run_experiment("config-validate", &words);
    assert!(
        matches!(got, Err(driver::DriverError::Failed(ref m)) if m.contains("md5")),
        "{got:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

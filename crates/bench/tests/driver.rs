//! Integration tests for the unified `cac` experiment driver.
//!
//! The load-bearing guarantee: `cac fig1` (and every other subcommand)
//! produces the *same numbers* as the retired standalone binary it
//! replaced. The shims share the experiment functions by construction;
//! this test re-derives Figure 1 the way the old `fig1_stride_sweep`
//! main did — a direct per-stride loop — and checks the driver's report
//! against it.

use cac_bench::driver::report::{OutputFormat, Value};
use cac_bench::driver::{self, DriverError};
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_trace::stride::VectorStride;

fn words(ws: &[&str]) -> Vec<String> {
    ws.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn fig1_matches_the_retired_binary_computation() {
    let max_stride = 256u64;
    let passes = 4u64;

    // The old fig1_stride_sweep main, inlined: serial per-stride loop
    // over the four schemes, then the same histogram binning.
    let schemes: [fn() -> IndexSpec; 4] = [
        IndexSpec::modulo,
        IndexSpec::xor_skewed,
        IndexSpec::ipoly,
        IndexSpec::ipoly_skewed,
    ];
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let mut histogram = [[0u64; 10]; 4];
    let mut pathological = [0u64; 4];
    for stride in 1..max_stride {
        for (si, spec) in schemes.iter().enumerate() {
            let mut cache = Cache::build(geom, spec()).unwrap();
            let ratio = cache
                .run_refs(VectorStride::paper_figure1(stride, passes))
                .miss_ratio();
            let bin = ((ratio * 10.0).ceil() as usize).clamp(1, 10) - 1;
            histogram[si][bin] += 1;
            if ratio > 0.5 {
                pathological[si] += 1;
            }
        }
    }

    let report =
        driver::run_experiment("fig1", &words(&["--max-stride", "256", "--passes", "4"])).unwrap();
    let hist = &report.tables[0];
    assert_eq!(hist.rows.len(), 10);
    for (bin, row) in hist.rows.iter().enumerate() {
        for (si, cell) in row[1..].iter().enumerate() {
            assert_eq!(
                cell.as_f64().unwrap() as u64,
                histogram[si][bin],
                "histogram bin {bin} scheme {si}"
            );
        }
    }
    let path = &report.tables[1];
    for (si, row) in path.rows.iter().enumerate() {
        assert_eq!(row[1].as_f64().unwrap() as u64, pathological[si]);
        assert_eq!(row[2].as_f64().unwrap() as u64, max_stride - 1);
    }
}

#[test]
fn fig1_positional_and_flag_args_agree() {
    let by_flags =
        driver::run_experiment("fig1", &words(&["--max-stride", "64", "--passes", "2"])).unwrap();
    let by_position = driver::run_experiment("fig1", &words(&["64", "2"])).unwrap();
    assert_eq!(by_flags.to_json(), by_position.to_json());
}

#[test]
fn every_legacy_binary_has_a_subcommand() {
    let legacy = [
        "fig1_stride_sweep",
        "table1_config",
        "table2_ipc",
        "table3_bad_programs",
        "missratio_comparison",
        "organizations_comparison",
        "column_assoc",
        "related_work_indexing",
        "tiling_conflicts",
        "debug_regions",
        "options_comparison",
        "predictor_accuracy",
        "holes_model",
        "option2_pagesize",
        "coherency_holes",
        "xor_tree_cost",
        "interleave_bandwidth",
        "ablation_poly_choice",
        "ablation_address_bits",
        "ablation_predictor",
        "ablation_related_ipc",
        "ablation_write_policy",
        "ablation_l2_index",
        "ablation_replacement",
    ];
    for bin in legacy {
        let exp = driver::find_legacy(bin)
            .unwrap_or_else(|| panic!("retired binary {bin} lost its subcommand"));
        assert!(driver::find(exp.name).is_some());
    }
    assert_eq!(driver::experiments().len(), legacy.len() + 18, "new tools");
}

#[test]
fn reports_render_in_all_three_formats() {
    let report =
        driver::run_experiment("fig1", &words(&["--max-stride", "16", "--passes", "2"])).unwrap();
    let text = report.render(OutputFormat::Text);
    assert!(text.contains("## miss-ratio histogram"));
    assert!(text.contains("pathological"));
    assert!(text.contains("Figure 1"), "chart block present in text");

    let json = report.render(OutputFormat::Json);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"columns\":[\"bin\",\"a2\",\"a2-Hx-Sk\",\"a2-Hp\",\"a2-Hp-Sk\"]"));

    let csv = report.render(OutputFormat::Csv);
    assert!(csv.contains("# table: miss-ratio histogram (strides per bin)"));
    assert!(csv.contains("bin,a2,a2-Hx-Sk,a2-Hp,a2-Hp-Sk"));
}

#[test]
fn trace_tools_round_trip_through_files() {
    let dir = std::env::temp_dir().join(format!("cac-driver-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("t.bin");
    let txt_path = dir.join("t.txt");
    let bin2_path = dir.join("t2.bin");
    let p = |p: &std::path::Path| p.to_str().unwrap().to_owned();

    // gen (binary) -> convert to text -> convert back: byte-identical.
    driver::run_experiment(
        "trace-gen",
        &[
            "--bench".into(),
            "swim".into(),
            "--ops".into(),
            "20000".into(),
            "--out".into(),
            p(&bin_path),
        ],
    )
    .unwrap();
    driver::run_experiment("trace-convert", &[p(&bin_path), p(&txt_path)]).unwrap();
    driver::run_experiment("trace-convert", &[p(&txt_path), p(&bin2_path)]).unwrap();
    assert_eq!(
        std::fs::read(&bin_path).unwrap(),
        std::fs::read(&bin2_path).unwrap(),
        "binary -> text -> binary must be byte-identical"
    );

    // info agrees on both representations.
    let info_bin = driver::run_experiment("trace-info", &[p(&bin_path)]).unwrap();
    let info_txt = driver::run_experiment("trace-info", &[p(&txt_path)]).unwrap();
    let field = |r: &cac_bench::driver::report::Report, name: &str| -> u64 {
        r.tables[0]
            .rows
            .iter()
            .find(|row| matches!(&row[0], Value::Str(s) if s == name))
            .and_then(|row| row[1].as_f64())
            .unwrap() as u64
    };
    assert_eq!(field(&info_bin, "ops"), 20_000);
    for f in ["ops", "loads", "stores", "branches"] {
        assert_eq!(field(&info_bin, f), field(&info_txt, f), "{f}");
    }

    // Streamed replay of the file equals an in-memory replay.
    let report = driver::run_experiment(
        "replay",
        &[
            "--trace".into(),
            p(&bin_path),
            "--scheme".into(),
            "ipoly-skew".into(),
        ],
    )
    .unwrap();
    let mut reference = Cache::build(
        CacheGeometry::new(8 * 1024, 32, 2).unwrap(),
        IndexSpec::ipoly_skewed(),
    )
    .unwrap();
    let expect = reference.run_trace(
        cac_trace::spec::SpecBenchmark::Swim
            .generator(12345)
            .take(20_000),
    );
    assert_eq!(field(&report, "accesses"), expect.accesses);
    assert_eq!(field(&report, "misses"), expect.misses);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_are_reported_not_panicked() {
    for (name, bad) in [
        ("fig1", words(&["--nope", "1"])),
        ("fig1", words(&["--max-stride", "zero"])),
        ("fig1", words(&["--max-stride", "1"])),
        ("replay", words(&[])),    // missing --trace
        ("trace-gen", words(&[])), // missing --out
        ("regions", words(&["nosuchbench"])),
        ("sweep", words(&["--schemes", "nosuchscheme"])),
    ] {
        let got = driver::run_experiment(name, &bad);
        assert!(
            matches!(got, Err(DriverError::Usage(_))),
            "{name} {bad:?} should be a usage error, got {got:?}"
        );
    }
    // A missing trace file is an input error (exit 3), not a usage error.
    let got = driver::run_experiment("replay", &words(&["--trace", "/nonexistent/x.bin"]));
    assert!(matches!(got, Err(DriverError::Input(_))), "{got:?}");
}

#[test]
fn interleave_rejects_zero_stride() {
    let got = driver::run_experiment("interleave", &words(&["--max-stride", "0"]));
    assert!(matches!(got, Err(DriverError::Usage(_))), "{got:?}");
}

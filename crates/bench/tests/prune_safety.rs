//! Safety guard for `cac sweep --prune analytic`.
//!
//! Pruning is only legitimate if it is invisible where it matters:
//!
//! * every **surviving** cell must be byte-identical to the unpruned
//!   sweep (prediction must never perturb replay);
//! * no **pruned** cell's true simulated miss ratio may beat the best
//!   surviving cell in its row by more than the error band;
//! * the surviving cells must contain the true per-row winner — zero
//!   rank inversions at the top.
//!
//! The grid is 511 strides x 4 schemes = 2044 cells, the issue's
//! 1000+-config screening benchmark.

use cac_bench::driver::report::Value;
use cac_bench::driver::run_experiment;

fn words(ws: &[&str]) -> Vec<String> {
    ws.iter().map(|s| (*s).to_owned()).collect()
}

/// The per-stride miss-ratio tables of an unpruned and a pruned sweep
/// over the same grid.
fn sweep_pair(max_stride: &str, passes: &str, band: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let plain = run_experiment(
        "sweep",
        &words(&["--max-stride", max_stride, "--passes", passes]),
    )
    .expect("unpruned sweep");
    let pruned = run_experiment(
        "sweep",
        &words(&[
            "--max-stride",
            max_stride,
            "--passes",
            passes,
            "--prune",
            "analytic",
            "--prune-band",
            band,
        ]),
    )
    .expect("pruned sweep");
    let table = |r: &cac_bench::driver::report::Report| {
        r.tables
            .iter()
            .find(|t| t.name == "per-stride miss ratios")
            .expect("sweep table")
            .rows
            .clone()
    };
    (table(&plain), table(&pruned))
}

#[test]
fn pruned_sweep_is_safe_and_survivors_are_byte_identical() {
    const BAND_PCT: f64 = 5.0;
    let (plain, pruned) = sweep_pair("512", "4", "5");
    assert_eq!(plain.len(), 511, "511 strides");
    assert_eq!(plain.len(), pruned.len());

    let mut cells = 0usize;
    let mut pruned_cells = 0usize;
    for (p_row, q_row) in plain.iter().zip(&pruned) {
        assert_eq!(p_row.len(), q_row.len());
        assert_eq!(p_row[0].render(), q_row[0].render(), "stride label");

        // The best surviving cell of this row, from the unpruned
        // ground truth (survivor cells are identical across runs).
        let best_survivor = p_row[1..]
            .iter()
            .zip(&q_row[1..])
            .filter(|(_, q)| !q.render().starts_with("PRUNED"))
            .map(|(p, _)| p.as_f64().expect("simulated cell"))
            .fold(f64::INFINITY, f64::min);
        let true_best = p_row[1..]
            .iter()
            .map(|p| p.as_f64().expect("simulated cell"))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_survivor.is_finite(),
            "a row must never be pruned empty: stride {}",
            p_row[0].render()
        );
        // Zero rank inversions at the top: the row's true winner is
        // always among the survivors (ties included).
        assert!(
            best_survivor <= true_best + 1e-9,
            "stride {}: true best {true_best} was pruned, best survivor {best_survivor}",
            p_row[0].render()
        );

        for (p, q) in p_row[1..].iter().zip(&q_row[1..]) {
            cells += 1;
            let simulated = p.as_f64().expect("simulated cell");
            if q.render().starts_with("PRUNED") {
                pruned_cells += 1;
                // Safety: the pruned cell's true miss ratio must not
                // beat the best survivor by more than the band.
                assert!(
                    simulated >= best_survivor - BAND_PCT,
                    "stride {}: pruned cell simulated {simulated} beats best \
                     survivor {best_survivor} by more than the {BAND_PCT}-point band",
                    p_row[0].render()
                );
            } else {
                // Survivors must be byte-identical to the unpruned run.
                assert_eq!(
                    p.render(),
                    q.render(),
                    "stride {}: surviving cell diverged",
                    p_row[0].render()
                );
            }
        }
    }
    assert_eq!(cells, 511 * 4, "grid covers 2044 cells");
    assert!(
        pruned_cells > 0,
        "the screen must actually prune something on this grid"
    );
}

#[test]
fn prune_rejects_invalid_mode() {
    let err = run_experiment("sweep", &words(&["--max-stride", "8", "--prune", "bogus"]))
        .expect_err("unknown prune mode");
    assert!(err.to_string().contains("prune"), "{err}");
}

/// A pruned sweep composes with `--checkpoint`: pruned cells journal
/// alongside simulated ones, and a run resumed from a partial journal
/// (a kill at any save point) emits a report byte-identical to an
/// uninterrupted one.
#[test]
fn pruned_checkpoint_resumes_byte_identical() {
    use cac_sim::journal::{fingerprint, Journal};
    use std::path::Path;

    let ckpt = std::env::temp_dir().join("prune_resume_ckpt.journal");
    let ckpt_s = ckpt.to_str().expect("utf-8 temp path");
    let _ = std::fs::remove_file(&ckpt);

    let sweep_table = |extra: &[&str]| {
        let mut args = words(&[
            "--max-stride",
            "128",
            "--passes",
            "4",
            "--prune",
            "analytic",
        ]);
        args.extend(words(extra));
        let report = run_experiment("sweep", &args).expect("pruned sweep");
        let table = report
            .tables
            .iter()
            .find(|t| t.name == "per-stride miss ratios")
            .expect("sweep table")
            .rows
            .clone();
        table
            .iter()
            .map(|row| row.iter().map(Value::render).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };

    let truth = sweep_table(&[]);
    assert!(
        truth.iter().flatten().any(|c| c.starts_with("PRUNED")),
        "grid must exercise the pruned-cell journal path"
    );
    let cold = sweep_table(&["--checkpoint", ckpt_s]);
    assert_eq!(truth, cold, "checkpointing must not perturb the sweep");

    // Emulate a kill: rebuild the journal with only strides 1..=59
    // complete and stride 60 missing one scheme cell (a partial row
    // must recompute whole). The fingerprint mirrors the driver's:
    // prune mode and band are part of the workload identity.
    let geom = cac_core::CacheGeometry::new(8192, 32, 2).expect("default geometry");
    let fp = fingerprint(&[
        "cac sweep",
        "modulo,xor-skew,ipoly,ipoly-skew",
        &geom.to_string(),
        "128",
        "4",
        "prune=analytic",
        "band=0.05",
    ]);
    let full = Journal::load(&ckpt, fp).expect("journal written by the cold run");
    let mut partial = Journal::new(fp);
    for stride in 1..=60u64 {
        for (i, scheme) in ["modulo", "xor-skew", "ipoly", "ipoly-skew"]
            .iter()
            .enumerate()
        {
            if stride == 60 && i == 3 {
                continue;
            }
            let key = format!("s{stride}/{scheme}");
            partial.record(&key, full.get(&key).expect("cell journaled"));
        }
    }
    partial.save(Path::new(ckpt_s)).expect("partial journal");

    let resumed = sweep_table(&["--checkpoint", ckpt_s]);
    assert_eq!(truth, resumed, "resumed run must be byte-identical");
    let _ = std::fs::remove_file(&ckpt);
}

//! Equivalence guards for the hot-path overhaul:
//!
//! 1. The batched replay API ([`Cache::run_trace`]/`run_refs`) produces
//!    **byte-identical** `CacheStats` to the per-op access loop.
//! 2. The LUT-compiled access path produces **bit-identical** miss
//!    behaviour to the pre-refactor computed path (dynamic dispatch on
//!    every probe), verified by wrapping each placement in an opaque
//!    shim that defeats LUT compilation — on the Figure-1 stride sweep
//!    and the synthetic SPEC workload models.

use cac_core::{CacheGeometry, IndexFunction, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::replacement::ReplacementPolicy;
use cac_sim::vm::PageMapper;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use cac_trace::stride::VectorStride;
use std::sync::Arc;

/// Delegating wrapper that hides the inner function's structure
/// (`input_bits` stays at the conservative default), so
/// `IndexTable::compile` keeps the computed path — i.e. the exact
/// pre-refactor behaviour of one `dyn` call per probe.
#[derive(Debug)]
struct OpaqueIndex(Arc<dyn IndexFunction>);

impl IndexFunction for OpaqueIndex {
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        self.0.set_index(block_addr, way)
    }
    fn num_sets(&self) -> u32 {
        self.0.num_sets()
    }
    fn ways(&self) -> u32 {
        self.0.ways()
    }
    fn is_skewed(&self) -> bool {
        self.0.is_skewed()
    }
    fn label(&self) -> String {
        self.0.label()
    }
    // input_bits deliberately NOT forwarded: default 64 = uncompilable.
}

fn paper_geom() -> CacheGeometry {
    CacheGeometry::new(8 * 1024, 32, 2).unwrap()
}

fn all_specs() -> Vec<IndexSpec> {
    vec![
        IndexSpec::modulo(),
        IndexSpec::xor_skewed(),
        IndexSpec::ipoly(),
        IndexSpec::ipoly_skewed(),
        IndexSpec::prime_skewed(),
        IndexSpec::add_skew_skewed(),
        IndexSpec::rand_table_skewed(),
        IndexSpec::xor_matrix_skewed(),
    ]
}

/// A LUT-compiled cache and a computed-path ("pre-refactor") cache for
/// the same spec and policies.
fn cache_pair(geom: CacheGeometry, spec: &IndexSpec) -> (Cache, Cache) {
    let fast = Cache::build(geom, spec.clone()).unwrap();
    let slow = Cache::from_parts(
        geom,
        Arc::new(OpaqueIndex(spec.build(geom).unwrap())),
        ReplacementPolicy::Lru,
        fast.write_policy(),
        0x5eed_cace,
    );
    assert!(!slow.index_table().is_compiled(), "shim defeated?");
    (fast, slow)
}

#[test]
fn lut_path_is_bit_identical_on_stride_sweep() {
    for spec in all_specs() {
        for stride in (1..256u64).step_by(7).chain([64, 128, 512, 4096]) {
            let (mut fast, mut slow) = cache_pair(paper_geom(), &spec);
            let a = fast.run_refs(VectorStride::paper_figure1(stride, 4));
            let b = slow.run_refs(VectorStride::paper_figure1(stride, 4));
            assert_eq!(a, b, "{spec} stride {stride}");
        }
    }
}

#[test]
fn lut_path_is_bit_identical_on_spec_models() {
    for spec in all_specs() {
        for bench in [
            SpecBenchmark::Tomcatv,
            SpecBenchmark::Swim,
            SpecBenchmark::Go,
        ] {
            let (mut fast, mut slow) = cache_pair(paper_geom(), &spec);
            let refs: Vec<_> = mem_refs(bench.generator(99).take(40_000)).collect();
            let a = fast.run_refs(refs.iter().copied());
            let b = slow.run_refs(refs.iter().copied());
            assert_eq!(a, b, "{spec} on {}", bench.name());
            let mut ra: Vec<u64> = fast.resident_blocks().collect();
            let mut rb: Vec<u64> = slow.resident_blocks().collect();
            ra.sort_unstable();
            rb.sort_unstable();
            assert_eq!(ra, rb, "{spec} contents diverge on {}", bench.name());
        }
    }
}

#[test]
fn batched_replay_matches_per_op_loop_on_spec_models() {
    for bench in SpecBenchmark::all() {
        let mut batched = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        let mut per_op = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        let ops: Vec<_> = bench.generator(7).take(20_000).collect();
        let delta = batched.run_trace(ops.iter().copied());
        for op in &ops {
            if let Some(r) = op.mem_ref() {
                per_op.access(r.addr, r.is_write);
            }
        }
        assert_eq!(delta, per_op.stats(), "{}", bench.name());
        assert_eq!(batched.stats(), per_op.stats(), "{}", bench.name());
    }
}

#[test]
fn hierarchy_batched_replay_matches_per_op_loop() {
    let l1 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let l2 = CacheGeometry::new(64 * 1024, 32, 2).unwrap();
    let build = || {
        TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 26, 3),
        )
        .unwrap()
    };
    for bench in [SpecBenchmark::Tomcatv, SpecBenchmark::Compress] {
        let mut batched = build();
        let mut per_op = build();
        let ops: Vec<_> = bench.generator(5).take(30_000).collect();
        let run = batched.run_trace(ops.iter().copied());
        for op in &ops {
            if let Some(r) = op.mem_ref() {
                per_op.access(r.addr, r.is_write);
            }
        }
        assert_eq!(run.l1, per_op.l1_stats(), "{}", bench.name());
        assert_eq!(run.l2, per_op.l2_stats(), "{}", bench.name());
        assert_eq!(run.hierarchy, per_op.stats(), "{}", bench.name());
        assert!(batched.check_inclusion());
    }
}

#[test]
fn binary_streaming_replay_is_byte_identical_to_in_memory() {
    use cac_sim::replay::{run_cache_chunked, run_hierarchy_chunked};
    use cac_trace::io::{write_trace_binary, BinaryTraceReader};

    for bench in [SpecBenchmark::Tomcatv, SpecBenchmark::Gcc] {
        let ops: Vec<_> = bench.generator(13).take(50_000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();

        // Single-level cache: identical counters AND identical contents,
        // regardless of the chunk size the stream is fed in.
        let mut reference = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        let expect = reference.run_trace(ops.iter().copied());
        for chunk in [1usize, 777, 1 << 15] {
            let mut streamed = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
            let reader = BinaryTraceReader::new(&bytes[..]).unwrap();
            let got = run_cache_chunked(&mut streamed, reader, chunk).unwrap();
            assert_eq!(got, expect, "{} chunk {chunk}", bench.name());
            let mut ra: Vec<u64> = reference.resident_blocks().collect();
            let mut rb: Vec<u64> = streamed.resident_blocks().collect();
            ra.sort_unstable();
            rb.sort_unstable();
            assert_eq!(ra, rb, "{} contents diverge at chunk {chunk}", bench.name());
        }

        // Two-level hierarchy: streamed run equals the in-memory run.
        let l1 = paper_geom();
        let l2 = CacheGeometry::new(64 * 1024, 32, 2).unwrap();
        let build = || {
            TwoLevelHierarchy::new(
                l1,
                IndexSpec::ipoly_skewed(),
                l2,
                IndexSpec::modulo(),
                PageMapper::randomized(4096, 1 << 26, 3),
            )
            .unwrap()
        };
        let mut in_memory = build();
        let expect = in_memory.run_trace(ops.iter().copied());
        let mut streamed = build();
        let reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let got = run_hierarchy_chunked(&mut streamed, reader, 1024).unwrap();
        assert_eq!(got.l1, expect.l1, "{}", bench.name());
        assert_eq!(got.l2, expect.l2, "{}", bench.name());
        assert_eq!(got.hierarchy, expect.hierarchy, "{}", bench.name());
        assert!(streamed.check_inclusion());
    }
}

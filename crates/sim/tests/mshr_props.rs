//! Property tests for the Kroft MSHR file ([`cac_sim::mshr`]),
//! previously untested outside its unit tests: capacity, merge and
//! retire-ordering invariants under random request streams, plus the
//! load-bearing equivalence — MSHRs are *bookkeeping*, so attaching an
//! unbounded file to a hierarchy level changes no hit/miss counter.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::model::MemoryModel;
use cac_sim::mshr::{MshrFile, MshrOutcome};
use cac_sim::stack::{Hierarchy, LevelBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A request stream: (block, clock advance, fill penalty).
fn requests() -> impl Strategy<Value = Vec<(u16, u8, u8)>> {
    proptest::collection::vec((0u16..64, 0u8..8, 1u8..30), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The file never tracks more than `capacity` blocks, `is_full`
    /// agrees with `in_flight`, and a `Full` outcome is returned exactly
    /// when a new block arrives at a full file.
    #[test]
    fn capacity_is_never_exceeded(cap in 1usize..9, reqs in requests()) {
        let mut m = MshrFile::new(cap);
        let mut now = 0u64;
        for &(block, dt, penalty) in &reqs {
            now += u64::from(dt);
            let was_full = {
                // Predict fullness after retirement, against an oracle
                // recomputed below; here just exercise the API.
                m.retire(now);
                m.is_full() && m.pending(u64::from(block)).is_none()
            };
            let out = m.request(u64::from(block), now, u64::from(penalty));
            prop_assert_eq!(matches!(out, MshrOutcome::Full), was_full);
            prop_assert!(m.in_flight() <= cap);
            prop_assert_eq!(m.is_full(), m.in_flight() == cap);
        }
        let s = m.stats();
        prop_assert_eq!(s.primary + s.secondary + s.rejections, reqs.len() as u64);
    }

    /// Differential test against a trivially-correct map oracle: the
    /// file accepts/merges/rejects exactly when the oracle says, and
    /// merged requests complete with the primary's fill time (secondary
    /// misses never extend the primary miss — Kroft's point).
    #[test]
    fn matches_a_map_oracle(cap in 1usize..6, reqs in requests()) {
        let mut m = MshrFile::new(cap);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new(); // block -> ready_at
        let mut now = 0u64;
        for &(block, dt, penalty) in &reqs {
            now += u64::from(dt);
            let block = u64::from(block);
            // Retire-ordering invariant: everything due at or before
            // `now` leaves the file before the new request is judged.
            oracle.retain(|_, &mut ready| ready > now);
            let out = m.request(block, now, u64::from(penalty));
            match oracle.get(&block) {
                Some(&ready) => {
                    prop_assert_eq!(out, MshrOutcome::Merged { ready_at: ready });
                }
                None if oracle.len() < cap => {
                    let ready = now + u64::from(penalty);
                    prop_assert_eq!(out, MshrOutcome::Allocated { ready_at: ready });
                    oracle.insert(block, ready);
                }
                None => prop_assert_eq!(out, MshrOutcome::Full),
            }
            prop_assert_eq!(m.in_flight(), oracle.len());
            for (&b, &ready) in &oracle {
                prop_assert_eq!(m.pending(b), Some(ready));
            }
        }
    }

    /// `retire` drops exactly the entries whose fills are due, in any
    /// interleaving with requests.
    #[test]
    fn retire_is_ordered_by_ready_time(reqs in requests()) {
        let mut m = MshrFile::new(64); // never full: isolate retirement
        let mut now = 0u64;
        for &(block, dt, penalty) in &reqs {
            now += u64::from(dt);
            m.request(u64::from(block), now, u64::from(penalty));
            // Nothing in flight may already be due.
            for b in 0u64..64 {
                if let Some(ready) = m.pending(b) {
                    prop_assert!(ready > now, "block {b} due at {ready} <= now {now}");
                }
            }
        }
        // A final retirement far in the future empties the file.
        m.retire(now + 1000);
        prop_assert_eq!(m.in_flight(), 0);
    }

    /// Attaching an effectively infinite MSHR file to a hierarchy level
    /// changes no hit/miss counter anywhere in the stack.
    #[test]
    fn infinite_mshr_file_is_invisible_to_hit_miss_counters(
        addrs in proptest::collection::vec((0u32..1_000_000, 0u8..5), 1..400)
    ) {
        let l1 = CacheGeometry::new(1024, 32, 1).unwrap();
        let l2 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let build = |mshrs: Option<usize>| {
            let mut lb = LevelBuilder::new(l1).index_spec(IndexSpec::ipoly());
            if let Some(n) = mshrs {
                lb = lb.mshrs(n);
            }
            Hierarchy::builder()
                .level(lb)
                .level(LevelBuilder::new(l2).write_back())
                .build()
                .unwrap()
        };
        let mut with = build(Some(1 << 20)); // far beyond any in-flight count
        let mut without = build(None);
        for &(addr, w) in &addrs {
            let a = with.access(u64::from(addr), w == 0);
            let b = without.access(u64::from(addr), w == 0);
            prop_assert_eq!(a.hit, b.hit);
            prop_assert_eq!(a.served_by, b.served_by);
        }
        prop_assert_eq!(with.demand_stats(), without.demand_stats());
        prop_assert_eq!(with.level(0).stats(), without.level(0).stats());
        prop_assert_eq!(with.level(1).stats(), without.level(1).stats());
        let s = MemoryModel::stats(&with);
        prop_assert_eq!(s.extra("l1-mshr-rejections"), Some(0));
    }
}

//! Property-based tests for the cache simulators.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::{Cache, WritePolicy};
use cac_sim::classify::ThreeCClassifier;
use cac_sim::column::ColumnAssociative;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::vm::PageMapper;
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = CacheGeometry> {
    (10u32..15, 5u32..7, 0u32..2)
        .prop_map(|(cap, blk, way)| CacheGeometry::new(1u64 << cap, 1u64 << blk, 1 << way).unwrap())
}

fn specs() -> impl Strategy<Value = IndexSpec> {
    prop_oneof![
        Just(IndexSpec::modulo()),
        Just(IndexSpec::xor_skewed()),
        Just(IndexSpec::ipoly()),
        Just(IndexSpec::ipoly_skewed()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An access to an address always makes it resident (reads allocate),
    /// and an immediate re-access hits.
    #[test]
    fn read_then_read_hits(geom in geometries(), spec in specs(),
                           addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut c = Cache::build(geom, spec).unwrap();
        for &a in &addrs {
            c.read(u64::from(a));
            prop_assert!(c.read(u64::from(a)).hit);
        }
    }

    /// Residency never exceeds the number of lines.
    #[test]
    fn capacity_invariant(geom in geometries(), spec in specs(),
                          addrs in proptest::collection::vec(any::<u32>(), 1..500)) {
        let mut c = Cache::build(geom, spec).unwrap();
        for &a in &addrs {
            c.access(u64::from(a), a % 3 == 0);
            prop_assert!(c.resident_lines() <= geom.num_blocks() as usize);
        }
    }

    /// hits + misses == accesses, and reads + writes == accesses.
    #[test]
    fn stats_balance(geom in geometries(), spec in specs(),
                     addrs in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..300)) {
        let mut c = Cache::build(geom, spec).unwrap();
        for &(a, w) in &addrs {
            c.access(u64::from(a), w);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.reads + s.writes, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
    }

    /// Write-through/no-write-allocate never leaves a written-only block
    /// resident.
    #[test]
    fn no_write_allocate_property(geom in geometries(),
                                  addrs in proptest::collection::vec(any::<u32>(), 1..100)) {
        let mut c = Cache::builder(geom)
            .write_policy(WritePolicy::WriteThroughNoAllocate)
            .build()
            .unwrap();
        for &a in &addrs {
            let before = c.contains(u64::from(a));
            c.write(u64::from(a));
            prop_assert_eq!(c.contains(u64::from(a)), before);
        }
    }

    /// 3C classification is exhaustive and consistent with raw stats.
    #[test]
    fn classification_totals(geom in geometries(), spec in specs(),
                             addrs in proptest::collection::vec(any::<u16>(), 1..300)) {
        let mut c = ThreeCClassifier::new(geom, spec).unwrap();
        for &a in &addrs {
            c.read(u64::from(a) * 8);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.misses(), c.cache_stats().misses);
    }

    /// Column-associative cache: every resident block is at one of its two
    /// homes (no orphans), and stats balance.
    #[test]
    fn column_assoc_no_orphans(addrs in proptest::collection::vec(any::<u16>(), 1..400)) {
        let geom = CacheGeometry::new(4096, 32, 1).unwrap();
        let mut c = ColumnAssociative::new(geom).unwrap();
        for &a in &addrs {
            c.read(u64::from(a) * 16);
            // Re-read must hit: the block is at a probe-able home.
            prop_assert!(c.read(u64::from(a) * 16).is_hit());
        }
        let s = c.stats();
        prop_assert_eq!(s.first_probe_hits + s.second_probe_hits + s.misses, s.accesses);
    }

    /// Differential test: the parametric `Cache` agrees access-for-access
    /// with a trivially-correct per-set LRU oracle for every non-skewed
    /// placement function.
    #[test]
    fn cache_matches_lru_oracle(
        geom in geometries(),
        spec in prop_oneof![
            Just(IndexSpec::modulo()),
            Just(IndexSpec::ipoly()),
            Just(IndexSpec::add_skew()),
            Just(IndexSpec::rand_table()),
        ],
        addrs in proptest::collection::vec(any::<u16>(), 1..500),
    ) {
        use std::collections::VecDeque;
        let mut cache = Cache::build(geom, spec.clone()).unwrap();
        let f = spec.build(geom).unwrap();
        // Oracle: one LRU list per set, most-recent at the back.
        let mut oracle: Vec<VecDeque<u64>> = vec![VecDeque::new(); geom.num_sets() as usize];
        for &a in &addrs {
            let addr = u64::from(a);
            let block = geom.block_addr(addr);
            let set = f.set_index(block, 0) as usize;
            let oracle_hit = oracle[set].contains(&block);
            if oracle_hit {
                let pos = oracle[set].iter().position(|&b| b == block).unwrap();
                oracle[set].remove(pos);
            } else if oracle[set].len() == geom.ways() as usize {
                oracle[set].pop_front();
            }
            oracle[set].push_back(block);

            let access = cache.read(addr);
            prop_assert_eq!(access.hit, oracle_hit, "addr {:#x} under {}", addr, spec);
        }
        // Final residency agrees too.
        let mut resident: Vec<u64> = cache.resident_blocks().collect();
        let mut expected: Vec<u64> = oracle.iter().flatten().copied().collect();
        resident.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(resident, expected);
    }

    /// Jouppi organization: the four outcome counters partition the
    /// accesses, and re-reading any address immediately afterwards hits.
    #[test]
    fn jouppi_counters_partition_accesses(
        addrs in proptest::collection::vec(any::<u32>(), 1..400)
    ) {
        use cac_sim::jouppi::JouppiCache;
        let geom = CacheGeometry::new(4096, 32, 1).unwrap();
        let mut c = JouppiCache::new(geom, 4, 4, 4).unwrap();
        for &a in &addrs {
            let addr = u64::from(a) % (1 << 22);
            c.read(addr);
            let before = c.stats();
            c.read(addr);
            let after = c.stats();
            prop_assert_eq!(after.main_hits, before.main_hits + 1,
                "immediate re-read of {:#x} must hit the cache", addr);
        }
        let s = c.stats();
        prop_assert_eq!(
            s.main_hits + s.victim_hits + s.stream_hits + s.full_misses,
            s.accesses
        );
    }

    /// Stream buffers never increase the full-miss count over the bare
    /// cache (prefetch can only convert misses into stream hits).
    #[test]
    fn stream_buffers_never_hurt(
        addrs in proptest::collection::vec(any::<u16>(), 1..400)
    ) {
        use cac_sim::stream::StreamBufferCache;
        let geom = CacheGeometry::new(4096, 32, 1).unwrap();
        let mut bare = Cache::build(geom, IndexSpec::modulo()).unwrap();
        let mut buffered = StreamBufferCache::new(geom, 4, 4).unwrap();
        let mut bare_misses = 0u64;
        for &a in &addrs {
            let addr = u64::from(a);
            if !bare.read(addr).hit {
                bare_misses += 1;
            }
            buffered.read(addr);
        }
        prop_assert!(buffered.stats().misses <= bare_misses);
    }

    /// TLB translations always agree with the page table, and the stats
    /// are internally consistent.
    #[test]
    fn tlb_translations_match_mapper(
        entries_log in 2u32..7,
        ways_log in 0u32..3,
        vas in proptest::collection::vec(any::<u32>(), 1..300),
    ) {
        use cac_sim::tlb::Tlb;
        let entries = 1u32 << entries_log;
        let ways = (1u32 << ways_log).min(entries);
        let mut tlb = Tlb::new(entries, ways, 4096, 30).unwrap();
        let mut mapper = PageMapper::randomized(4096, 1 << 28, 9);
        let mut reference = PageMapper::randomized(4096, 1 << 28, 9);
        for &va in &vas {
            let va = u64::from(va) % (1 << 24);
            let (pa, _) = tlb.translate(va, &mut mapper);
            prop_assert_eq!(pa, reference.translate(va), "va {:#x}", va);
        }
        let s = tlb.stats();
        prop_assert_eq!(s.accesses, vas.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
    }

    /// The option-2 controller's mode is always a pure function of the
    /// currently-mapped segments, its per-mode access counts are
    /// conserved, and stats accumulate across flushes.
    #[test]
    fn dynamic_index_cache_mode_consistency(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<u16>()), 1..200)
    ) {
        use cac_sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let mut c = DynamicIndexCache::new(geom, IndexSpec::ipoly_skewed(), 1 << 18).unwrap();
        let mut accesses = 0u64;
        for &(op, slot, val) in &ops {
            let base = u64::from(slot) << 24;
            match op {
                0 => {
                    let page: u64 = if val % 2 == 0 { 4096 } else { 1 << 18 };
                    let _ = c.map_segment(Segment::new(base, page * 4, page).unwrap());
                }
                1 => {
                    let _ = c.unmap_segment(base);
                }
                _ => {
                    c.read(u64::from(val) * 32);
                    accesses += 1;
                }
            }
            // Mode must match the segment predicate at every step.
            let all_big = (0u64..256).all(|s| {
                match c.segment_of(s << 24) {
                    Some(seg) => seg.page_size() >= c.threshold(),
                    None => true,
                }
            });
            let any_mapped = (0u64..256).any(|s| c.segment_of(s << 24).is_some());
            let want = if any_mapped && all_big { IndexMode::IPoly } else { IndexMode::Conventional };
            prop_assert_eq!(c.mode(), want);
        }
        prop_assert_eq!(c.stats().accesses, accesses);
        let (a, b) = c.accesses_by_mode();
        prop_assert_eq!(a + b, accesses);
    }

    /// Coherence: inclusion holds in every node and a write leaves no
    /// remote copy, for any interleaving of reads and writes.
    #[test]
    fn coherence_inclusion_invariant(
        ops in proptest::collection::vec((0usize..3, any::<u16>(), any::<bool>()), 1..500)
    ) {
        use cac_sim::coherence::SnoopingBus;
        let node = || TwoLevelHierarchy::new(
            CacheGeometry::new(1024, 32, 1).unwrap(),
            IndexSpec::ipoly(),
            CacheGeometry::new(4096, 32, 2).unwrap(),
            IndexSpec::modulo(),
            PageMapper::identity(),
        ).unwrap();
        let mut bus = SnoopingBus::new(vec![node(), node(), node()]).unwrap();
        for &(n, a, w) in &ops {
            let va = u64::from(a) % (1 << 14);
            if w {
                bus.write(n, va).unwrap();
                let pa_block = va / 32;
                for j in 0..3 {
                    if j != n {
                        prop_assert!(!bus.node(j).unwrap().holds_physical_block(pa_block));
                    }
                }
            } else {
                bus.read(n, va).unwrap();
            }
        }
        prop_assert!(bus.check_invariants());
        let s = bus.stats();
        prop_assert!(s.remote_l2_invalidations <= s.snoops);
        prop_assert!(s.remote_l1_holes <= s.remote_l2_invalidations);
    }

    /// Inclusion holds after any access sequence.
    #[test]
    fn inclusion_invariant(addrs in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..400)) {
        let l1 = CacheGeometry::new(1024, 32, 2).unwrap();
        let l2 = CacheGeometry::new(8192, 32, 2).unwrap();
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 26, 11),
        )
        .unwrap();
        for &(a, w) in &addrs {
            h.access(u64::from(a) % (1 << 22), w);
        }
        prop_assert!(h.check_inclusion());
        let s = h.stats();
        prop_assert!(s.holes_created <= s.inclusion_invalidations);
    }
}

//! Oracle equivalence: a deliberately naive reference cache against the
//! production [`Cache`] on randomized mixed read/write traces.
//!
//! The production cache is aggressively specialized — LUT-compiled
//! placement, packed metadata words, monomorphized probe kernels, and an
//! O(1) engine for one-set geometries. This suite re-implements the
//! *semantics* from first principles with none of those tricks
//! (`Vec<Option<Line>>` storage, per-probe `IndexFunction` calls, victim
//! selection by scanning, an independently-implemented copy of the
//! replacement RNG) and checks both the per-op path and the batched
//! kernel path against it, per access, across every replacement ×
//! write-policy combination.

use cac_core::{CacheGeometry, IndexFunction, IndexSpec};
use cac_sim::cache::{Cache, WritePolicy};
use cac_sim::replacement::ReplacementPolicy;
use cac_sim::stats::CacheStats;
use cac_trace::MemRef;
use proptest::prelude::*;
use std::sync::Arc;

/// The seed `Cache::builder` uses by default; the oracle's RNG copy
/// must start from the same stream.
const DEFAULT_SEED: u64 = 0x5eed_cace;

/// One resident line of the naive model.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    last_touch: u64,
    fill_time: u64,
}

/// A naive reference cache: way-major `Vec<Option<Line>>`, per-probe
/// index-function calls, victim selection by scanning all candidates.
struct Oracle {
    geom: CacheGeometry,
    index: Arc<dyn IndexFunction>,
    sets: usize,
    ways: usize,
    lines: Vec<Option<Line>>,
    policy: ReplacementPolicy,
    write_policy: WritePolicy,
    rng_state: u64,
    clock: u64,
    stats: CacheStats,
}

/// What one access did, in the shape of the fields of
/// [`cac_sim::model::AccessOutcome`] the oracle can predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    hit: bool,
    way: Option<u32>,
    evicted: Option<u64>,
    filled: bool,
}

impl Oracle {
    fn new(
        geom: CacheGeometry,
        spec: IndexSpec,
        policy: ReplacementPolicy,
        write_policy: WritePolicy,
    ) -> Self {
        let sets = geom.num_sets() as usize;
        let ways = geom.ways() as usize;
        // An independent copy of the documented selector seeding:
        // splitmix64 scramble of the seed, low bit forced to one.
        let mut z = DEFAULT_SEED.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Oracle {
            geom,
            index: spec.build(geom).expect("valid spec"),
            sets,
            ways,
            lines: vec![None; sets * ways],
            policy,
            write_policy,
            rng_state: z | 1,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    fn slot(&self, way: usize, set: u32) -> usize {
        way * self.sets + set as usize
    }

    fn access(&mut self, addr: u64, is_write: bool) -> Outcome {
        let block = self.geom.block_addr(addr);
        self.clock += 1;
        // Probe every way in order with the raw index function.
        for w in 0..self.ways {
            let set = self.index.set_index(block, w as u32);
            let slot = self.slot(w, set);
            if let Some(line) = &mut self.lines[slot] {
                if line.tag == block {
                    line.last_touch = self.clock;
                    if is_write && self.write_policy == WritePolicy::WriteBackAllocate {
                        line.dirty = true;
                    }
                    if is_write {
                        self.stats.record_write(true);
                    } else {
                        self.stats.record_read(true);
                    }
                    return Outcome {
                        hit: true,
                        way: Some(w as u32),
                        evicted: None,
                        filled: false,
                    };
                }
            }
        }
        // Miss.
        if is_write {
            self.stats.record_write(false);
        } else {
            self.stats.record_read(false);
        }
        let wb = self.write_policy == WritePolicy::WriteBackAllocate;
        if is_write && !wb {
            return Outcome {
                hit: false,
                way: None,
                evicted: None,
                filled: false,
            };
        }
        // Fill: first invalid way, else the policy's victim.
        let mut target: Option<usize> = None;
        for w in 0..self.ways {
            let set = self.index.set_index(block, w as u32);
            if self.lines[self.slot(w, set)].is_none() {
                target = Some(w);
                break;
            }
        }
        let mut evicted = None;
        let way = match target {
            Some(w) => w,
            None => {
                let w = match self.policy {
                    ReplacementPolicy::Lru => (0..self.ways)
                        .min_by_key(|&w| {
                            let set = self.index.set_index(block, w as u32);
                            self.lines[self.slot(w, set)].expect("valid").last_touch
                        })
                        .expect("ways >= 1"),
                    ReplacementPolicy::Fifo => (0..self.ways)
                        .min_by_key(|&w| {
                            let set = self.index.set_index(block, w as u32);
                            self.lines[self.slot(w, set)].expect("valid").fill_time
                        })
                        .expect("ways >= 1"),
                    ReplacementPolicy::Random => (self.next_random() % self.ways as u64) as usize,
                    other => unreachable!("policy {other:?} not modelled"),
                };
                let set = self.index.set_index(block, w as u32);
                let victim = self.lines[self.slot(w, set)].expect("valid");
                self.stats.evictions += 1;
                if victim.dirty {
                    self.stats.writebacks += 1;
                }
                evicted = Some(victim.tag);
                w
            }
        };
        let set = self.index.set_index(block, way as u32);
        let slot = self.slot(way, set);
        self.lines[slot] = Some(Line {
            tag: block,
            dirty: is_write && wb,
            last_touch: self.clock,
            fill_time: self.clock,
        });
        Outcome {
            hit: false,
            way: Some(way as u32),
            evicted,
            filled: true,
        }
    }

    fn resident(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.lines.iter().flatten().map(|l| l.tag).collect();
        v.sort_unstable();
        v
    }
}

fn policies() -> [ReplacementPolicy; 3] {
    [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ]
}

fn write_policies() -> [WritePolicy; 2] {
    [
        WritePolicy::WriteThroughNoAllocate,
        WritePolicy::WriteBackAllocate,
    ]
}

/// Replays `refs` against the oracle, a per-op `Cache` and a batched
/// (kernel-path) `Cache`, checking per-access outcomes, final counters
/// and final contents.
fn check_equivalence(
    geom: CacheGeometry,
    spec: IndexSpec,
    policy: ReplacementPolicy,
    wp: WritePolicy,
    refs: &[MemRef],
) -> Result<(), TestCaseError> {
    let build = || {
        Cache::builder(geom)
            .index_spec(spec.clone())
            .replacement(policy)
            .write_policy(wp)
            .build()
            .expect("valid cache")
    };
    let mut oracle = Oracle::new(geom, spec.clone(), policy, wp);
    let mut per_op = build();
    let mut batched = build();
    for (i, r) in refs.iter().enumerate() {
        let want = oracle.access(r.addr, r.is_write);
        let got = per_op.access(r.addr, r.is_write);
        let got = Outcome {
            hit: got.hit,
            way: got.way,
            evicted: got.evicted,
            filled: got.filled,
        };
        prop_assert_eq!(
            got,
            want,
            "ref {} ({:#x} {}) under {:?}/{:?}/{}",
            i,
            r.addr,
            if r.is_write { "W" } else { "R" },
            policy,
            wp,
            spec
        );
    }
    let delta = batched.run_refs_slice(refs);
    prop_assert_eq!(per_op.stats(), oracle.stats);
    prop_assert_eq!(delta, oracle.stats);
    let mut got: Vec<u64> = per_op.resident_blocks().collect();
    got.sort_unstable();
    prop_assert_eq!(got, oracle.resident());
    let mut got: Vec<u64> = batched.resident_blocks().collect();
    got.sort_unstable();
    prop_assert_eq!(got, oracle.resident());
    Ok(())
}

/// Address/op mix: a handful of hot sets plus a wide tail, so traces
/// exercise hits, conflicts and evictions at every geometry.
fn trace(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    proptest::collection::vec((0u32..1 << 18, 0u32..8), len..len + 1).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, w)| MemRef {
                pc: 0,
                addr: u64::from(a) & !3,
                is_write: w == 0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Set-associative shapes (kernel ways 1/2/4 plus the 8-way
    /// fallback), conventional and skewed placements, all replacement ×
    /// write policies.
    #[test]
    fn set_associative_matches_oracle(
        refs in trace(400),
        way_sel in 0usize..4,
        spec_sel in 0usize..3,
        cap_bits in 10u32..13,
    ) {
        let ways = [1u32, 2, 4, 8][way_sel];
        let spec = [IndexSpec::modulo(), IndexSpec::ipoly_skewed(), IndexSpec::xor_skewed()]
            [spec_sel].clone();
        let geom = CacheGeometry::new(1u64 << cap_bits, 32, ways).unwrap();
        for policy in policies() {
            for wp in write_policies() {
                check_equivalence(geom, spec.clone(), policy, wp, &refs)?;
            }
        }
    }

    /// Fully-associative geometries: the O(1) engine (hash probes,
    /// intrusive LRU/FIFO list, lowest-free-slot reuse) against the
    /// naive scan, all replacement × write policies.
    #[test]
    fn fully_associative_matches_oracle(
        refs in trace(400),
        cap_bits in 9u32..13,
    ) {
        let geom = CacheGeometry::fully_associative(1u64 << cap_bits, 32).unwrap();
        for policy in policies() {
            for wp in write_policies() {
                check_equivalence(geom, IndexSpec::modulo(), policy, wp, &refs)?;
            }
        }
    }

    /// Interleaving invalidations with accesses keeps all three in
    /// lockstep (exercises the engine's free-slot heap and the packed
    /// dirty bit on externally removed lines).
    #[test]
    fn invalidations_stay_in_lockstep(
        refs in trace(300),
        fully in 0usize..2,
    ) {
        let geom = if fully == 1 {
            CacheGeometry::fully_associative(1 << 10, 32).unwrap()
        } else {
            CacheGeometry::new(1 << 10, 32, 2).unwrap()
        };
        let mut oracle = Oracle::new(
            geom, IndexSpec::modulo(), ReplacementPolicy::Lru, WritePolicy::WriteBackAllocate);
        let mut cache = Cache::builder(geom)
            .write_policy(WritePolicy::WriteBackAllocate)
            .build()
            .unwrap();
        for (i, r) in refs.iter().enumerate() {
            oracle.access(r.addr, r.is_write);
            cache.access(r.addr, r.is_write);
            if i % 7 == 0 {
                // Invalidate the block of the previous reference.
                let block = geom.block_addr(refs[i.saturating_sub(1)].addr);
                let removed = cache.invalidate_block(block);
                let mut oracle_removed = false;
                for w in 0..oracle.ways {
                    let set = oracle.index.set_index(block, w as u32);
                    let slot = oracle.slot(w, set);
                    if oracle.lines[slot].map(|l| l.tag) == Some(block) {
                        let line = oracle.lines[slot].take().expect("checked");
                        oracle.stats.invalidations += 1;
                        if line.dirty {
                            oracle.stats.writebacks += 1;
                        }
                        oracle_removed = true;
                        break;
                    }
                }
                prop_assert_eq!(removed, oracle_removed, "ref {}", i);
            }
        }
        prop_assert_eq!(cache.stats(), oracle.stats);
        let mut got: Vec<u64> = cache.resident_blocks().collect();
        got.sort_unstable();
        prop_assert_eq!(got, oracle.resident());
    }
}

//! Equivalence guards for the generic N-level stack.
//!
//! The generic [`Hierarchy`] claims to generalize the concrete
//! organizations it replaces:
//!
//! * with two levels (write-through L1 over a write-back L2, Inclusion
//!   on, no sidecars) it is the [`TwoLevelHierarchy`] under an identity
//!   page mapping — counter for counter;
//! * with one level plus victim + stream sidecars it is the
//!   [`JouppiCache`];
//! * with one level plus a victim sidecar it is the [`VictimCache`].

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::jouppi::JouppiCache;
use cac_sim::model::{MemoryModel, ServicePoint};
use cac_sim::stack::{Hierarchy, LevelBuilder};
use cac_sim::victim::VictimCache;
use cac_sim::vm::PageMapper;

/// Deterministic mixed traffic over a working set that overflows both
/// cache levels.
fn traffic(n: usize) -> impl Iterator<Item = (u64, bool)> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..n).map(move |_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x >> 8) % (1 << 20), x.is_multiple_of(5))
    })
}

#[test]
fn two_level_stack_matches_the_virtual_real_hierarchy_under_identity() {
    let l1 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let l2 = CacheGeometry::new(64 * 1024, 32, 2).unwrap();
    let mut vr = TwoLevelHierarchy::new(
        l1,
        IndexSpec::ipoly_skewed(),
        l2,
        IndexSpec::modulo(),
        PageMapper::identity(),
    )
    .unwrap();
    let mut stack = Hierarchy::builder()
        .level(LevelBuilder::new(l1).index_spec(IndexSpec::ipoly_skewed()))
        .level(
            LevelBuilder::new(l2)
                .index_spec(IndexSpec::modulo())
                .write_back(),
        )
        .build()
        .unwrap();

    for (addr, is_write) in traffic(200_000) {
        let a = vr.access(addr, is_write);
        let b = stack.access(addr, is_write);
        let stack_l1_hit = b.served_by == ServicePoint::Level(0);
        assert_eq!(a.l1_hit, stack_l1_hit, "addr {addr:#x}");
    }
    assert_eq!(vr.l1_stats(), stack.level(0).stats());
    assert_eq!(vr.l2_stats(), stack.level(1).stats());
    assert_eq!(
        vr.stats().inclusion_invalidations,
        stack.inclusion_invalidations()
    );
    assert_eq!(vr.stats().holes_created, stack.holes_created());
    // Identity mapping ⇒ no aliases, so the generic stack models the
    // complete behaviour.
    assert_eq!(vr.stats().alias_invalidations, 0);
    // The unified demand view agrees too.
    assert_eq!(
        MemoryModel::stats(&vr).demand,
        MemoryModel::stats(&stack).demand
    );
}

#[test]
fn single_level_stack_with_sidecars_matches_jouppi() {
    let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
    let mut jouppi = JouppiCache::new(geom, 4, 4, 4).unwrap();
    let mut stack = Hierarchy::builder()
        .level(
            LevelBuilder::new(geom)
                .victim_buffer(4)
                .stream_buffers(4, 4),
        )
        .build()
        .unwrap();

    for (addr, _) in traffic(150_000) {
        let a = jouppi.read(addr);
        let b = stack.read(addr);
        assert_eq!(a.hit, b.hit, "addr {addr:#x}");
        // Victim/stream/miss classification agrees access for access,
        // and so does the block dropped out the victim buffer's far end.
        assert_eq!(a.served_by, b.served_by, "addr {addr:#x}");
        assert_eq!(a.evicted, b.evicted, "addr {addr:#x}");
    }
    let js = jouppi.stats();
    let ss = MemoryModel::stats(&stack);
    assert_eq!(ss.demand.accesses, js.accesses);
    assert_eq!(ss.demand.misses, js.full_misses);
    assert_eq!(ss.extra("l1-victim-hits"), Some(js.victim_hits));
    assert_eq!(ss.extra("l1-stream-hits"), Some(js.stream_hits));
    assert_eq!(
        ss.demand.hits,
        js.main_hits + js.victim_hits + js.stream_hits
    );
}

#[test]
fn single_level_stack_with_victim_matches_victim_cache() {
    let geom = CacheGeometry::new(4 * 1024, 32, 1).unwrap();
    let mut victim = VictimCache::new(geom, 4).unwrap();
    let mut stack = Hierarchy::builder()
        .level(LevelBuilder::new(geom).victim_buffer(4))
        .build()
        .unwrap();
    for (addr, _) in traffic(100_000) {
        let a = victim.read(addr);
        let b = stack.read(addr);
        assert_eq!(a.hit(), b.hit, "addr {addr:#x}");
        assert_eq!(
            a.victim_hit,
            b.served_by == ServicePoint::Victim(0),
            "addr {addr:#x}"
        );
    }
    let vs = victim.stats();
    let ss = MemoryModel::stats(&stack);
    assert_eq!(ss.demand.misses, vs.full_misses);
    assert_eq!(ss.extra("l1-victim-hits"), Some(vs.victim_hits));
}

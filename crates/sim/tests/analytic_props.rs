//! Property-based hardening for the analytic tier.
//!
//! The one-pass suffix-sum curve must agree **exactly** with naive
//! histogram replay at every (size, assoc) grid point, the curves must
//! obey Mattson inclusion (monotone non-increasing in capacity), and
//! the histogram handed out by [`LruStackSweep`] must reproduce the
//! sweep's own miss counts — three independent code paths over the same
//! counts.

use cac_sim::analytic::{
    lru_curve_from_histogram, prune_dominated, set_conflict_probability, StackHistogram,
};
use cac_sim::sweep::LruStackSweep;
use cac_sim::AnalyticModel;
use proptest::prelude::*;

/// An arbitrary histogram: cold count plus per-depth counts, kept small
/// enough that `refs` sums without overflow.
fn arb_histogram() -> impl Strategy<Value = StackHistogram> {
    (0u64..1_000, proptest::collection::vec(0u64..1_000, 0..40)).prop_map(|(cold, depths)| {
        let refs = cold + depths.iter().sum::<u64>();
        StackHistogram { cold, depths, refs }
    })
}

proptest! {
    /// The suffix-sum curve equals naive replay (`misses_at`) at every
    /// associativity, including ways beyond the histogram's depth.
    #[test]
    fn curve_equals_naive_replay_everywhere(h in arb_histogram(), max_ways in 1u32..64) {
        let curve = lru_curve_from_histogram(&h, max_ways);
        if h.refs == 0 {
            prop_assert!(curve.is_empty());
            return Ok(());
        }
        prop_assert_eq!(curve.len(), max_ways as usize);
        for w in 1..=max_ways {
            let naive = h.misses_at(w) as f64 / h.refs as f64;
            prop_assert_eq!(curve[w as usize - 1], naive, "ways {}", w);
        }
    }

    /// Mattson inclusion: more ways at a fixed set count never miss
    /// more, and every ratio is a probability.
    #[test]
    fn curve_is_monotone_and_bounded(h in arb_histogram(), max_ways in 1u32..64) {
        let curve = lru_curve_from_histogram(&h, max_ways);
        for pair in curve.windows(2) {
            prop_assert!(pair[1] <= pair[0], "curve must be non-increasing: {:?}", pair);
        }
        for &r in &curve {
            prop_assert!((0.0..=1.0).contains(&r), "miss ratio {} out of range", r);
        }
    }

    /// The binomial conflict tail is a probability, monotone
    /// non-increasing in both `sets` and `ways` (bigger or more
    /// associative caches cannot conflict more), and exact at the
    /// degenerate corners.
    #[test]
    fn conflict_probability_is_monotone(sets in 1u32..4096, ways in 1u32..32, d in 0u64..10_000) {
        let p = set_conflict_probability(sets, ways, d);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        prop_assert!(set_conflict_probability(sets * 2, ways, d) <= p + 1e-12);
        prop_assert!(set_conflict_probability(sets, ways + 1, d) <= p + 1e-12);
        if d < u64::from(ways) {
            prop_assert_eq!(p, 0.0);
        }
    }

    /// The model's predicted miss ratio is monotone non-increasing in
    /// associativity at a fixed set count — the property the dominance
    /// pruner leans on.
    #[test]
    fn model_prediction_is_monotone_in_ways(seed in 0u64..1_000, sets in 1u32..9) {
        let mut sweep = LruStackSweep::new(32, &[1]).unwrap();
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sweep.observe(x % (1 << 16));
        }
        let model = AnalyticModel::from_sweep(&sweep).unwrap();
        let sets = 1 << sets;
        let mut prev = f64::INFINITY;
        for ways in 1..=16u32 {
            let p = model.predict(sets, ways).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12, "ways {}: {} > {}", ways, p, prev);
            prev = p;
        }
    }

    /// The pruner keeps every cell within the band of the best
    /// prediction and drops every cell beyond it; the best cell itself
    /// always survives.
    #[test]
    fn pruner_respects_the_band(
        raw in proptest::collection::vec(0u64..10_000, 1..32),
        band_mils in 0u64..500,
    ) {
        // The shimmed proptest has no f64 strategies; derive ratios and
        // the band from integer strategies instead.
        let predicted: Vec<f64> = raw.iter().map(|&v| v as f64 / 10_000.0).collect();
        let band = band_mils as f64 / 1_000.0;
        let keep = prune_dominated(&predicted, band);
        prop_assert_eq!(keep.len(), predicted.len());
        let best = predicted.iter().copied().fold(f64::INFINITY, f64::min);
        for (i, (&p, &k)) in predicted.iter().zip(&keep).enumerate() {
            prop_assert_eq!(k, p <= best + band, "cell {} p {} best {}", i, p, best);
        }
    }
}

/// Differential: the histogram a sweep hands out reproduces the sweep's
/// own miss counts at every set count and associativity it tracked —
/// `LruStackSweep::misses` and `StackHistogram::misses_at` are
/// independent summations over the same recorded counts.
#[test]
fn sweep_histogram_reproduces_sweep_misses() {
    let set_counts = [1u32, 8, 64, 256];
    let mut sweep = LruStackSweep::new(32, &set_counts).unwrap();
    let mut x = 0xdead_beef_cafe_f00du64;
    for _ in 0..20_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sweep.observe(x % (1 << 18));
    }
    for &sets in &set_counts {
        let h = sweep.histogram(sets).unwrap();
        assert_eq!(h.refs, sweep.refs_sampled());
        let curve = lru_curve_from_histogram(&h, 32);
        for ways in 1..=32u32 {
            assert_eq!(
                h.misses_at(ways),
                sweep.misses(sets, ways).unwrap(),
                "sets {sets} ways {ways}"
            );
            let ratio = sweep.miss_ratio(sets, ways).unwrap();
            assert!(
                (curve[ways as usize - 1] - ratio).abs() < 1e-12,
                "sets {sets} ways {ways}"
            );
        }
    }
}

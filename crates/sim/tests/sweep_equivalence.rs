//! Equivalence guards for the multi-configuration sweep engine.
//!
//! 1. The chunk-broadcast engine (`cac_sim::sweep::Sweep`) must produce
//!    counters **byte-identical** to sequential per-configuration
//!    `run_refs` for every shipped `examples/*.toml` model — the sweep
//!    is an execution strategy, never a semantic change.
//! 2. The one-pass Mattson stack-distance engine (`LruStackSweep`) must
//!    agree **exactly** with naive per-configuration LRU `Cache` replay
//!    across a size × associativity grid.

use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::{Cache, WritePolicy};
use cac_sim::model::{MemoryModel, ModelStats};
use cac_sim::sweep::{LruStackSweep, Sweep};
use cac_sim::SimConfig;
use cac_trace::io::IterRefSource;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use cac_trace::MemRef;
use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

/// Every shipped example config, loaded from disk.
fn example_configs() -> Vec<(String, SimConfig)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(examples_dir())
        .expect("examples directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 14,
        "expected the 14 shipped configs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let cfg = SimConfig::load(p.to_str().unwrap()).expect("shipped config parses");
            (name, cfg)
        })
        .collect()
}

fn workload(ops: usize) -> Vec<MemRef> {
    mem_refs(SpecBenchmark::Tomcatv.generator(2024).take(ops)).collect()
}

#[test]
fn engine_counters_byte_identical_to_sequential_replay_on_all_examples() {
    let refs = workload(60_000);
    let configs = example_configs();

    // Reference: each model replayed alone through the one-model API.
    let expect: Vec<ModelStats> = configs
        .iter()
        .map(|(_, cfg)| {
            let mut model = cfg.build().expect("shipped config builds");
            model.run_refs(&refs)
        })
        .collect();

    for workers in [1usize, 4] {
        let mut models: Vec<Box<dyn MemoryModel>> = configs
            .iter()
            .map(|(_, cfg)| cfg.build().expect("shipped config builds"))
            .collect();
        let got = Sweep::new()
            .workers(workers)
            .chunk_ops(4096)
            .run_refs(&mut models, &refs);
        for (((name, _), g), e) in configs.iter().zip(&got).zip(&expect) {
            assert_eq!(g, e, "{name} (workers {workers})");
        }
    }

    // The streaming path (decode-once broadcast) agrees too.
    let mut models: Vec<Box<dyn MemoryModel>> = configs
        .iter()
        .map(|(_, cfg)| cfg.build().expect("shipped config builds"))
        .collect();
    let got = Sweep::new()
        .workers(3)
        .chunk_ops(2048)
        .run_source(&mut models, IterRefSource::new(refs.iter().copied()))
        .unwrap();
    assert_eq!(got, expect);
}

#[test]
fn reset_restores_as_built_behaviour_for_every_example() {
    // The sweep drivers reuse models across sweep items (build once per
    // block, reset between items); that is only sound if reset() really
    // returns every organization to its as-built state — including the
    // random-replacement stream.
    let refs = workload(30_000);
    for (name, cfg) in example_configs() {
        let mut fresh = cfg.build().expect("builds");
        let expect = fresh.run_refs(&refs);
        let mut reused = cfg.build().expect("builds");
        reused.run_refs(&refs);
        reused.reset();
        assert_eq!(reused.run_refs(&refs), expect, "{name}");
    }
    // Random replacement exercises the RNG-stream part of the contract
    // (no shipped example uses it).
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let mut fresh = Cache::builder(geom)
        .replacement(cac_sim::replacement::ReplacementPolicy::Random)
        .build()
        .unwrap();
    let expect = MemoryModel::run_refs(&mut fresh, &refs);
    let mut reused = Cache::builder(geom)
        .replacement(cac_sim::replacement::ReplacementPolicy::Random)
        .build()
        .unwrap();
    MemoryModel::run_refs(&mut reused, &refs);
    MemoryModel::reset(&mut reused);
    assert_eq!(MemoryModel::run_refs(&mut reused, &refs), expect, "random");
}

#[test]
fn stack_distance_equals_naive_lru_replay_across_the_grid() {
    // Mixed read/write stream: exact under write-allocate LRU (every
    // access allocates and touches — the Mattson precondition).
    let refs = workload(50_000);
    let line = 32u64;
    let sizes: &[u64] = &[1024, 2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024];
    let ways: &[u32] = &[1, 2, 4];

    let mut set_counts: Vec<u32> = Vec::new();
    let mut grid = Vec::new();
    for &size in sizes {
        for &w in ways {
            let sets = (size / (line * u64::from(w))) as u32;
            if sets == 0 {
                continue;
            }
            set_counts.push(sets);
            grid.push((size, sets, w));
        }
    }
    assert!(grid.len() >= 8, "grid must replace at least 8 replays");

    let mut sweep = LruStackSweep::new(line, &set_counts).unwrap();
    sweep.run_refs(&refs);

    for &(size, sets, w) in &grid {
        let geom = CacheGeometry::new(size, line, w).unwrap();
        let mut cache = Cache::builder(geom)
            .index_spec(IndexSpec::modulo())
            .write_policy(WritePolicy::WriteBackAllocate)
            .build()
            .unwrap();
        for r in &refs {
            cache.access(r.addr, r.is_write);
        }
        let naive = cache.stats();
        assert_eq!(
            sweep.misses(sets, w),
            Some(naive.misses),
            "{size}B {w}-way ({sets} sets): misses"
        );
        assert_eq!(
            sweep.hits(sets, w),
            Some(naive.hits),
            "{size}B {w}-way ({sets} sets): hits"
        );
    }
}

#[test]
fn stack_distance_equals_naive_replay_on_read_only_streams() {
    // Read-only streams (the Figure 1 shape) are exact under the
    // paper's write-through/no-allocate L1 too.
    let refs: Vec<MemRef> = cac_trace::stride::VectorStride::paper_figure1(96, 16).collect();
    let line = 32u64;
    let mut sweep = LruStackSweep::new(line, &[128, 64, 1]).unwrap();
    sweep.run_refs(&refs);
    for (geom, sets, ways) in [
        (CacheGeometry::new(8 * 1024, 32, 2).unwrap(), 128u32, 2u32),
        (CacheGeometry::new(8 * 1024, 32, 4).unwrap(), 64, 4),
        (
            CacheGeometry::fully_associative(8 * 1024, 32).unwrap(),
            1,
            256,
        ),
    ] {
        let mut cache = Cache::build(geom, IndexSpec::modulo()).unwrap();
        for r in &refs {
            cache.read(r.addr);
        }
        assert_eq!(
            sweep.misses(sets, ways),
            Some(cache.stats().misses),
            "{geom}"
        );
    }
}

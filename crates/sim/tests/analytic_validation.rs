//! The analytic tier's validation harness: model vs simulation across
//! every shipped example config, on a synthetic workload and on a
//! binary-trace round trip of the same workload.
//!
//! Ground truth is the config's **primary cache** (geometry +
//! placement) replayed on the workload's loads — the exact cell the
//! sweep pruner screens. The prediction is scheme-aware: the exact
//! Mattson curve for modulus placement, the binomial birthday model for
//! hashed placement. The harness fails when the mean absolute
//! miss-ratio error exceeds [`BOUND_PCT`] (the bound `cac analytic
//! validate` documents) or when any config pair is rank-inverted by
//! more than the bound.

use std::fs;
use std::io::Cursor;
use std::path::PathBuf;

use cac_sim::cache::Cache;
use cac_sim::sweep::LruStackSweep;
use cac_sim::{AnalyticModel, SimConfig};
use cac_trace::io::binary::{write_trace_binary, BinaryTraceReader};
use cac_trace::kernels::mem_refs;
use cac_trace::{MemRef, SpecBenchmark};

/// The documented mean-absolute-error bound, in miss-ratio percentage
/// points (see DESIGN.md, "Analytic tier").
const BOUND_PCT: f64 = 5.0;

/// Every shipped example config, sorted for determinism.
fn example_configs() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 14,
        "expected the 14 shipped examples, found {}",
        paths.len()
    );
    paths
}

/// The synthetic workload: tomcatv — the paper's worst conflict case —
/// loads only, matching the read-only stream `cac analytic` observes.
fn synthetic_loads(ops: usize) -> Vec<MemRef> {
    mem_refs(SpecBenchmark::Tomcatv.generator(5).take(ops))
        .filter(|r| !r.is_write)
        .collect()
}

/// One validated config: predicted vs simulated primary miss ratio, in
/// percent.
struct Row {
    label: String,
    predicted: f64,
    simulated: f64,
}

/// Runs the model-vs-simulation comparison for every example config on
/// one load stream, returning per-config rows.
fn validate(loads: &[MemRef]) -> Vec<Row> {
    let mut rows = Vec::new();
    for path in example_configs() {
        let cfg = SimConfig::load(path.to_str().unwrap()).expect("example config parses");
        let (Some(geom), Some(index)) = (cfg.primary_geometry(), cfg.primary_index()) else {
            panic!("{}: example config has no primary cache", path.display());
        };
        // Ground truth: the primary array replayed under its actual
        // placement.
        let mut cache = Cache::build(geom, index.clone()).expect("primary cache builds");
        let simulated = cache.run_refs_slice(loads).miss_ratio() * 100.0;

        // Prediction: one stack traversal covers both estimators.
        let mut sweep = LruStackSweep::new(geom.block(), &[1, geom.num_sets()]).unwrap();
        for r in loads {
            sweep.observe(r.addr);
        }
        let predicted = if index.name() == "modulo" {
            sweep.miss_ratio(geom.num_sets(), geom.ways()).unwrap()
        } else {
            AnalyticModel::from_sweep(&sweep)
                .unwrap()
                .predict(geom.num_sets(), geom.ways())
                .unwrap()
        } * 100.0;
        rows.push(Row {
            label: cfg.name.unwrap_or_else(|| path.display().to_string()),
            predicted,
            simulated,
        });
    }
    rows
}

/// Mean absolute error plus the worst per-config error.
fn errors(rows: &[Row]) -> (f64, f64) {
    let sum: f64 = rows.iter().map(|r| (r.predicted - r.simulated).abs()).sum();
    let max = rows
        .iter()
        .map(|r| (r.predicted - r.simulated).abs())
        .fold(0.0, f64::max);
    (sum / rows.len() as f64, max)
}

/// Config pairs the model orders opposite to the simulation by more
/// than the bound — the inversions that would make pruning unsound.
fn rank_inversions(rows: &[Row], bound: f64) -> Vec<(String, String, f64)> {
    let mut inversions = Vec::new();
    for i in 0..rows.len() {
        for j in i + 1..rows.len() {
            let (a, b) = (&rows[i], &rows[j]);
            let gap = (a.simulated - b.simulated).abs();
            if (a.predicted - b.predicted) * (a.simulated - b.simulated) < 0.0 && gap > bound {
                inversions.push((a.label.clone(), b.label.clone(), gap));
            }
        }
    }
    inversions
}

#[test]
fn model_matches_simulation_on_the_synthetic_workload() {
    let loads = synthetic_loads(200_000);
    let rows = validate(&loads);
    let (mean, max) = errors(&rows);
    for r in &rows {
        eprintln!(
            "{:40} predicted {:6.2}  simulated {:6.2}  |err| {:5.2}",
            r.label,
            r.predicted,
            r.simulated,
            (r.predicted - r.simulated).abs()
        );
    }
    assert!(
        mean <= BOUND_PCT,
        "mean |error| {mean:.3} miss-% exceeds the documented bound {BOUND_PCT}"
    );
    // Modulus predictions are exact (Mattson inclusion); only hashed
    // placement carries model error, so the worst config stays within a
    // few points too.
    assert!(max <= 2.0 * BOUND_PCT, "max |error| {max:.3} miss-%");
    let inversions = rank_inversions(&rows, BOUND_PCT);
    assert!(
        inversions.is_empty(),
        "rank inversions beyond the bound: {inversions:?}"
    );
}

#[test]
fn model_matches_simulation_on_a_traced_workload() {
    // Round-trip the workload through the binary trace format: the
    // traced path must agree with the in-memory path ref-for-ref, and
    // the validation verdict must not depend on which one fed it.
    let ops: Vec<cac_trace::TraceOp> = SpecBenchmark::Tomcatv.generator(5).take(120_000).collect();
    let mut encoded = Vec::new();
    write_trace_binary(&mut encoded, ops.iter().copied()).expect("encode");

    let mut traced: Vec<MemRef> = Vec::new();
    BinaryTraceReader::new(Cursor::new(encoded))
        .expect("trace header")
        .for_each_ref(|r| {
            if !r.is_write {
                traced.push(r);
            }
        })
        .expect("decode");
    let direct: Vec<MemRef> = mem_refs(ops.into_iter()).filter(|r| !r.is_write).collect();
    assert_eq!(traced, direct, "trace round trip must preserve the loads");

    let rows = validate(&traced);
    let (mean, _) = errors(&rows);
    assert!(
        mean <= BOUND_PCT,
        "mean |error| {mean:.3} miss-% exceeds the documented bound {BOUND_PCT}"
    );
}

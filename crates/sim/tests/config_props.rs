//! Property-based hardening tests for the declarative config layer:
//! the TOML-subset reader and `SimConfig` must return `Error::Config`
//! (never panic, never hang) on arbitrary and adversarial input.

use cac_sim::config::toml::{parse, MAX_LINE_LEN};
use cac_sim::config::SimConfig;
use proptest::prelude::*;

/// One line of config-ish fuzz input: valid headers and pairs mixed
/// with malformed fragments and raw bytes.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("[cache]".to_owned()),
        Just("[hierarchy]".to_owned()),
        Just("[[level]]".to_owned()),
        Just("[poison]".to_owned()),
        (any::<u64>()).prop_map(|v| format!("size = {v}")),
        (any::<u64>()).prop_map(|v| format!("key{} = \"v{v}\"", v % 10)),
        (any::<u64>(), 0usize..6)
            .prop_map(|(v, n)| format!("list = [{}]", vec![v.to_string(); n].join(", "))),
        (any::<u64>()).prop_map(|v| format!("x = {}", "[".repeat((v % 40) as usize))),
        // Raw noise: arbitrary bytes squeezed into a lossy string.
        proptest::collection::vec(any::<u8>(), 0..60)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ]
}

proptest! {
    /// The parser is total: any byte soup either parses or returns a
    /// config error. (A panic or stack overflow would abort the test.)
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = parse(&String::from_utf8_lossy(&bytes));
    }

    /// The full `SimConfig` pipeline (parse + validate + build) never
    /// panics on assembled config-ish documents either.
    #[test]
    fn sim_config_never_panics(lines in proptest::collection::vec(arb_line(), 0..12)) {
        let input = lines.join("\n");
        let _ = SimConfig::from_toml_str(&input).map(|c| c.build());
    }

    /// Deeply nested brackets are rejected without recursing per
    /// bracket (no stack overflow at any depth).
    #[test]
    fn deep_nesting_is_rejected_flat(depth in 2usize..5000) {
        let src = format!("x = {}1{}", "[".repeat(depth), "]".repeat(depth));
        let err = parse(&src).unwrap_err().to_string();
        // Small depths hit the nested-array guard; huge ones trip the
        // line-length limit first. Either way: flat rejection, no
        // per-bracket recursion.
        prop_assert!(
            err.contains("nested arrays") || err.contains("limit"),
            "{}", err
        );
    }

    /// Key/value pairs written within the subset always round-trip.
    #[test]
    fn valid_pairs_round_trip(int_val in any::<i64>(), tag in 0u32..1000) {
        let key = format!("key-{tag}");
        let src = format!("{key} = {int_val}\nother = \"s{tag}\"\n");
        let doc = parse(&src).unwrap();
        prop_assert_eq!(doc.root.get(&key).unwrap().as_int(), Some(int_val));
        let expect = format!("s{tag}");
        prop_assert_eq!(doc.root.get("other").unwrap().as_str(), Some(expect.as_str()));
    }
}

#[test]
fn overlong_lines_are_rejected_with_position() {
    let src = format!("ok = 1\nbad = \"{}\"\n", "x".repeat(MAX_LINE_LEN));
    let err = parse(&src).unwrap_err().to_string();
    assert!(err.contains("line 2"), "{err}");
}

//! §3.1 option 2: enable I-Poly indexing only when pages are large enough.
//!
//! A virtually-indexed L1 cannot feed tag-side virtual bits to the hash if
//! translation can change them — unless the bits are *unmapped*, i.e. the
//! page is big enough that they are page-offset bits. The paper's option 2
//! therefore has the OS track the page sizes of the segments a process has
//! mapped and "enable polynomial cache indexing at the first-level cache
//! if all segments' page sizes were above a certain threshold", reverting
//! to conventional indexing otherwise. The one correctness requirement is
//! that "the level-1 cache is flushed when the indexing function is
//! changed".
//!
//! [`DynamicIndexCache`] implements exactly that controller: a segment
//! map with per-segment page sizes, automatic mode recomputation on every
//! map/unmap, and a full flush (counted) on every mode change.
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! let mut cache = DynamicIndexCache::new(geom, IndexSpec::ipoly_skewed(), 256 * 1024)?;
//!
//! // Nothing mapped yet: conventional by default.
//! assert_eq!(cache.mode(), IndexMode::Conventional);
//!
//! // A process with only large-page segments gets I-Poly indexing...
//! cache.map_segment(Segment::new(0x0000_0000, 1 << 24, 256 * 1024)?)?;
//! assert_eq!(cache.mode(), IndexMode::IPoly);
//!
//! // ...until it maps a small-page segment, which forces a revert+flush.
//! cache.map_segment(Segment::new(0x8000_0000, 1 << 20, 4096)?)?;
//! assert_eq!(cache.mode(), IndexMode::Conventional);
//! assert_eq!(cache.flushes(), 2); // conv -> ipoly -> conv
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::{Access, Cache};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};

/// A mapped address-space segment with a fixed page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    base: u64,
    len: u64,
    page_size: u64,
}

impl Segment {
    /// Creates a segment after validation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] unless `page_size` is a power of
    /// two, and [`Error::OutOfRange`] if `len` is zero, the segment is not
    /// page-aligned, or `base + len` overflows.
    pub fn new(base: u64, len: u64, page_size: u64) -> Result<Self, Error> {
        if page_size == 0 || !page_size.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "page size",
                value: page_size,
            });
        }
        if len == 0 || !len.is_multiple_of(page_size) || !base.is_multiple_of(page_size) {
            return Err(Error::OutOfRange {
                what: "segment extent",
                value: len,
                constraint: "non-empty and page-aligned",
            });
        }
        if base.checked_add(len).is_none() {
            return Err(Error::OutOfRange {
                what: "segment end",
                value: base,
                constraint: "base + len must not overflow",
            });
        }
        Ok(Segment {
            base,
            len,
            page_size,
        })
    }

    /// First byte address of the segment.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the segment has zero length (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// `true` if `addr` falls inside the segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.len
    }

    /// `true` if the two segments share any byte.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.base < other.base + other.len && other.base < self.base + self.len
    }
}

/// Which index function is currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Conventional modulo placement (small pages present, or nothing
    /// mapped).
    Conventional,
    /// Polynomial placement (every mapped segment has pages at or above
    /// the threshold).
    IPoly,
}

/// An L1 cache whose index function switches between conventional and
/// I-Poly under OS control of page sizes, flushing on each switch.
///
/// See the [module docs](self) for the design rationale and an example.
#[derive(Debug)]
pub struct DynamicIndexCache {
    geom: CacheGeometry,
    ipoly_spec: IndexSpec,
    threshold: u64,
    cache: Cache,
    mode: IndexMode,
    segments: Vec<Segment>,
    flushes: u64,
    flushed_lines: u64,
    /// Stats accumulated from cache instances before the last switch.
    accumulated: CacheStats,
    /// Accesses performed in each mode: `[conventional, ipoly]`.
    mode_accesses: [u64; 2],
}

impl DynamicIndexCache {
    /// Creates the controller. `threshold` is the minimum page size (in
    /// bytes) at which I-Poly indexing is considered safe — the paper's
    /// worked example uses 256KB.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] unless `threshold` is a power of
    /// two, plus any placement-construction error for `ipoly_spec`.
    pub fn new(geom: CacheGeometry, ipoly_spec: IndexSpec, threshold: u64) -> Result<Self, Error> {
        if threshold == 0 || !threshold.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "page-size threshold",
                value: threshold,
            });
        }
        // Validate the I-Poly spec eagerly so switches cannot fail later.
        ipoly_spec.build(geom)?;
        Ok(DynamicIndexCache {
            geom,
            ipoly_spec,
            threshold,
            cache: Cache::build(geom, IndexSpec::modulo())?,
            mode: IndexMode::Conventional,
            segments: Vec::new(),
            flushes: 0,
            flushed_lines: 0,
            accumulated: CacheStats::default(),
            mode_accesses: [0, 0],
        })
    }

    /// Maps a segment and re-evaluates the indexing mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if the segment overlaps one already
    /// mapped.
    pub fn map_segment(&mut self, seg: Segment) -> Result<(), Error> {
        if self.segments.iter().any(|s| s.overlaps(&seg)) {
            return Err(Error::OutOfRange {
                what: "segment base",
                value: seg.base(),
                constraint: "non-overlapping with mapped segments",
            });
        }
        self.segments.push(seg);
        self.recompute_mode();
        Ok(())
    }

    /// Unmaps the segment with the given base address; returns `true` if
    /// one was mapped, and re-evaluates the indexing mode.
    pub fn unmap_segment(&mut self, base: u64) -> bool {
        let before = self.segments.len();
        self.segments.retain(|s| s.base() != base);
        let removed = self.segments.len() != before;
        if removed {
            self.recompute_mode();
        }
        removed
    }

    /// The segment containing `addr`, if any.
    pub fn segment_of(&self, addr: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr))
    }

    /// Current indexing mode.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// The page-size threshold for enabling I-Poly indexing.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Number of flushes performed by mode switches.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total valid lines discarded by those flushes (the refill cost the
    /// OS pays for the switch).
    pub fn flushed_lines(&self) -> u64 {
        self.flushed_lines
    }

    /// Accesses performed while each mode was live:
    /// `(conventional, ipoly)`.
    pub fn accesses_by_mode(&self) -> (u64, u64) {
        (self.mode_accesses[0], self.mode_accesses[1])
    }

    /// Performs a read access under the current index function.
    pub fn read(&mut self, addr: u64) -> Access {
        self.access(addr, false)
    }

    /// Performs an access under the current index function.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Access {
        self.mode_accesses[match self.mode {
            IndexMode::Conventional => 0,
            IndexMode::IPoly => 1,
        }] += 1;
        self.cache.access(addr, is_write)
    }

    /// Cumulative statistics across all mode switches.
    pub fn stats(&self) -> CacheStats {
        self.accumulated + self.cache.stats()
    }

    fn recompute_mode(&mut self) {
        let want = if !self.segments.is_empty()
            && self
                .segments
                .iter()
                .all(|s| s.page_size() >= self.threshold)
        {
            IndexMode::IPoly
        } else {
            IndexMode::Conventional
        };
        if want != self.mode {
            self.switch_to(want);
        }
    }

    fn switch_to(&mut self, mode: IndexMode) {
        let spec = match mode {
            IndexMode::Conventional => IndexSpec::modulo(),
            IndexMode::IPoly => self.ipoly_spec.clone(),
        };
        self.flushes += 1;
        self.flushed_lines += self.cache.resident_lines() as u64;
        self.accumulated += self.cache.stats();
        self.cache =
            Cache::build(self.geom, spec).expect("both specs validated at construction time");
        self.mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    fn dyn_cache() -> DynamicIndexCache {
        DynamicIndexCache::new(geom(), IndexSpec::ipoly_skewed(), 256 * 1024).unwrap()
    }

    fn big(base: u64) -> Segment {
        Segment::new(base, 1 << 22, 256 * 1024).unwrap()
    }

    fn small(base: u64) -> Segment {
        Segment::new(base, 1 << 20, 4096).unwrap()
    }

    #[test]
    fn segment_validation() {
        assert!(Segment::new(0, 4096, 4096).is_ok());
        assert!(Segment::new(0, 4096, 1000).is_err()); // page size not 2^k
        assert!(Segment::new(0, 0, 4096).is_err()); // empty
        assert!(Segment::new(0, 100, 4096).is_err()); // not page-multiple
        assert!(Segment::new(100, 4096, 4096).is_err()); // misaligned base
        assert!(Segment::new(u64::MAX - 4095, 8192, 4096).is_err()); // overflow
    }

    #[test]
    fn segment_geometry_queries() {
        let s = Segment::new(0x10000, 0x4000, 4096).unwrap();
        assert!(s.contains(0x10000));
        assert!(s.contains(0x13fff));
        assert!(!s.contains(0x14000));
        assert!(!s.contains(0xffff));
        assert!(s.overlaps(&Segment::new(0x12000, 0x4000, 4096).unwrap()));
        assert!(!s.overlaps(&Segment::new(0x14000, 0x1000, 4096).unwrap()));
    }

    #[test]
    fn threshold_must_be_power_of_two() {
        assert!(DynamicIndexCache::new(geom(), IndexSpec::ipoly(), 250_000).is_err());
    }

    #[test]
    fn default_mode_is_conventional() {
        assert_eq!(dyn_cache().mode(), IndexMode::Conventional);
    }

    #[test]
    fn all_large_segments_enable_ipoly() {
        let mut c = dyn_cache();
        c.map_segment(big(0)).unwrap();
        c.map_segment(big(1 << 30)).unwrap();
        assert_eq!(c.mode(), IndexMode::IPoly);
        assert_eq!(c.flushes(), 1);
    }

    #[test]
    fn threshold_is_inclusive() {
        // Pages exactly at the threshold qualify ("above a certain
        // threshold" in the paper; we read it as >=, documented).
        let mut c = dyn_cache();
        c.map_segment(Segment::new(0, 1 << 20, 256 * 1024).unwrap())
            .unwrap();
        assert_eq!(c.mode(), IndexMode::IPoly);
    }

    #[test]
    fn one_small_segment_reverts_to_conventional() {
        let mut c = dyn_cache();
        c.map_segment(big(0)).unwrap();
        assert_eq!(c.mode(), IndexMode::IPoly);
        c.map_segment(small(1 << 31)).unwrap();
        assert_eq!(c.mode(), IndexMode::Conventional);
        c.unmap_segment(1 << 31);
        assert_eq!(c.mode(), IndexMode::IPoly);
        assert_eq!(c.flushes(), 3);
    }

    #[test]
    fn overlapping_map_is_rejected() {
        let mut c = dyn_cache();
        c.map_segment(big(0)).unwrap();
        assert!(c.map_segment(Segment::new(0, 4096, 4096).unwrap()).is_err());
        // Failed map must not change the mode.
        assert_eq!(c.mode(), IndexMode::IPoly);
    }

    #[test]
    fn unmap_of_unknown_base_is_noop() {
        let mut c = dyn_cache();
        c.map_segment(big(0)).unwrap();
        let flushes = c.flushes();
        assert!(!c.unmap_segment(0xdead_0000));
        assert_eq!(c.flushes(), flushes);
    }

    #[test]
    fn switch_flushes_resident_lines() {
        let mut c = dyn_cache();
        for i in 0..32u64 {
            c.read(i * 32);
        }
        assert_eq!(c.stats().misses, 32);
        c.map_segment(big(0)).unwrap(); // switch: flush 32 lines
        assert_eq!(c.flushed_lines(), 32);
        // The same blocks now miss again (compulsory refill after flush).
        for i in 0..32u64 {
            c.read(i * 32);
        }
        assert_eq!(c.stats().misses, 64);
        assert_eq!(c.stats().accesses, 64);
    }

    #[test]
    fn stats_accumulate_across_switches() {
        let mut c = dyn_cache();
        for i in 0..16u64 {
            c.read(i * 32);
        }
        c.map_segment(big(0)).unwrap();
        for i in 0..16u64 {
            c.read(i * 32);
        }
        c.map_segment(small(1 << 31)).unwrap();
        for i in 0..16u64 {
            c.read(i * 32);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 48);
        assert_eq!(s.misses, 48); // every phase refills after its flush
        assert_eq!(c.accesses_by_mode(), (32, 16));
    }

    #[test]
    fn ipoly_mode_actually_avoids_conflicts() {
        let mut c = dyn_cache();
        c.map_segment(Segment::new(0, 1 << 30, 256 * 1024).unwrap())
            .unwrap();
        assert_eq!(c.mode(), IndexMode::IPoly);
        // 64 blocks 4KB apart, swept 8 times: conflict-free under I-Poly.
        for _ in 0..8 {
            for i in 0..64u64 {
                c.read(i * 4096);
            }
        }
        assert_eq!(c.stats().misses, 64, "compulsory only");
    }

    #[test]
    fn segment_lookup() {
        let mut c = dyn_cache();
        c.map_segment(big(0)).unwrap();
        assert!(c.segment_of(100).is_some());
        assert!(c.segment_of(1 << 40).is_none());
    }
}

//! Streaming trace replay: feed any [`ChunkSource`] through the batched
//! simulation APIs.
//!
//! The batched entry points ([`Cache::run_trace`],
//! [`TwoLevelHierarchy::run_trace`]) want whole traces, but external
//! traces can be much larger than memory. This module bridges the two:
//! a caller-invisible chunk buffer is refilled from the source and
//! drained through the batched path, so a multi-gigabyte on-disk binary
//! trace replays with the same per-reference cost as an in-memory
//! vector — no per-op allocation, no per-op `Result`, and counters
//! byte-identical to the equivalent per-op loop (guarded by
//! `crates/sim/tests/replay_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::cache::Cache;
//! use cac_sim::replay::run_cache;
//! use cac_trace::io::{write_trace_binary, BinaryTraceReader};
//! use cac_trace::spec::SpecBenchmark;
//!
//! let ops: Vec<_> = SpecBenchmark::Swim.generator(7).take(10_000).collect();
//! let bytes = write_trace_binary(Vec::new(), ops.iter().copied())?;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! let mut streamed = Cache::build(geom, IndexSpec::ipoly_skewed())?;
//! let delta = run_cache(&mut streamed, BinaryTraceReader::new(&bytes[..])?)?;
//!
//! let mut in_memory = Cache::build(geom, IndexSpec::ipoly_skewed())?;
//! assert_eq!(delta, in_memory.run_trace(ops.iter().copied()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::Cache;
use crate::hierarchy::{HierarchyRun, TwoLevelHierarchy};
use crate::stats::CacheStats;
use cac_trace::io::{
    BinaryTraceError, BinaryTraceReader, ChunkSource, RefSource, DEFAULT_CHUNK_OPS,
};
use std::io::Read;

/// Streams a trace through a single-level [`Cache`] in
/// [`DEFAULT_CHUNK_OPS`]-sized batches; see [`run_cache_chunked`].
///
/// # Errors
///
/// Propagates the source's decode/read errors. References replayed
/// before the error remain applied (and counted in [`Cache::stats`]).
pub fn run_cache<S: ChunkSource>(cache: &mut Cache, source: S) -> Result<CacheStats, S::Error> {
    run_cache_chunked(cache, source, DEFAULT_CHUNK_OPS)
}

/// Streams a trace through a single-level [`Cache`], refilling a reused
/// `chunk_ops`-op buffer from `source` and draining it through
/// [`Cache::run_trace`]. Returns the counter delta attributable to the
/// whole stream, exactly as [`Cache::run_trace`] would for the same ops
/// in memory.
///
/// # Errors
///
/// Propagates the source's decode/read errors.
pub fn run_cache_chunked<S: ChunkSource>(
    cache: &mut Cache,
    mut source: S,
    chunk_ops: usize,
) -> Result<CacheStats, S::Error> {
    let chunk_ops = chunk_ops.max(1);
    let mut buf = Vec::with_capacity(chunk_ops);
    let mut total = CacheStats::default();
    while source.read_chunk(&mut buf, chunk_ops)? > 0 {
        total += cache.run_trace(buf.iter().copied());
    }
    Ok(total)
}

/// Streams a **binary** trace through a single-level [`Cache`] on the
/// memory-reference fast path: records decode straight to `MemRef`
/// chunks ([`BinaryTraceReader::read_ref_chunk`]), skipping the
/// instruction fields cache-only replay never looks at, and each chunk
/// replays through [`Cache::run_refs_slice`] — one kernel dispatch per
/// chunk, so the streaming path inherits the same specialized probe
/// kernels as in-memory replay.
///
/// Counters are identical to [`run_cache`] on the same stream. This is
/// the path `cac replay` and the `trace_streaming` benchmark use.
///
/// # Errors
///
/// Propagates decode/read errors from the reader. References decoded
/// before the error remain applied (and counted in [`Cache::stats`]).
pub fn run_cache_refs<R: Read>(
    cache: &mut Cache,
    reader: &mut BinaryTraceReader<R>,
) -> Result<CacheStats, BinaryTraceError> {
    run_cache_source(cache, reader)
}

/// Streams any [`RefSource`] through a single-level [`Cache`] in
/// [`DEFAULT_CHUNK_OPS`]-sized reference batches — the generic sibling
/// of [`run_cache_refs`] for columnar corpus files and other non-binary
/// streams.
///
/// # Errors
///
/// Propagates decode/read errors from the source. References decoded
/// before the error remain applied (and counted in [`Cache::stats`]).
pub fn run_cache_source<S: RefSource>(
    cache: &mut Cache,
    mut source: S,
) -> Result<CacheStats, S::Error> {
    let before = cache.stats();
    let mut buf: Vec<cac_trace::MemRef> = Vec::with_capacity(DEFAULT_CHUNK_OPS);
    loop {
        match source.read_ref_chunk(&mut buf, DEFAULT_CHUNK_OPS) {
            Ok(0) => break,
            Ok(_) => {
                cache.run_refs_slice(&buf);
            }
            Err(e) => {
                // References decoded before the error still replay, as
                // the fused per-op loop this path replaced did.
                cache.run_refs_slice(&buf);
                return Err(e);
            }
        }
    }
    Ok(cache.stats() - before)
}

/// Streams a trace through a [`TwoLevelHierarchy`] in
/// [`DEFAULT_CHUNK_OPS`]-sized batches; see [`run_hierarchy_chunked`].
///
/// # Errors
///
/// Propagates the source's decode/read errors.
pub fn run_hierarchy<S: ChunkSource>(
    hierarchy: &mut TwoLevelHierarchy,
    source: S,
) -> Result<HierarchyRun, S::Error> {
    run_hierarchy_chunked(hierarchy, source, DEFAULT_CHUNK_OPS)
}

/// Streams a trace through a [`TwoLevelHierarchy`] with an explicit
/// chunk length; the two-level analogue of [`run_cache_chunked`].
///
/// # Errors
///
/// Propagates the source's decode/read errors.
pub fn run_hierarchy_chunked<S: ChunkSource>(
    hierarchy: &mut TwoLevelHierarchy,
    mut source: S,
    chunk_ops: usize,
) -> Result<HierarchyRun, S::Error> {
    let chunk_ops = chunk_ops.max(1);
    let mut buf = Vec::with_capacity(chunk_ops);
    let mut total = HierarchyRun::default();
    while source.read_chunk(&mut buf, chunk_ops)? > 0 {
        total = total + hierarchy.run_trace(buf.iter().copied());
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_core::{CacheGeometry, IndexSpec};
    use cac_trace::io::SliceSource;
    use cac_trace::spec::SpecBenchmark;
    use cac_trace::TraceOp;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn chunk_boundaries_do_not_change_results() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(3).take(20_000).collect();
        let mut reference = Cache::build(geom(), IndexSpec::ipoly_skewed()).unwrap();
        let expect = reference.run_trace(ops.iter().copied());
        for chunk in [1usize, 7, 1024, 1 << 20] {
            let mut c = Cache::build(geom(), IndexSpec::ipoly_skewed()).unwrap();
            let got = run_cache_chunked(&mut c, SliceSource::new(&ops), chunk).unwrap();
            assert_eq!(got, expect, "chunk {chunk}");
            assert_eq!(c.stats(), reference.stats(), "chunk {chunk}");
        }
    }

    #[test]
    fn ref_fast_path_matches_op_path() {
        use cac_trace::io::{write_trace_binary, BinaryTraceReader};
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(11).take(30_000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut via_ops = Cache::build(geom(), IndexSpec::ipoly_skewed()).unwrap();
        let a = run_cache(&mut via_ops, BinaryTraceReader::new(&bytes[..]).unwrap()).unwrap();
        let mut via_refs = Cache::build(geom(), IndexSpec::ipoly_skewed()).unwrap();
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let b = run_cache_refs(&mut via_refs, &mut reader).unwrap();
        assert_eq!(a, b);
        assert_eq!(via_ops.stats(), via_refs.stats());
    }

    #[test]
    fn empty_source_is_a_no_op() {
        let mut c = Cache::build(geom(), IndexSpec::modulo()).unwrap();
        let delta = run_cache(&mut c, SliceSource::new(&[])).unwrap();
        assert_eq!(delta, CacheStats::default());
        assert_eq!(c.stats().accesses, 0);
    }
}

//! Virtual→physical page mappings.
//!
//! The two-level virtual-real hierarchy indexes L1 with virtual addresses
//! and L2 with physical addresses (§3.1). The correlation between the two
//! index streams depends on how the OS maps pages; this module provides an
//! identity mapping (kernel-style) and a deterministic pseudo-random
//! mapping (demand-paged style), which is what makes L1 and L2 indices
//! effectively uncorrelated in the hole experiments.

use std::collections::{HashMap, HashSet};

/// Minimum page size the paper's discussion assumes (§3.1: "Typical
/// operating systems permit pages to be as small as 4Kbytes").
pub const MIN_PAGE_SIZE: u64 = 4096;

/// A virtual→physical page mapper.
#[derive(Debug, Clone)]
pub enum PageMapper {
    /// Physical address equals virtual address.
    Identity,
    /// Each new virtual page is assigned a pseudo-random free frame from a
    /// fixed physical-memory pool, deterministically from the seed.
    Randomized {
        /// Page size in bytes (power of two, >= 4KB by convention).
        page_size: u64,
        /// Established mappings: virtual page number → frame number.
        mappings: HashMap<u64, u64>,
        /// xorshift state for frame assignment.
        rng_state: u64,
        /// Number of physical frames available.
        frames: u64,
        /// Frames already handed out.
        used: HashSet<u64>,
    },
    /// Many-to-one mapping: virtual page `v` maps to frame `v mod frames`.
    /// Distinct virtual pages deliberately share physical frames, creating
    /// the virtual aliases whose removal is hole cause 2 in §3.3.
    Aliased {
        /// Page size in bytes.
        page_size: u64,
        /// Number of physical frames (the modulus).
        frames: u64,
    },
}

impl PageMapper {
    /// Creates the identity mapper.
    pub fn identity() -> Self {
        PageMapper::Identity
    }

    /// Creates a randomized mapper over `memory_bytes` of physical memory
    /// with the given `page_size`.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or `memory_bytes` is
    /// not a multiple of `page_size`.
    pub fn randomized(page_size: u64, memory_bytes: u64, seed: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            memory_bytes.is_multiple_of(page_size) && memory_bytes > 0,
            "memory must be a positive multiple of the page size"
        );
        PageMapper::Randomized {
            page_size,
            mappings: HashMap::new(),
            rng_state: seed | 1,
            frames: memory_bytes / page_size,
            used: HashSet::new(),
        }
    }

    /// Creates an aliasing mapper: virtual page `v` maps to frame
    /// `v mod frames`, so two virtual pages `frames` apart are aliases of
    /// the same physical page.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or `frames == 0`.
    pub fn aliased(page_size: u64, frames: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(frames > 0, "need at least one frame");
        PageMapper::Aliased { page_size, frames }
    }

    /// Translates a virtual address to a physical address, establishing a
    /// mapping on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the randomized mapper runs out of physical frames.
    pub fn translate(&mut self, va: u64) -> u64 {
        match self {
            PageMapper::Identity => va,
            PageMapper::Aliased { page_size, frames } => {
                let vpn = va / *page_size;
                let offset = va % *page_size;
                (vpn % *frames) * *page_size + offset
            }
            PageMapper::Randomized {
                page_size,
                mappings,
                rng_state,
                frames,
                used,
            } => {
                let vpn = va / *page_size;
                let offset = va % *page_size;
                let frame = *mappings.entry(vpn).or_insert_with(|| {
                    assert!(
                        (used.len() as u64) < *frames,
                        "out of physical frames ({} in use)",
                        used.len()
                    );
                    loop {
                        let mut x = *rng_state;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        *rng_state = x;
                        let candidate = x % *frames;
                        if used.insert(candidate) {
                            break candidate;
                        }
                    }
                });
                frame * *page_size + offset
            }
        }
    }

    /// The page size (identity mapping reports [`MIN_PAGE_SIZE`]).
    pub fn page_size(&self) -> u64 {
        match self {
            PageMapper::Identity => MIN_PAGE_SIZE,
            PageMapper::Randomized { page_size, .. } | PageMapper::Aliased { page_size, .. } => {
                *page_size
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let mut m = PageMapper::identity();
        for va in [0u64, 4096, 0xdead_beef, u64::MAX / 2] {
            assert_eq!(m.translate(va), va);
        }
    }

    #[test]
    fn randomized_preserves_offsets() {
        let mut m = PageMapper::randomized(4096, 1 << 24, 42);
        let pa = m.translate(0x12345);
        assert_eq!(pa % 4096, 0x12345 % 4096);
    }

    #[test]
    fn mapping_is_stable() {
        let mut m = PageMapper::randomized(4096, 1 << 24, 42);
        let a = m.translate(0x5000);
        let b = m.translate(0x5FFF);
        let c = m.translate(0x5000);
        assert_eq!(a, c);
        assert_eq!(a / 4096, b / 4096); // same page
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = PageMapper::randomized(4096, 1 << 24, 7);
        let mut frames = std::collections::HashSet::new();
        for p in 0..512u64 {
            let pa = m.translate(p * 4096);
            assert!(frames.insert(pa / 4096), "frame reused");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PageMapper::randomized(4096, 1 << 22, 99);
        let mut b = PageMapper::randomized(4096, 1 << 22, 99);
        for p in 0..64u64 {
            assert_eq!(a.translate(p * 4096), b.translate(p * 4096));
        }
    }

    #[test]
    #[should_panic(expected = "out of physical frames")]
    fn exhaustion_panics() {
        let mut m = PageMapper::randomized(4096, 4096 * 4, 1);
        for p in 0..5u64 {
            m.translate(p * 4096);
        }
    }

    #[test]
    fn page_size_accessor() {
        assert_eq!(PageMapper::identity().page_size(), 4096);
        assert_eq!(PageMapper::randomized(8192, 1 << 20, 1).page_size(), 8192);
        assert_eq!(PageMapper::aliased(4096, 16).page_size(), 4096);
    }

    #[test]
    fn aliased_mapper_wraps_pages() {
        let mut m = PageMapper::aliased(4096, 16);
        // Virtual pages 0 and 16 share frame 0.
        assert_eq!(m.translate(0x123), 0x123);
        assert_eq!(m.translate(16 * 4096 + 0x123), 0x123);
        // Page 5 and 21 share frame 5.
        assert_eq!(m.translate(5 * 4096), m.translate(21 * 4096));
    }
}

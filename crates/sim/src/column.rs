//! Column-associative cache with polynomial rehash (§3.1, option 4).
//!
//! A physically-tagged direct-mapped cache that probes first with the
//! conventional modulo index (using unmapped address bits only) and, on a
//! first-probe miss, probes again at the I-Poly index of the full address.
//! Lines swap between their "conventional" and "alternative" locations so
//! that the most-recently-used line of a pair sits where the first probe
//! finds it — the paper reports this yields "a typical probability of
//! around 90% that a hit is detected at the first probe".

use crate::model::{extra, AccessOutcome, MemoryModel, ModelStats, ServicePoint};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error};
use cac_gf2::xor_tree::{min_fan_in_poly, XorTree};
use cac_trace::MemRef;

/// Counters for the column-associative organization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total read accesses.
    pub accesses: u64,
    /// Hits at the first probe.
    pub first_probe_hits: u64,
    /// Hits at the second (polynomial) probe.
    pub second_probe_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Stores presented to the organization and passed through untouched
    /// (the paper evaluates it by load miss ratio; stores are not
    /// modelled).
    pub bypassed_stores: u64,
}

impl ColumnStats {
    /// Overall miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of *hits* detected at the first probe — the paper's ~90%
    /// figure.
    pub fn first_probe_hit_fraction(&self) -> f64 {
        let hits = self.first_probe_hits + self.second_probe_hits;
        if hits == 0 {
            0.0
        } else {
            self.first_probe_hits as f64 / hits as f64
        }
    }

    /// Average probes per hit (1 for first-probe, 2 for second-probe) —
    /// the "slight increase in average hit time" of §3.1.
    pub fn avg_probes_per_hit(&self) -> f64 {
        let hits = self.first_probe_hits + self.second_probe_hits;
        if hits == 0 {
            0.0
        } else {
            (self.first_probe_hits + 2 * self.second_probe_hits) as f64 / hits as f64
        }
    }
}

/// Second-probe (rehash) function of a two-probe direct-mapped cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RehashKind {
    /// Polynomial (I-Poly) rehash — the paper's §3.1 option 4.
    #[default]
    Polynomial,
    /// Flip the top index bit — the classic hash-rehash / column-
    /// associative second probe of Agarwal et al., kept as the
    /// non-polynomial baseline the companion study \[10\] compares against.
    TopBitFlip,
}

/// Direct-mapped cache with a conventional first probe and a rehashed
/// second probe (polynomial by default).
///
/// Every resident block lives at one of its two homes: its conventional
/// index or its polynomial index. Promotions on a second-probe hit demote
/// the displaced occupant to *its own* polynomial home (the two probe
/// functions are unrelated hashes, so a plain slot swap would strand the
/// occupant somewhere neither of its probes could find it).
///
/// # Example
///
/// ```
/// use cac_core::CacheGeometry;
/// use cac_sim::column::ColumnAssociative;
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 1)?;
/// let mut c = ColumnAssociative::new(geom)?;
/// for i in 0..256u64 {
///     c.read(i * 32);
/// }
/// assert!(c.read(0).is_hit());
/// assert!(c.stats().first_probe_hit_fraction() > 0.9); // the paper's ~90%
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ColumnAssociative {
    geom: CacheGeometry,
    tree: XorTree,
    rehash: RehashKind,
    mask: u64,
    /// LUT over the tree's input bits so the second-probe index is a
    /// single load on the access path (same trick as
    /// `cac_core::IndexTable`); `None` when the input is too wide.
    poly_lut: Option<Vec<u32>>,
    /// One block address per line (flat direct-mapped storage;
    /// `INVALID_LINE` = empty).
    lines: Vec<u64>,
    stats: ColumnStats,
}

/// Sentinel for an empty line (cannot collide with a real block address;
/// see `cac_sim::cache`).
const INVALID_LINE: u64 = u64::MAX;

impl ColumnAssociative {
    /// Creates the cache with the polynomial rehash. The geometry is
    /// interpreted as direct-mapped regardless of its `ways` field (the
    /// organization is "effectively a direct-mapped cache", §3.1); total
    /// lines = capacity / block.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(geom: CacheGeometry) -> Result<Self, Error> {
        Self::with_rehash(geom, RehashKind::Polynomial)
    }

    /// Creates the cache with an explicit rehash function.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn with_rehash(geom: CacheGeometry, rehash: RehashKind) -> Result<Self, Error> {
        let dm = CacheGeometry::new(geom.capacity(), geom.block(), 1)?;
        let m = dm.index_bits();
        // Hash the full block address budget the paper allows (19 address
        // bits) or 2m bits, whichever is larger, for the rehash probe.
        let v = (19u32.saturating_sub(dm.offset_bits())).max(2 * m).min(40);
        let poly = min_fan_in_poly(m, v);
        let tree = XorTree::new(poly, v);
        let poly_lut = (rehash == RehashKind::Polynomial && v <= 20).then(|| tree.apply_table(v));
        Ok(ColumnAssociative {
            geom: dm,
            tree,
            rehash,
            mask: u64::from(dm.num_sets() - 1),
            poly_lut,
            lines: vec![INVALID_LINE; dm.num_sets() as usize],
            stats: ColumnStats::default(),
        })
    }

    /// The (direct-mapped) geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Running counters.
    pub fn stats(&self) -> ColumnStats {
        self.stats
    }

    /// The conventional (first-probe) line index of a block address.
    #[inline]
    pub fn conventional_index(&self, block: u64) -> usize {
        (block & self.mask) as usize
    }

    /// The rehashed (second-probe) line index of a block address.
    #[inline]
    pub fn polynomial_index(&self, block: u64) -> usize {
        match self.rehash {
            RehashKind::Polynomial => match &self.poly_lut {
                Some(lut) => lut[(block & (lut.len() as u64 - 1)) as usize] as usize,
                None => self.tree.apply(block) as usize,
            },
            RehashKind::TopBitFlip => ((block & self.mask) ^ (self.mask / 2 + 1)) as usize,
        }
    }

    /// Demotes `occupant` (currently holding slot `slot`) to its own
    /// polynomial home, returning any block this pushed out of the cache
    /// entirely: the previous resident of the polynomial home, or the
    /// occupant itself if `slot` *is* its polynomial home (the caller is
    /// about to overwrite `slot`).
    fn demote(&mut self, occupant: u64, slot: usize) -> Option<u64> {
        let alt = self.polynomial_index(occupant);
        if alt != slot {
            let displaced = self.lines[alt];
            self.lines[alt] = occupant;
            (displaced != INVALID_LINE).then_some(displaced)
        } else {
            Some(occupant)
        }
    }

    /// Performs a read access, reporting hit/miss, the servicing probe
    /// and any block the line movement evicted.
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let block = self.geom.block_addr(addr);
        let i1 = self.conventional_index(block);
        if self.lines[i1] == block {
            self.stats.first_probe_hits += 1;
            return AccessOutcome::hit_at(ServicePoint::Level(0));
        }
        let i2 = self.polynomial_index(block);
        if i2 != i1 && self.lines[i2] == block {
            // Promote the MRU line to its conventional home so the first
            // probe finds it next time; the displaced occupant moves to
            // its *own* polynomial home.
            self.lines[i2] = INVALID_LINE;
            let occupant = self.lines[i1];
            let evicted = (occupant != INVALID_LINE)
                .then(|| self.demote(occupant, i1))
                .flatten();
            self.lines[i1] = block;
            self.stats.second_probe_hits += 1;
            return AccessOutcome {
                hit: true,
                served_by: ServicePoint::SecondProbe,
                way: None,
                evicted,
                filled: false,
            };
        }
        // Miss: the incoming block takes its conventional home; the
        // occupant is demoted to its own polynomial home.
        let occupant = self.lines[i1];
        let evicted = (occupant != INVALID_LINE)
            .then(|| self.demote(occupant, i1))
            .flatten();
        self.lines[i1] = block;
        self.stats.misses += 1;
        AccessOutcome {
            hit: false,
            served_by: ServicePoint::Memory,
            way: None,
            evicted,
            filled: true,
        }
    }

    /// Number of valid lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|&&l| l != INVALID_LINE).count()
    }

    /// Invalidates all contents and clears all counters.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.stats = ColumnStats::default();
    }
}

impl MemoryModel for ColumnAssociative {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        if r.is_write {
            self.stats.bypassed_stores += 1;
            return AccessOutcome::bypass();
        }
        self.read(r.addr)
    }

    fn stats(&self) -> ModelStats {
        let s = self.stats;
        let demand = CacheStats {
            accesses: s.accesses,
            hits: s.first_probe_hits + s.second_probe_hits,
            misses: s.misses,
            reads: s.accesses,
            read_misses: s.misses,
            ..CacheStats::default()
        };
        let mut m = ModelStats::single("column", demand);
        m.extras = vec![
            extra("first-probe-hits", s.first_probe_hits),
            extra("second-probe-hits", s.second_probe_hits),
            extra("stores-bypassed", s.bypassed_stores),
        ];
        m
    }

    fn reset(&mut self) {
        ColumnAssociative::reset(self);
    }

    fn describe(&self) -> String {
        let rehash = match self.rehash {
            RehashKind::Polynomial => "polynomial",
            RehashKind::TopBitFlip => "top-bit-flip",
        };
        format!("column-associative {} ({rehash} rehash)", self.geom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm8k() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 1).unwrap()
    }

    /// Finds two blocks with the same conventional index whose polynomial
    /// homes are distinct from that index (so both can be resident).
    fn conflicting_pair(c: &ColumnAssociative) -> (u64, u64) {
        let sets = c.geometry().num_sets() as u64;
        for base in sets..4 * sets {
            let other = base + sets;
            let i1 = c.conventional_index(base);
            if c.polynomial_index(base) != i1
                && c.polynomial_index(other) != i1
                && c.polynomial_index(base) != c.polynomial_index(other)
            {
                return (base * 32, other * 32);
            }
        }
        panic!("no conflicting pair found");
    }

    #[test]
    fn conventional_conflict_pair_coexists() {
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        let (a, b) = conflicting_pair(&c);
        assert!(!c.read(a).is_hit());
        assert!(!c.read(b).is_hit());
        // Both resident afterwards; no more misses.
        let mut misses = 0;
        for _ in 0..20 {
            if !c.read(a).is_hit() {
                misses += 1;
            }
            if !c.read(b).is_hit() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0);
    }

    #[test]
    fn blocks_below_set_count_hash_to_themselves() {
        // A(x) with deg < deg(P) reduces to itself, so small blocks have a
        // single home — they behave exactly direct-mapped.
        let c = ColumnAssociative::new(dm8k()).unwrap();
        for block in 0..256u64 {
            assert_eq!(c.conventional_index(block), block as usize);
            assert_eq!(c.polynomial_index(block), block as usize);
        }
    }

    #[test]
    fn swap_promotes_mru_to_first_probe() {
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        let (a, b) = conflicting_pair(&c);
        c.read(a);
        c.read(b); // b takes the conventional slot, a demoted
                   // First access to a is a second-probe hit, which promotes it...
        assert_eq!(c.read(a).served_by, ServicePoint::SecondProbe);
        // ...so the next access to a hits at the first probe.
        assert_eq!(c.read(a).served_by, ServicePoint::Level(0));
    }

    #[test]
    fn sequential_fill_all_first_probe_hits() {
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        for i in 0..256u64 {
            c.read(i * 32);
        }
        for i in 0..256u64 {
            assert_eq!(c.read(i * 32).served_by, ServicePoint::Level(0));
        }
        assert!(c.stats().first_probe_hit_fraction() > 0.99);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        for i in 0..10_000u64 {
            c.read(i * 32 * 7);
        }
        assert!(c.resident_lines() <= 256);
    }

    #[test]
    fn stats_consistency() {
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        for i in 0..1000u64 {
            c.read((i % 300) * 32);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 1000);
        assert_eq!(
            s.first_probe_hits + s.second_probe_hits + s.misses,
            s.accesses
        );
        assert!(s.avg_probes_per_hit() >= 1.0);
        assert!(s.avg_probes_per_hit() <= 2.0);
    }

    #[test]
    fn outcomes_report_real_evictions() {
        // Replay a wide mix and reconcile the evictions the outcomes
        // report against residency: fills - evictions == resident lines.
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        let mut fills = 0i64;
        let mut evictions = 0i64;
        for i in 0..5000u64 {
            let out = c.read((i.wrapping_mul(0x9E37_79B9) >> 5) & 0x3_FFFF);
            if out.filled {
                fills += 1;
            }
            if out.evicted.is_some() {
                evictions += 1;
            }
            assert_eq!(out.hit, out.is_hit());
        }
        assert_eq!(fills - evictions, c.resident_lines() as i64);
    }

    #[test]
    fn memory_model_view_matches_column_stats() {
        use crate::model::MemoryModel;
        let mut c = ColumnAssociative::new(dm8k()).unwrap();
        for i in 0..400u64 {
            let r = cac_trace::MemRef {
                pc: 0,
                addr: (i % 300) * 32,
                is_write: i % 7 == 0,
            };
            MemoryModel::access(&mut c, r);
        }
        let m = MemoryModel::stats(&c);
        let s = c.stats();
        assert_eq!(m.demand.reads, s.accesses);
        assert_eq!(m.demand.misses, s.misses);
        assert_eq!(m.demand.hits, s.first_probe_hits + s.second_probe_hits);
        assert_eq!(m.extra("stores-bypassed"), Some(s.bypassed_stores));
        assert!(s.bypassed_stores > 0);
        // Stores must not disturb the read-only contents.
        let resident_before = c.resident_lines();
        MemoryModel::access(
            &mut c,
            cac_trace::MemRef {
                pc: 0,
                addr: 0xdead_0000,
                is_write: true,
            },
        );
        assert_eq!(c.resident_lines(), resident_before);
        MemoryModel::reset(&mut c);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn pseudo_associativity_beats_direct_mapped_on_conflicts() {
        use crate::cache::Cache;
        use cac_core::IndexSpec;
        // Ping-pong between conflicting pairs: direct-mapped thrashes,
        // column-associative settles.
        let mut dm = Cache::build(dm8k(), IndexSpec::modulo()).unwrap();
        let mut col = ColumnAssociative::new(dm8k()).unwrap();
        for round in 0..50u64 {
            for pair in 0..8u64 {
                // Blocks >= 256 so each has a distinct polynomial home.
                let a = (256 + pair) * 32;
                let b = (512 + pair) * 32;
                let x = if round % 2 == 0 { a } else { b };
                dm.read(x);
                col.read(x);
                dm.read(if x == a { b } else { a });
                col.read(if x == a { b } else { a });
            }
        }
        assert!(col.stats().miss_ratio() < dm.stats().miss_ratio() / 2.0);
    }
}

#[cfg(test)]
mod rehash_tests {
    use super::*;

    #[test]
    fn top_bit_flip_pairs_slots() {
        let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        let c = ColumnAssociative::with_rehash(geom, RehashKind::TopBitFlip).unwrap();
        // 256 sets: the rehash of slot s is s ^ 128.
        assert_eq!(c.polynomial_index(0), 128);
        assert_eq!(c.polynomial_index(128), 0);
        assert_eq!(c.polynomial_index(5), 133);
    }

    #[test]
    fn bit_flip_rehash_still_thrashes_on_wide_conflicts() {
        // Three blocks that share BOTH probe locations under bit-flip
        // rehash (same low 8 bits of block address) keep missing, while
        // the polynomial rehash separates them.
        let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        let mut flip = ColumnAssociative::with_rehash(geom, RehashKind::TopBitFlip).unwrap();
        let mut poly = ColumnAssociative::new(geom).unwrap();
        let blocks = [0x300u64, 0x400, 0x500]; // equal mod 256
        for _ in 0..20 {
            for &b in &blocks {
                flip.read(b * 32);
                poly.read(b * 32);
            }
        }
        assert!(flip.stats().miss_ratio() > 0.8, "{:?}", flip.stats());
        assert!(poly.stats().miss_ratio() < 0.2, "{:?}", poly.stats());
    }

    #[test]
    fn bit_flip_handles_adjacent_conflict_pair() {
        // The case hash-rehash was designed for: exactly two blocks on
        // one set coexist via the flipped slot.
        let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        let mut c = ColumnAssociative::with_rehash(geom, RehashKind::TopBitFlip).unwrap();
        let (a, b) = (0x300u64 * 32, 0x400u64 * 32);
        c.read(a);
        c.read(b);
        let mut misses = 0;
        for _ in 0..10 {
            if !c.read(a).is_hit() {
                misses += 1;
            }
            if !c.read(b).is_hit() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0);
    }
}

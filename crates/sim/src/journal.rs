//! Crash-safe checkpoint journal for long sweeps.
//!
//! The ROADMAP's service north star replays fleets of traces across a
//! config grid — hours of work that a killed process must not throw
//! away. This module persists per-(workload, config) [`ModelStats`]
//! cells so a restarted run recomputes only the missing cells:
//!
//! * **Append-only text format.** The file opens with a header line
//!   `CACJ v1 <fingerprint>` binding the journal to one workload (see
//!   below), followed by one `cell <key> <payload> <checksum>` line per
//!   completed cell. Later duplicates of a key win, so re-recording a
//!   cell is harmless.
//! * **Checksummed lines.** Every cell line carries an FNV-64 checksum
//!   of its content; a torn final line (the typical crash artifact) is
//!   skipped on load instead of poisoning the journal.
//! * **Crash-atomic save.** [`Journal::save`] runs the full commit
//!   protocol from [`cac_trace::io::commitfs`]: write a sibling temp
//!   file, `fsync` it, `rename` it over the target, `fsync` the parent
//!   directory. A crash at any step leaves the previous journal intact
//!   (at worst plus an orphaned `*.journal.tmp`, which [`Journal::load`]
//!   sweeps on open). [`Journal::save_with`] takes an explicit
//!   [`CommitFs`] so tests can inject crash points and disk-full faults
//!   into the sequence.
//! * **Canonical output.** Cells are written sorted by key, so any two
//!   journals holding the same cells are byte-identical — N runners
//!   partitioning a grid merge into exactly the file one runner would
//!   have written.
//! * **Cell leases.** A runner that is *about to* compute a cell can
//!   [`Journal::claim`] it: a `claim <key> <runner> <generation>` line
//!   that peer runners honour while the claimant is alive and take over
//!   (bumping the generation) once it is not. Claims vanish when the
//!   cell is [`Journal::record`]ed. Old readers skip claim lines — the
//!   format stays `v1`.
//! * **Fingerprint binding.** The header fingerprint hashes the
//!   workload identity (trace path + size, or synthetic bench + ops +
//!   seed). [`Journal::load`] refuses a journal whose fingerprint does
//!   not match the workload being resumed — stale checkpoints fail
//!   loudly instead of splicing mismatched results into a report.
//!
//! Cell *keys* are chosen by the caller; the drivers use
//! `<config-name>@<config-content-hash>` so editing a config file
//! invalidates exactly that config's cell.
//!
//! # Example
//!
//! ```
//! use cac_sim::journal::Journal;
//! use cac_sim::model::ModelStats;
//!
//! let dir = std::env::temp_dir().join(format!("cac-journal-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("sweep.journal");
//!
//! let mut j = Journal::new(0xABCD);
//! j.record("cfg-a", &ModelStats::default());
//! j.save(&path)?;
//!
//! let resumed = Journal::load(&path, 0xABCD)?;
//! assert!(resumed.get("cfg-a").is_some());
//! assert!(resumed.get("cfg-b").is_none());
//! assert!(Journal::load(&path, 0x9999).is_err()); // stale fingerprint
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::model::{ComponentStats, ModelStats};
use crate::stats::CacheStats;
use cac_core::Error;
use cac_trace::io::commitfs::{CommitFs, DiskFs};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Magic word opening a journal file.
const JOURNAL_MAGIC: &str = "CACJ";
/// Journal format version.
const JOURNAL_VERSION: &str = "v1";

/// FNV-1a over a string, for line checksums and fingerprints.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a workload description into a journal fingerprint. Callers
/// feed the parts that define workload identity (trace path and size,
/// or bench name, op count and seed).
pub fn fingerprint(parts: &[&str]) -> u64 {
    fnv64(&parts.join("\u{1f}"))
}

/// Percent-encodes a cell key so it survives the space-separated line
/// format (spaces, `%` and control characters are escaped).
fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for b in key.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02X}");
        }
    }
    out
}

fn decode_key(key: &str) -> Option<String> {
    let mut out = Vec::with_capacity(key.len());
    let bytes = key.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_cache_stats(s: &CacheStats) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{}",
        s.accesses,
        s.hits,
        s.misses,
        s.reads,
        s.writes,
        s.read_misses,
        s.write_misses,
        s.evictions,
        s.invalidations,
        s.writebacks
    )
}

fn decode_cache_stats(s: &str) -> Option<CacheStats> {
    let mut it = s.split(',').map(|f| f.parse::<u64>().ok());
    let mut next = || it.next().flatten();
    let stats = CacheStats {
        accesses: next()?,
        hits: next()?,
        misses: next()?,
        reads: next()?,
        writes: next()?,
        read_misses: next()?,
        write_misses: next()?,
        evictions: next()?,
        invalidations: next()?,
        writebacks: next()?,
    };
    it.next().is_none().then_some(stats)
}

/// Serializes a [`ModelStats`] into the journal's one-token payload:
/// `demand|comp;comp;...|extra;extra;...` with names percent-encoded.
fn encode_stats(stats: &ModelStats) -> String {
    let comps: Vec<String> = stats
        .components
        .iter()
        .map(|c| format!("{}:{}", encode_key(&c.name), encode_cache_stats(&c.stats)))
        .collect();
    let extras: Vec<String> = stats
        .extras
        .iter()
        .map(|(n, v)| format!("{}:{}", encode_key(n), v))
        .collect();
    format!(
        "{}|{}|{}",
        encode_cache_stats(&stats.demand),
        comps.join(";"),
        extras.join(";")
    )
}

fn decode_stats(payload: &str) -> Option<ModelStats> {
    let mut parts = payload.split('|');
    let demand = decode_cache_stats(parts.next()?)?;
    let comps = parts.next()?;
    let extras = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let components = comps
        .split(';')
        .filter(|c| !c.is_empty())
        .map(|c| {
            // Split from the right: the stats side never contains ':',
            // while a (decoded) component name may.
            let (name, stats) = c.rsplit_once(':')?;
            Some(ComponentStats {
                name: decode_key(name)?,
                stats: decode_cache_stats(stats)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let extras = extras
        .split(';')
        .filter(|e| !e.is_empty())
        .map(|e| {
            let (name, v) = e.rsplit_once(':')?;
            Some((decode_key(name)?, v.parse().ok()?))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(ModelStats {
        demand,
        components,
        extras,
    })
}

/// A lease on a not-yet-computed cell: which runner promised to
/// compute it, and how many times the promise has changed hands (each
/// stale-lease takeover bumps the generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The runner id that holds the lease.
    pub runner: String,
    /// Monotonic ownership generation, starting at 1.
    pub generation: u64,
}

/// Summary of a journal file's raw line inventory, as read by
/// [`Journal::scan`] without fingerprint authentication — the
/// consistency-checker's view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// The fingerprint stored in the header.
    pub fingerprint: u64,
    /// Valid `cell` lines (raw count; duplicates count each time).
    pub cells: usize,
    /// Valid `claim` lines.
    pub claims: usize,
    /// Non-empty lines that parse as neither — torn tails and corrupt
    /// records.
    pub torn: usize,
}

/// A per-(workload, config) result store with crash-safe persistence.
/// See the [module docs](self) for format and guarantees.
#[derive(Debug, Clone)]
pub struct Journal {
    fingerprint: u64,
    cells: HashMap<String, ModelStats>,
    claims: HashMap<String, Claim>,
}

impl Journal {
    /// An empty journal bound to a workload fingerprint (see
    /// [`fingerprint`]).
    pub fn new(fingerprint: u64) -> Self {
        Journal {
            fingerprint,
            cells: HashMap::new(),
            claims: HashMap::new(),
        }
    }

    /// The workload fingerprint this journal is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The stored result for `key`, if that cell completed earlier.
    pub fn get(&self, key: &str) -> Option<&ModelStats> {
        self.cells.get(key)
    }

    /// All completed cell keys, in arbitrary order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// Records (or overwrites) a completed cell. Any outstanding claim
    /// on the key is fulfilled and dropped.
    pub fn record(&mut self, key: &str, stats: &ModelStats) {
        self.claims.remove(key);
        self.cells.insert(key.to_owned(), stats.clone());
    }

    /// Forgets a completed cell (the consistency checker uses this to
    /// drop cells keyed to traces no longer in the corpus). Returns
    /// whether the cell existed.
    pub fn remove(&mut self, key: &str) -> bool {
        self.cells.remove(key).is_some()
    }

    /// Leases `key` to `runner`, superseding any previous claim, and
    /// returns the new generation (1 for a fresh claim, previous+1 for
    /// a takeover).
    pub fn claim(&mut self, key: &str, runner: &str) -> u64 {
        let generation = self.claims.get(key).map_or(0, |c| c.generation) + 1;
        self.claims.insert(
            key.to_owned(),
            Claim {
                runner: runner.to_owned(),
                generation,
            },
        );
        generation
    }

    /// The outstanding claim on `key`, if any.
    pub fn claim_of(&self, key: &str) -> Option<&Claim> {
        self.claims.get(key)
    }

    /// Drops the claim on `key` without recording a cell (a runner
    /// giving up, or the consistency checker clearing a stale lease).
    /// Returns whether a claim existed.
    pub fn release_claim(&mut self, key: &str) -> bool {
        self.claims.remove(key).is_some()
    }

    /// All outstanding claims, in arbitrary order.
    pub fn claims(&self) -> impl Iterator<Item = (&str, &Claim)> {
        self.claims.iter().map(|(k, c)| (k.as_str(), c))
    }

    /// Loads a journal, verifying its fingerprint against the workload
    /// about to run. A missing file is an empty journal (first run);
    /// checksum-corrupt cell lines (torn writes) are skipped silently.
    ///
    /// Opening also sweeps the save protocol's crash artifact: an
    /// orphaned `<path>.tmp` left by a process that died between
    /// writing the temp file and renaming it is removed, since its
    /// content was never committed.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the file exists but is not a journal, has
    /// an unsupported version, or — the important guard — was recorded
    /// for a *different* workload (fingerprint mismatch).
    pub fn load(path: &Path, fingerprint: u64) -> Result<Journal, Error> {
        let orphan = path.with_extension("journal.tmp");
        if orphan.exists() {
            std::fs::remove_file(&orphan).ok();
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Journal::new(fingerprint))
            }
            Err(e) => {
                return Err(Error::config(format!(
                    "cannot read checkpoint {}: {e}",
                    path.display()
                )))
            }
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let mut fields = header.split(' ');
        if fields.next() != Some(JOURNAL_MAGIC) {
            return Err(Error::config(format!(
                "{} is not a checkpoint journal (bad header)",
                path.display()
            )));
        }
        let version = fields.next().unwrap_or("");
        if version != JOURNAL_VERSION {
            return Err(Error::config(format!(
                "checkpoint {} has unsupported version {version:?} (supported: {JOURNAL_VERSION})",
                path.display()
            )));
        }
        let stored = fields
            .next()
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .ok_or_else(|| {
                Error::config(format!(
                    "checkpoint {} has a malformed fingerprint field",
                    path.display()
                ))
            })?;
        if stored != fingerprint {
            return Err(Error::config(format!(
                "checkpoint {} was recorded for a different workload \
                 (fingerprint {stored:016x}, expected {fingerprint:016x}); \
                 delete it or point --checkpoint elsewhere to start fresh",
                path.display()
            )));
        }
        let mut journal = Journal::new(fingerprint);
        for line in lines {
            // `cell <key> <payload> <crc>` / `claim <key> <runner>
            // <gen> <crc>` — anything that does not parse and verify
            // is a torn/corrupt (or future-format) line: skip it.
            if let Some(rest) = line.strip_prefix("cell ") {
                let Some(body) = checked_body(rest) else {
                    continue;
                };
                let Some((key, payload)) = body.split_once(' ') else {
                    continue;
                };
                let (Some(key), Some(stats)) = (decode_key(key), decode_stats(payload)) else {
                    continue;
                };
                journal.record(&key, &stats);
            } else if let Some(rest) = line.strip_prefix("claim ") {
                let Some(body) = checked_body(rest) else {
                    continue;
                };
                let mut fields = body.split(' ');
                let (Some(key), Some(runner), Some(gen), None) =
                    (fields.next(), fields.next(), fields.next(), fields.next())
                else {
                    continue;
                };
                let (Some(key), Some(runner), Ok(generation)) =
                    (decode_key(key), decode_key(runner), gen.parse::<u64>())
                else {
                    continue;
                };
                journal.claims.insert(key, Claim { runner, generation });
            }
        }
        // A claim fulfilled later in the file (or in a merged past) is
        // no longer outstanding.
        let fulfilled: Vec<String> = journal
            .claims
            .keys()
            .filter(|k| journal.cells.contains_key(*k))
            .cloned()
            .collect();
        for key in fulfilled {
            journal.claims.remove(&key);
        }
        Ok(journal)
    }

    /// Inventories a journal file's lines without authenticating its
    /// fingerprint — the consistency checker's read: how many valid
    /// cells and claims it holds and how many torn/corrupt lines a
    /// rewrite would shed.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the file cannot be read or its header is
    /// not a supported journal header.
    pub fn scan(path: &Path) -> Result<JournalScan, Error> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            Error::config(format!("cannot read checkpoint {}: {e}", path.display()))
        })?;
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let mut fields = header.split(' ');
        if fields.next() != Some(JOURNAL_MAGIC) {
            return Err(Error::config(format!(
                "{} is not a checkpoint journal (bad header)",
                path.display()
            )));
        }
        let version = fields.next().unwrap_or("");
        if version != JOURNAL_VERSION {
            return Err(Error::config(format!(
                "checkpoint {} has unsupported version {version:?} (supported: {JOURNAL_VERSION})",
                path.display()
            )));
        }
        let fingerprint = fields
            .next()
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .ok_or_else(|| {
                Error::config(format!(
                    "checkpoint {} has a malformed fingerprint field",
                    path.display()
                ))
            })?;
        let mut scan = JournalScan {
            fingerprint,
            ..JournalScan::default()
        };
        for line in lines.filter(|l| !l.trim().is_empty()) {
            let ok = if let Some(rest) = line.strip_prefix("cell ") {
                checked_body(rest)
                    .and_then(|b| b.split_once(' '))
                    .and_then(|(k, p)| decode_key(k).and(decode_stats(p)))
                    .is_some()
                    .then(|| scan.cells += 1)
            } else if let Some(rest) = line.strip_prefix("claim ") {
                checked_body(rest).map(|_| scan.claims += 1)
            } else {
                None
            };
            if ok.is_none() {
                scan.torn += 1;
            }
        }
        Ok(scan)
    }

    /// Persists the journal crash-atomically via [`DiskFs`]: temp file,
    /// `fsync`, rename, directory `fsync` — a crash at any step leaves
    /// either the previous journal or this one, never a mix.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] carrying the underlying I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        self.save_with(path, &DiskFs)
    }

    /// [`Journal::save`] through an explicit [`CommitFs`], so tests can
    /// inject crash points and disk-full faults into the commit
    /// sequence.
    ///
    /// Output is canonical: cells sorted by key, then claims sorted by
    /// key — two journals holding the same results are byte-identical
    /// regardless of which runner(s) wrote them.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] carrying the underlying I/O failure.
    pub fn save_with(&self, path: &Path, fs: &dyn CommitFs) -> Result<(), Error> {
        let mut out = format!(
            "{JOURNAL_MAGIC} {JOURNAL_VERSION} {:016x}\n",
            self.fingerprint
        );
        let mut keys: Vec<&String> = self.cells.keys().collect();
        keys.sort();
        for key in keys {
            let body = format!("{} {}", encode_key(key), encode_stats(&self.cells[key]));
            let _ = writeln!(out, "cell {body} {:016x}", fnv64(&body));
        }
        let mut claimed: Vec<&String> = self.claims.keys().collect();
        claimed.sort();
        for key in claimed {
            let c = &self.claims[key];
            let body = format!(
                "{} {} {}",
                encode_key(key),
                encode_key(&c.runner),
                c.generation
            );
            let _ = writeln!(out, "claim {body} {:016x}", fnv64(&body));
        }
        let tmp = path.with_extension("journal.tmp");
        fs.commit_bytes(path, &tmp, out.as_bytes())
            .map_err(|e| Error::config(format!("cannot commit checkpoint {}: {e}", path.display())))
    }
}

/// Validates a journal line's trailing checksum and returns the body it
/// covers.
fn checked_body(rest: &str) -> Option<&str> {
    let mut fields = rest.rsplitn(2, ' ');
    let (crc, body) = (fields.next()?, fields.next()?);
    (u64::from_str_radix(crc, 16) == Ok(fnv64(body))).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::extra;

    fn sample_stats(seed: u64) -> ModelStats {
        let mut demand = CacheStats::new();
        for i in 0..seed + 5 {
            demand.record_read(i % 3 == 0);
            demand.record_write(i % 2 == 0);
        }
        demand.evictions = seed;
        demand.writebacks = seed / 2;
        ModelStats {
            demand,
            components: vec![
                ComponentStats {
                    name: "l1 array".into(),
                    stats: demand,
                },
                ComponentStats {
                    name: "victim".into(),
                    stats: CacheStats::new(),
                },
            ],
            extras: vec![
                extra("holes-created", seed * 3),
                extra("100% weird:name", 7),
            ],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_cells_exactly() {
        let dir = temp_dir("rt");
        let path = dir.join("j");
        let mut j = Journal::new(fingerprint(&["swim", "1000000", "42"]));
        j.record("a2-Hp-Sk@00ff", &sample_stats(3));
        j.record("modulo@1234", &sample_stats(9));
        j.record("name with spaces@x", &sample_stats(1));
        j.save(&path).unwrap();

        let back = Journal::load(&path, j.fingerprint()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("a2-Hp-Sk@00ff"), Some(&sample_stats(3)));
        assert_eq!(back.get("modulo@1234"), Some(&sample_stats(9)));
        assert_eq!(back.get("name with spaces@x"), Some(&sample_stats(1)));
        assert_eq!(back.get("missing"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let dir = temp_dir("missing");
        let j = Journal::load(&dir.join("nope"), 5).unwrap();
        assert!(j.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = temp_dir("fp");
        let path = dir.join("j");
        Journal::new(0xAAAA).save(&path).unwrap();
        let err = Journal::load(&path, 0xBBBB).unwrap_err().to_string();
        assert!(err.contains("different workload"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = temp_dir("foreign");
        let path = dir.join("j");
        std::fs::write(&path, "just some text\n").unwrap();
        assert!(Journal::load(&path, 0).is_err());
        std::fs::write(&path, "CACJ v9 0000000000000000\n").unwrap();
        let err = Journal::load(&path, 0).unwrap_err().to_string();
        assert!(err.contains("unsupported version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let dir = temp_dir("torn");
        let path = dir.join("j");
        let mut j = Journal::new(77);
        j.record("good", &sample_stats(2));
        j.record("tail", &sample_stats(4));
        j.save(&path).unwrap();
        // Simulate a crash mid-append: cut the last line short.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();

        let back = Journal::load(&path, 77).unwrap();
        assert_eq!(back.get("good"), Some(&sample_stats(2)));
        assert_eq!(back.get("tail"), None, "torn line must not resurrect");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_duplicate_wins() {
        let dir = temp_dir("dup");
        let path = dir.join("j");
        let mut j = Journal::new(1);
        j.record("k", &sample_stats(1));
        j.record("k", &sample_stats(8));
        assert_eq!(j.len(), 1);
        j.save(&path).unwrap();
        let back = Journal::load(&path, 1).unwrap();
        assert_eq!(back.get("k"), Some(&sample_stats(8)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_over_existing_journals() {
        let dir = temp_dir("atomic");
        let path = dir.join("j");
        let mut j = Journal::new(3);
        j.record("a", &sample_stats(1));
        j.save(&path).unwrap();
        j.record("b", &sample_stats(2));
        j.save(&path).unwrap();
        let back = Journal::load(&path, 3).unwrap();
        assert_eq!(back.len(), 2);
        assert!(!path.with_extension("journal.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_sweeps_orphaned_temp_files() {
        let dir = temp_dir("orphan");
        let path = dir.join("results.journal");
        let mut j = Journal::new(11);
        j.record("a", &sample_stats(1));
        j.save(&path).unwrap();
        // A process that died between write and rename leaves this.
        let orphan = path.with_extension("journal.tmp");
        std::fs::write(&orphan, "CACJ v1 000000000000000b\ncell half-writ").unwrap();

        let back = Journal::load(&path, 11).unwrap();
        assert_eq!(back.len(), 1, "committed journal is untouched");
        assert!(!orphan.exists(), "orphaned temp file swept on open");

        // Even a first run (no journal yet) sweeps the orphan.
        std::fs::remove_file(&path).unwrap();
        std::fs::write(&orphan, "junk").unwrap();
        assert!(Journal::load(&path, 11).unwrap().is_empty());
        assert!(!orphan.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saves_are_canonical_regardless_of_insertion_order() {
        let dir = temp_dir("canon");
        let (pa, pb) = (dir.join("a"), dir.join("b"));
        let mut fwd = Journal::new(4);
        fwd.record("alpha", &sample_stats(1));
        fwd.record("beta", &sample_stats(2));
        let mut rev = Journal::new(4);
        rev.record("beta", &sample_stats(2));
        rev.record("alpha", &sample_stats(1));
        fwd.save(&pa).unwrap();
        rev.save(&pb).unwrap();
        assert_eq!(
            std::fs::read(&pa).unwrap(),
            std::fs::read(&pb).unwrap(),
            "same cells => byte-identical file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claims_round_trip_and_are_fulfilled_by_record() {
        let dir = temp_dir("claims");
        let path = dir.join("j");
        let mut j = Journal::new(9);
        assert_eq!(j.claim("cell key", "runner one"), 1);
        assert_eq!(j.claim("other", "runner-2"), 1);
        assert_eq!(j.claim("other", "runner-3"), 2, "takeover bumps gen");
        j.record("done", &sample_stats(5));
        j.save(&path).unwrap();

        let back = Journal::load(&path, 9).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.claim_of("cell key"),
            Some(&Claim {
                runner: "runner one".into(),
                generation: 1
            })
        );
        assert_eq!(back.claim_of("other").unwrap().generation, 2);
        assert_eq!(back.claims().count(), 2);

        // Recording the cell fulfils (drops) the claim, durably.
        let mut back = back;
        back.record("cell key", &sample_stats(6));
        assert!(back.claim_of("cell key").is_none());
        back.save(&path).unwrap();
        let mut final_ = Journal::load(&path, 9).unwrap();
        assert!(final_.claim_of("cell key").is_none());
        assert!(final_.get("cell key").is_some());
        assert!(final_.release_claim("other"));
        assert!(!final_.release_claim("other2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_loaders_skip_claim_lines() {
        // Claim lines must not break the v1 cell parser: a journal with
        // only claims loads as empty cells under the same version.
        let dir = temp_dir("skippable");
        let path = dir.join("j");
        let mut j = Journal::new(2);
        j.claim("k", "r");
        j.record("c", &sample_stats(1));
        j.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("CACJ v1 "), "format version unchanged");
        assert!(text.lines().any(|l| l.starts_with("claim ")));
        // A reader that only understands `cell ` lines sees the cell.
        let cells = text.lines().filter(|l| l.starts_with("cell ")).count();
        assert_eq!(cells, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_inventories_without_fingerprint_auth() {
        let dir = temp_dir("scan");
        let path = dir.join("j");
        let mut j = Journal::new(0xFEED);
        j.record("a", &sample_stats(1));
        j.record("b", &sample_stats(2));
        j.claim("c", "r1");
        j.save(&path).unwrap();
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.fingerprint, 0xFEED);
        assert_eq!(scan.cells, 2);
        assert_eq!(scan.claims, 1);
        assert_eq!(scan.torn, 0);

        // Tear the tail: the scan counts it, a rewrite sheds it.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.trim_end().len() - 8]).unwrap();
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.torn, 1);
        let reloaded = Journal::load(&path, 0xFEED).unwrap();
        reloaded.save(&path).unwrap();
        assert_eq!(Journal::scan(&path).unwrap().torn, 0);

        assert!(Journal::scan(&dir.join("missing")).is_err());
        std::fs::write(dir.join("alien"), "hello\n").unwrap();
        assert!(Journal::scan(&dir.join("alien")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_under_injected_crash_preserves_old_journal() {
        use cac_trace::io::commitfs::{FaultFs, FaultPlan};
        let dir = temp_dir("crashsave");
        let path = dir.join("j");
        let mut j = Journal::new(6);
        j.record("old", &sample_stats(1));
        j.save(&path).unwrap();
        j.record("new", &sample_stats(2));
        // Crash between temp write and rename: old journal survives and
        // the orphaned temp is swept by the next load.
        let fs = FaultFs::new(FaultPlan {
            crash_after_ops: Some(1),
            ..FaultPlan::default()
        });
        assert!(j.save_with(&path, &fs).is_err());
        let back = Journal::load(&path, 6).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.get("old").is_some());
        assert!(!path.with_extension("journal.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

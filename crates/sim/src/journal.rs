//! Crash-safe checkpoint journal for long sweeps.
//!
//! The ROADMAP's service north star replays fleets of traces across a
//! config grid — hours of work that a killed process must not throw
//! away. This module persists per-(workload, config) [`ModelStats`]
//! cells so a restarted run recomputes only the missing cells:
//!
//! * **Append-only text format.** The file opens with a header line
//!   `CACJ v1 <fingerprint>` binding the journal to one workload (see
//!   below), followed by one `cell <key> <payload> <checksum>` line per
//!   completed cell. Later duplicates of a key win, so re-recording a
//!   cell is harmless.
//! * **Checksummed lines.** Every cell line carries an FNV-64 checksum
//!   of its content; a torn final line (the typical crash artifact) is
//!   skipped on load instead of poisoning the journal.
//! * **Atomic save.** [`Journal::save`] writes a temp file next to the
//!   target and `rename`s it into place, so a crash mid-save leaves
//!   the previous journal intact.
//! * **Fingerprint binding.** The header fingerprint hashes the
//!   workload identity (trace path + size, or synthetic bench + ops +
//!   seed). [`Journal::load`] refuses a journal whose fingerprint does
//!   not match the workload being resumed — stale checkpoints fail
//!   loudly instead of splicing mismatched results into a report.
//!
//! Cell *keys* are chosen by the caller; the drivers use
//! `<config-name>@<config-content-hash>` so editing a config file
//! invalidates exactly that config's cell.
//!
//! # Example
//!
//! ```
//! use cac_sim::journal::Journal;
//! use cac_sim::model::ModelStats;
//!
//! let dir = std::env::temp_dir().join(format!("cac-journal-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("sweep.journal");
//!
//! let mut j = Journal::new(0xABCD);
//! j.record("cfg-a", &ModelStats::default());
//! j.save(&path)?;
//!
//! let resumed = Journal::load(&path, 0xABCD)?;
//! assert!(resumed.get("cfg-a").is_some());
//! assert!(resumed.get("cfg-b").is_none());
//! assert!(Journal::load(&path, 0x9999).is_err()); // stale fingerprint
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::model::{ComponentStats, ModelStats};
use crate::stats::CacheStats;
use cac_core::Error;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Magic word opening a journal file.
const JOURNAL_MAGIC: &str = "CACJ";
/// Journal format version.
const JOURNAL_VERSION: &str = "v1";

/// FNV-1a over a string, for line checksums and fingerprints.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a workload description into a journal fingerprint. Callers
/// feed the parts that define workload identity (trace path and size,
/// or bench name, op count and seed).
pub fn fingerprint(parts: &[&str]) -> u64 {
    fnv64(&parts.join("\u{1f}"))
}

/// Percent-encodes a cell key so it survives the space-separated line
/// format (spaces, `%` and control characters are escaped).
fn encode_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for b in key.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02X}");
        }
    }
    out
}

fn decode_key(key: &str) -> Option<String> {
    let mut out = Vec::with_capacity(key.len());
    let bytes = key.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_cache_stats(s: &CacheStats) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{}",
        s.accesses,
        s.hits,
        s.misses,
        s.reads,
        s.writes,
        s.read_misses,
        s.write_misses,
        s.evictions,
        s.invalidations,
        s.writebacks
    )
}

fn decode_cache_stats(s: &str) -> Option<CacheStats> {
    let mut it = s.split(',').map(|f| f.parse::<u64>().ok());
    let mut next = || it.next().flatten();
    let stats = CacheStats {
        accesses: next()?,
        hits: next()?,
        misses: next()?,
        reads: next()?,
        writes: next()?,
        read_misses: next()?,
        write_misses: next()?,
        evictions: next()?,
        invalidations: next()?,
        writebacks: next()?,
    };
    it.next().is_none().then_some(stats)
}

/// Serializes a [`ModelStats`] into the journal's one-token payload:
/// `demand|comp;comp;...|extra;extra;...` with names percent-encoded.
fn encode_stats(stats: &ModelStats) -> String {
    let comps: Vec<String> = stats
        .components
        .iter()
        .map(|c| format!("{}:{}", encode_key(&c.name), encode_cache_stats(&c.stats)))
        .collect();
    let extras: Vec<String> = stats
        .extras
        .iter()
        .map(|(n, v)| format!("{}:{}", encode_key(n), v))
        .collect();
    format!(
        "{}|{}|{}",
        encode_cache_stats(&stats.demand),
        comps.join(";"),
        extras.join(";")
    )
}

fn decode_stats(payload: &str) -> Option<ModelStats> {
    let mut parts = payload.split('|');
    let demand = decode_cache_stats(parts.next()?)?;
    let comps = parts.next()?;
    let extras = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let components = comps
        .split(';')
        .filter(|c| !c.is_empty())
        .map(|c| {
            // Split from the right: the stats side never contains ':',
            // while a (decoded) component name may.
            let (name, stats) = c.rsplit_once(':')?;
            Some(ComponentStats {
                name: decode_key(name)?,
                stats: decode_cache_stats(stats)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let extras = extras
        .split(';')
        .filter(|e| !e.is_empty())
        .map(|e| {
            let (name, v) = e.rsplit_once(':')?;
            Some((decode_key(name)?, v.parse().ok()?))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(ModelStats {
        demand,
        components,
        extras,
    })
}

/// A per-(workload, config) result store with crash-safe persistence.
/// See the [module docs](self) for format and guarantees.
#[derive(Debug, Clone)]
pub struct Journal {
    fingerprint: u64,
    /// Insertion-ordered keys (latest record of a key wins on load).
    order: Vec<String>,
    cells: HashMap<String, ModelStats>,
}

impl Journal {
    /// An empty journal bound to a workload fingerprint (see
    /// [`fingerprint`]).
    pub fn new(fingerprint: u64) -> Self {
        Journal {
            fingerprint,
            order: Vec::new(),
            cells: HashMap::new(),
        }
    }

    /// The workload fingerprint this journal is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The stored result for `key`, if that cell completed earlier.
    pub fn get(&self, key: &str) -> Option<&ModelStats> {
        self.cells.get(key)
    }

    /// Records (or overwrites) a completed cell.
    pub fn record(&mut self, key: &str, stats: &ModelStats) {
        if !self.cells.contains_key(key) {
            self.order.push(key.to_owned());
        }
        self.cells.insert(key.to_owned(), stats.clone());
    }

    /// Loads a journal, verifying its fingerprint against the workload
    /// about to run. A missing file is an empty journal (first run);
    /// checksum-corrupt cell lines (torn writes) are skipped silently.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the file exists but is not a journal, has
    /// an unsupported version, or — the important guard — was recorded
    /// for a *different* workload (fingerprint mismatch).
    pub fn load(path: &Path, fingerprint: u64) -> Result<Journal, Error> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Journal::new(fingerprint))
            }
            Err(e) => {
                return Err(Error::config(format!(
                    "cannot read checkpoint {}: {e}",
                    path.display()
                )))
            }
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let mut fields = header.split(' ');
        if fields.next() != Some(JOURNAL_MAGIC) {
            return Err(Error::config(format!(
                "{} is not a checkpoint journal (bad header)",
                path.display()
            )));
        }
        let version = fields.next().unwrap_or("");
        if version != JOURNAL_VERSION {
            return Err(Error::config(format!(
                "checkpoint {} has unsupported version {version:?} (supported: {JOURNAL_VERSION})",
                path.display()
            )));
        }
        let stored = fields
            .next()
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .ok_or_else(|| {
                Error::config(format!(
                    "checkpoint {} has a malformed fingerprint field",
                    path.display()
                ))
            })?;
        if stored != fingerprint {
            return Err(Error::config(format!(
                "checkpoint {} was recorded for a different workload \
                 (fingerprint {stored:016x}, expected {fingerprint:016x}); \
                 delete it or point --checkpoint elsewhere to start fresh",
                path.display()
            )));
        }
        let mut journal = Journal::new(fingerprint);
        for line in lines {
            // `cell <key> <payload> <crc>` — anything that does not
            // parse and verify is a torn/corrupt line: skip it.
            let Some(rest) = line.strip_prefix("cell ") else {
                continue;
            };
            let mut fields = rest.rsplitn(2, ' ');
            let (Some(crc), Some(body)) = (fields.next(), fields.next()) else {
                continue;
            };
            if u64::from_str_radix(crc, 16) != Ok(fnv64(body)) {
                continue;
            }
            let Some((key, payload)) = body.split_once(' ') else {
                continue;
            };
            let (Some(key), Some(stats)) = (decode_key(key), decode_stats(payload)) else {
                continue;
            };
            journal.record(&key, &stats);
        }
        Ok(journal)
    }

    /// Persists the journal atomically: the content is written to a
    /// sibling temp file and renamed over `path`, so a crash mid-save
    /// cannot leave a half-written journal.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] carrying the underlying I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        let mut out = format!(
            "{JOURNAL_MAGIC} {JOURNAL_VERSION} {:016x}\n",
            self.fingerprint
        );
        for key in &self.order {
            let stats = &self.cells[key];
            let body = format!("{} {}", encode_key(key), encode_stats(stats));
            let _ = writeln!(out, "cell {body} {:016x}", fnv64(&body));
        }
        let io_err = |what: &str, e: std::io::Error| {
            Error::config(format!("cannot {what} checkpoint {}: {e}", path.display()))
        };
        let tmp = path.with_extension("journal.tmp");
        std::fs::write(&tmp, &out).map_err(|e| io_err("write", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err("commit", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::extra;

    fn sample_stats(seed: u64) -> ModelStats {
        let mut demand = CacheStats::new();
        for i in 0..seed + 5 {
            demand.record_read(i % 3 == 0);
            demand.record_write(i % 2 == 0);
        }
        demand.evictions = seed;
        demand.writebacks = seed / 2;
        ModelStats {
            demand,
            components: vec![
                ComponentStats {
                    name: "l1 array".into(),
                    stats: demand,
                },
                ComponentStats {
                    name: "victim".into(),
                    stats: CacheStats::new(),
                },
            ],
            extras: vec![
                extra("holes-created", seed * 3),
                extra("100% weird:name", 7),
            ],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_cells_exactly() {
        let dir = temp_dir("rt");
        let path = dir.join("j");
        let mut j = Journal::new(fingerprint(&["swim", "1000000", "42"]));
        j.record("a2-Hp-Sk@00ff", &sample_stats(3));
        j.record("modulo@1234", &sample_stats(9));
        j.record("name with spaces@x", &sample_stats(1));
        j.save(&path).unwrap();

        let back = Journal::load(&path, j.fingerprint()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("a2-Hp-Sk@00ff"), Some(&sample_stats(3)));
        assert_eq!(back.get("modulo@1234"), Some(&sample_stats(9)));
        assert_eq!(back.get("name with spaces@x"), Some(&sample_stats(1)));
        assert_eq!(back.get("missing"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let dir = temp_dir("missing");
        let j = Journal::load(&dir.join("nope"), 5).unwrap();
        assert!(j.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = temp_dir("fp");
        let path = dir.join("j");
        Journal::new(0xAAAA).save(&path).unwrap();
        let err = Journal::load(&path, 0xBBBB).unwrap_err().to_string();
        assert!(err.contains("different workload"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = temp_dir("foreign");
        let path = dir.join("j");
        std::fs::write(&path, "just some text\n").unwrap();
        assert!(Journal::load(&path, 0).is_err());
        std::fs::write(&path, "CACJ v9 0000000000000000\n").unwrap();
        let err = Journal::load(&path, 0).unwrap_err().to_string();
        assert!(err.contains("unsupported version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let dir = temp_dir("torn");
        let path = dir.join("j");
        let mut j = Journal::new(77);
        j.record("good", &sample_stats(2));
        j.record("tail", &sample_stats(4));
        j.save(&path).unwrap();
        // Simulate a crash mid-append: cut the last line short.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();

        let back = Journal::load(&path, 77).unwrap();
        assert_eq!(back.get("good"), Some(&sample_stats(2)));
        assert_eq!(back.get("tail"), None, "torn line must not resurrect");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_duplicate_wins() {
        let dir = temp_dir("dup");
        let path = dir.join("j");
        let mut j = Journal::new(1);
        j.record("k", &sample_stats(1));
        j.record("k", &sample_stats(8));
        assert_eq!(j.len(), 1);
        j.save(&path).unwrap();
        let back = Journal::load(&path, 1).unwrap();
        assert_eq!(back.get("k"), Some(&sample_stats(8)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_over_existing_journals() {
        let dir = temp_dir("atomic");
        let path = dir.join("j");
        let mut j = Journal::new(3);
        j.record("a", &sample_stats(1));
        j.save(&path).unwrap();
        j.record("b", &sample_stats(2));
        j.save(&path).unwrap();
        let back = Journal::load(&path, 3).unwrap();
        assert_eq!(back.len(), 2);
        assert!(!path.with_extension("journal.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

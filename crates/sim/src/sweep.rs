//! Multi-configuration sweep engine: decode the reference stream
//! **once**, drive every model from it.
//!
//! Every headline experiment of the paper is a *sweep* — the same
//! reference stream replayed against a matrix of cache configurations
//! (the Figure 1 stride sweep, the §2.1 organization comparison, the
//! miss-ratio tables). Replaying each configuration independently pays
//! the trace cost (synthetic generation, varint decode, text parsing)
//! once **per configuration**: O(configs × refs) work for what is one
//! pass over the data. This module provides the two engines that
//! collapse it to O(refs + configs × accesses):
//!
//! * [`Sweep`] — a chunk-broadcast replay engine. One producer refills
//!   reusable reference chunks from a [`RefSource`] (a binary trace, a
//!   text trace, a synthetic workload iterator) or walks an in-memory
//!   slice, and each worker thread owns a *shard* of the model set, so
//!   models stay cache-resident with their worker while a chunk is
//!   replayed against all of them. Counters are byte-identical to
//!   running each model alone (`crates/sim/tests/sweep_equivalence.rs`).
//! * [`LruStackSweep`] — an exact one-pass **Mattson stack-distance**
//!   engine for the LRU / modulus-indexed cache family: a single
//!   traversal maintains per-set reuse stacks and a distance histogram,
//!   from which the miss count of *every* size × associativity of a
//!   given line size is read off exactly — dozens of independent
//!   replays become one traversal. An optional 1-in-K set-sampling mode
//!   trades exactness for a further K× cost reduction on giant sweeps.
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::cache::Cache;
//! use cac_sim::model::MemoryModel;
//! use cac_sim::sweep::sweep_refs;
//! use cac_trace::stride::VectorStride;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! // Figure 1, one stride, all four placement schemes — one pass.
//! let refs: Vec<_> = VectorStride::paper_figure1(512, 16).collect();
//! let mut models: Vec<Box<dyn MemoryModel>> = [
//!     IndexSpec::modulo(),
//!     IndexSpec::xor_skewed(),
//!     IndexSpec::ipoly(),
//!     IndexSpec::ipoly_skewed(),
//! ]
//! .into_iter()
//! .map(|s| Ok(Box::new(Cache::build(geom, s)?) as Box<dyn MemoryModel>))
//! .collect::<Result<_, cac_core::Error>>()?;
//! let stats = sweep_refs(&mut models, &refs);
//! // The pathological stride thrashes modulo placement; skewed I-Poly
//! // sees only the 64 compulsory misses.
//! assert!(stats[0].demand.miss_ratio() > 0.9);
//! assert_eq!(stats[3].demand.misses, 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::model::{MemoryModel, ModelStats};
use cac_core::Error;
use cac_trace::io::{RefSource, DEFAULT_CHUNK_OPS};
use cac_trace::MemRef;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Per-model result of an *isolated* sweep
/// ([`Sweep::run_refs_isolated`] / [`Sweep::run_source_isolated`]):
/// either the model's counter delta, or the reason its replay panicked.
///
/// A failed model is quarantined from the first panic on — it sees no
/// further references — and its partial counters are discarded; sibling
/// models in the same sweep (even the same worker shard) are unaffected
/// and their results are byte-identical to a sweep without the failed
/// model present.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelOutcome {
    /// The model replayed the whole stream; its counter delta.
    Completed(ModelStats),
    /// The model panicked; replay of *this model only* was abandoned.
    Failed {
        /// The panic payload (or a placeholder for non-string panics).
        reason: String,
    },
    /// The sweep's [`SweepBudget`] tripped before the stream ended;
    /// replay of the whole sweep was abandoned and this model's partial
    /// counters were discarded (a partial miss count is not an estimate
    /// of anything — callers should re-price the cell analytically).
    Cancelled {
        /// References broadcast before the budget tripped.
        refs_replayed: u64,
    },
}

impl ModelOutcome {
    /// The stats delta, if the model completed.
    pub fn stats(&self) -> Option<&ModelStats> {
        match self {
            ModelOutcome::Completed(s) => Some(s),
            ModelOutcome::Failed { .. } | ModelOutcome::Cancelled { .. } => None,
        }
    }

    /// True if the model panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, ModelOutcome::Failed { .. })
    }

    /// True if the sweep's budget tripped before the stream ended.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ModelOutcome::Cancelled { .. })
    }

    /// The failure reason, if the model panicked.
    pub fn failure(&self) -> Option<&str> {
        match self {
            ModelOutcome::Completed(_) | ModelOutcome::Cancelled { .. } => None,
            ModelOutcome::Failed { reason } => Some(reason),
        }
    }
}

/// A replay budget for the panic-isolated sweep entry points, checked
/// at chunk boundaries by the producer (a record-count watchdog — no
/// signals, no threads killed mid-access).
///
/// When the budget trips, the producer stops feeding references and
/// every not-yet-poisoned model reports [`ModelOutcome::Cancelled`]
/// with its partial counters discarded. A stream that ends before the
/// budget trips is a normal completion.
///
/// * `max_refs` is **deterministic**: the trip point depends only on
///   the stream and the chunk size, so reruns cancel at the same
///   reference count (the budget may overshoot by at most one chunk).
/// * `max_secs` is wall-clock and therefore machine-dependent; use it
///   as a backstop, not for reproducible experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepBudget {
    /// Cancel once this many references have been broadcast.
    pub max_refs: Option<u64>,
    /// Cancel once this much wall-clock time has elapsed.
    pub max_secs: Option<f64>,
}

impl SweepBudget {
    /// No budget: sweeps run to stream exhaustion.
    pub fn unlimited() -> Self {
        SweepBudget::default()
    }

    /// A deterministic reference-count budget.
    pub fn refs(max: u64) -> Self {
        SweepBudget {
            max_refs: Some(max),
            max_secs: None,
        }
    }

    /// A wall-clock budget (machine-dependent; see type docs).
    pub fn secs(max: f64) -> Self {
        SweepBudget {
            max_refs: None,
            max_secs: Some(max),
        }
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_refs.is_none() && self.max_secs.is_none()
    }

    fn exceeded(&self, fed: u64, started: Instant) -> bool {
        if self.max_refs.is_some_and(|max| fed >= max) {
            return true;
        }
        self.max_secs
            .is_some_and(|max| started.elapsed().as_secs_f64() >= max)
    }
}

/// Renders a caught panic payload as a failure reason.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_owned()
    }
}

/// Replays `chunk` against every not-yet-poisoned model of a shard,
/// catching panics and quarantining the panicking model.
fn replay_isolated(
    shard: &mut [Box<dyn MemoryModel>],
    poisoned: &mut [Option<String>],
    chunk: &[MemRef],
) {
    for (m, poison) in shard.iter_mut().zip(poisoned.iter_mut()) {
        if poison.is_some() {
            continue;
        }
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| {
            m.run_refs(chunk);
        })) {
            *poison = Some(panic_reason(payload));
        }
    }
}

/// Multi-model replay engine configuration (builder style).
///
/// `workers = 0` (the default) uses the machine's available
/// parallelism; `workers = 1` runs inline on the calling thread with no
/// thread-spawn cost at all — the right choice when the caller already
/// parallelises across sweep items (as `cac fig1` does across strides).
#[derive(Debug, Clone)]
pub struct Sweep {
    workers: usize,
    chunk_ops: usize,
    budget: SweepBudget,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

impl Sweep {
    /// Engine with default chunking ([`DEFAULT_CHUNK_OPS`]) and
    /// auto-detected worker count.
    pub fn new() -> Self {
        Sweep {
            workers: 0,
            chunk_ops: DEFAULT_CHUNK_OPS,
            budget: SweepBudget::unlimited(),
        }
    }

    /// Sets the worker-thread count (`0` = available parallelism,
    /// `1` = run inline on the calling thread).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the reference-chunk length. Chunks should fit the host L2
    /// so the replay of model *i + 1* finds the chunk still resident.
    #[must_use]
    pub fn chunk_ops(mut self, chunk_ops: usize) -> Self {
        self.chunk_ops = chunk_ops.max(1);
        self
    }

    /// Sets the replay budget, honored by the *isolated* entry points
    /// ([`Sweep::run_refs_isolated`] / [`Sweep::run_source_isolated`]);
    /// the non-isolated paths have no outcome channel to report a
    /// cancellation through and ignore it.
    #[must_use]
    pub fn budget(mut self, budget: SweepBudget) -> Self {
        self.budget = budget;
        self
    }

    fn effective_workers(&self, models: usize) -> usize {
        let auto = if self.workers == 0 {
            thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        auto.min(models).max(1)
    }

    /// Replays an in-memory reference slice against every model, with
    /// the model set sharded across worker threads. Replay is
    /// chunk-interleaved *within each shard* — every model of a shard
    /// sees chunk *c* before any of them sees chunk *c + 1*, so the
    /// chunk stays cache-resident across that shard's models (shards
    /// advance through the slice independently of each other).
    ///
    /// Returns one per-model counter delta (`stats after - before`), in
    /// model order — exactly what `models[i].run_refs(refs)` alone
    /// would have returned.
    pub fn run_refs(
        &self,
        models: &mut [Box<dyn MemoryModel>],
        refs: &[MemRef],
    ) -> Vec<ModelStats> {
        let before: Vec<ModelStats> = models.iter().map(|m| m.stats()).collect();
        let workers = self.effective_workers(models.len());
        if workers <= 1 {
            for chunk in refs.chunks(self.chunk_ops) {
                for m in models.iter_mut() {
                    m.run_refs(chunk);
                }
            }
        } else {
            let shard = models.len().div_ceil(workers);
            thread::scope(|s| {
                for shard in models.chunks_mut(shard) {
                    s.spawn(move || {
                        for chunk in refs.chunks(self.chunk_ops) {
                            for m in shard.iter_mut() {
                                m.run_refs(chunk);
                            }
                        }
                    });
                }
            });
        }
        models
            .iter()
            .zip(before)
            .map(|(m, b)| m.stats() - b)
            .collect()
    }

    /// Streams a [`RefSource`] through every model: the source is
    /// decoded **once** into reusable chunks that are broadcast to the
    /// worker threads, each of which owns a shard of the model set.
    ///
    /// Returns per-model counter deltas as [`Sweep::run_refs`] does.
    ///
    /// # Errors
    ///
    /// Propagates the source's decode/read errors. References broadcast
    /// before the error remain applied to every model (and their
    /// counters are included in the returned deltas).
    pub fn run_source<S: RefSource>(
        &self,
        models: &mut [Box<dyn MemoryModel>],
        mut source: S,
    ) -> Result<Vec<ModelStats>, S::Error> {
        let before: Vec<ModelStats> = models.iter().map(|m| m.stats()).collect();
        let workers = self.effective_workers(models.len());
        let mut result = Ok(());
        if workers <= 1 {
            let mut buf = Vec::with_capacity(self.chunk_ops);
            loop {
                match source.read_ref_chunk(&mut buf, self.chunk_ops) {
                    Ok(0) => break,
                    Ok(_) => {
                        for m in models.iter_mut() {
                            m.run_refs(&buf);
                        }
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        } else {
            let shard = models.len().div_ceil(workers);
            result = thread::scope(|s| {
                // Bounded broadcast: each worker gets its own queue of
                // Arc'd chunks; the bound keeps a slow shard from
                // letting chunks pile up unboundedly.
                let mut senders = Vec::new();
                for shard in models.chunks_mut(shard) {
                    let (tx, rx) = mpsc::sync_channel::<Arc<Vec<MemRef>>>(2);
                    senders.push(tx);
                    s.spawn(move || {
                        for chunk in rx.iter() {
                            for m in shard.iter_mut() {
                                m.run_refs(&chunk);
                            }
                        }
                    });
                }
                // Producer (this thread): refill a recycled buffer,
                // broadcast it, reclaim buffers all workers are done
                // with. `strong_count == 1` means only the producer's
                // own handle is left, so the buffer can be reused
                // without copying.
                let mut in_flight: VecDeque<Arc<Vec<MemRef>>> = VecDeque::new();
                loop {
                    let recyclable = in_flight.front().is_some_and(|a| Arc::strong_count(a) == 1);
                    let mut buf = if recyclable {
                        Arc::try_unwrap(in_flight.pop_front().expect("checked"))
                            .expect("sole owner")
                    } else {
                        Vec::with_capacity(self.chunk_ops)
                    };
                    match source.read_ref_chunk(&mut buf, self.chunk_ops) {
                        Ok(0) => return Ok(()),
                        Ok(_) => {
                            let chunk = Arc::new(buf);
                            for tx in &senders {
                                // A receiver only disappears if its
                                // worker panicked; the panic resurfaces
                                // when the scope joins, so the drop is
                                // ignored here.
                                let _ = tx.send(chunk.clone());
                            }
                            in_flight.push_back(chunk);
                        }
                        Err(e) => return Err(e),
                    }
                }
                // Senders drop here; workers drain their queues and
                // exit, then the scope joins them.
            });
        }
        let after: Vec<ModelStats> = models
            .iter()
            .zip(before)
            .map(|(m, b)| m.stats() - b)
            .collect();
        result.map(|()| after)
    }

    /// Panic-isolated [`Sweep::run_refs`]: each model's replay is
    /// wrapped in [`std::panic::catch_unwind`], so one poisoned
    /// configuration yields a [`ModelOutcome::Failed`] row instead of
    /// tearing down the whole sweep. Completed models' deltas are
    /// byte-identical to a non-isolated sweep.
    pub fn run_refs_isolated(
        &self,
        models: &mut [Box<dyn MemoryModel>],
        refs: &[MemRef],
    ) -> Vec<ModelOutcome> {
        // A budgeted sweep needs the streaming watchdog (shards of the
        // slice path advance independently, so there is no single place
        // to trip a budget); the wrap costs one copy per chunk.
        if !self.budget.is_unlimited() {
            use cac_trace::io::IterRefSource;
            return match self.run_source_isolated(models, IterRefSource::new(refs.iter().copied()))
            {
                Ok(outcomes) => outcomes,
                Err(never) => match never {},
            };
        }
        let before: Vec<ModelStats> = models.iter().map(|m| m.stats()).collect();
        let workers = self.effective_workers(models.len());
        let mut poisoned: Vec<Option<String>> = vec![None; models.len()];
        if workers <= 1 {
            for chunk in refs.chunks(self.chunk_ops) {
                replay_isolated(models, &mut poisoned, chunk);
            }
        } else {
            let shard = models.len().div_ceil(workers);
            thread::scope(|s| {
                for (shard, poison) in models.chunks_mut(shard).zip(poisoned.chunks_mut(shard)) {
                    s.spawn(move || {
                        for chunk in refs.chunks(self.chunk_ops) {
                            replay_isolated(shard, poison, chunk);
                        }
                    });
                }
            });
        }
        collect_outcomes(models, before, poisoned, None)
    }

    /// Panic-isolated [`Sweep::run_source`]: streams the source once,
    /// catching per-model panics as [`ModelOutcome::Failed`] rows. When
    /// a [`SweepBudget`] is set, the producer checks it at every chunk
    /// boundary and cancels the whole sweep
    /// ([`ModelOutcome::Cancelled`]) once it trips.
    ///
    /// # Errors
    ///
    /// Propagates the source's decode/read errors (model panics are
    /// *not* errors — they surface as `Failed` outcomes).
    pub fn run_source_isolated<S: RefSource>(
        &self,
        models: &mut [Box<dyn MemoryModel>],
        mut source: S,
    ) -> Result<Vec<ModelOutcome>, S::Error> {
        let before: Vec<ModelStats> = models.iter().map(|m| m.stats()).collect();
        let workers = self.effective_workers(models.len());
        let mut poisoned: Vec<Option<String>> = vec![None; models.len()];
        let started = Instant::now();
        let mut fed: u64 = 0;
        let mut cancelled = false;
        let mut result = Ok(());
        if workers <= 1 {
            let mut buf = Vec::with_capacity(self.chunk_ops);
            loop {
                match source.read_ref_chunk(&mut buf, self.chunk_ops) {
                    Ok(0) => break,
                    Ok(n) => {
                        // Budget check *after* a successful read, so a
                        // stream that ends exactly at the budget is a
                        // normal completion, not a cancellation.
                        if self.budget.exceeded(fed, started) {
                            cancelled = true;
                            break;
                        }
                        replay_isolated(models, &mut poisoned, &buf);
                        fed += n as u64;
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        } else {
            let shard = models.len().div_ceil(workers);
            result = thread::scope(|s| {
                let mut senders = Vec::new();
                for (shard, poison) in models.chunks_mut(shard).zip(poisoned.chunks_mut(shard)) {
                    let (tx, rx) = mpsc::sync_channel::<Arc<Vec<MemRef>>>(2);
                    senders.push(tx);
                    s.spawn(move || {
                        for chunk in rx.iter() {
                            replay_isolated(shard, poison, &chunk);
                        }
                    });
                }
                let mut in_flight: VecDeque<Arc<Vec<MemRef>>> = VecDeque::new();
                loop {
                    let recyclable = in_flight.front().is_some_and(|a| Arc::strong_count(a) == 1);
                    let mut buf = if recyclable {
                        Arc::try_unwrap(in_flight.pop_front().expect("checked"))
                            .expect("sole owner")
                    } else {
                        Vec::with_capacity(self.chunk_ops)
                    };
                    match source.read_ref_chunk(&mut buf, self.chunk_ops) {
                        Ok(0) => return Ok(()),
                        Ok(n) => {
                            if self.budget.exceeded(fed, started) {
                                cancelled = true;
                                return Ok(());
                            }
                            let chunk = Arc::new(buf);
                            for tx in &senders {
                                let _ = tx.send(chunk.clone());
                            }
                            in_flight.push_back(chunk);
                            fed += n as u64;
                        }
                        Err(e) => return Err(e),
                    }
                }
            });
        }
        let cancelled_at = cancelled.then_some(fed);
        result.map(|()| collect_outcomes(models, before, poisoned, cancelled_at))
    }
}

/// Folds post-sweep model state and poison markers into per-model
/// outcomes, discarding the partial counters of failed models. When the
/// budget cancelled the sweep (`cancelled_at = Some(refs fed)`), models
/// that had not already poisoned themselves report
/// [`ModelOutcome::Cancelled`] — a panic recorded before the trip still
/// wins, it carries more information.
fn collect_outcomes(
    models: &[Box<dyn MemoryModel>],
    before: Vec<ModelStats>,
    poisoned: Vec<Option<String>>,
    cancelled_at: Option<u64>,
) -> Vec<ModelOutcome> {
    models
        .iter()
        .zip(before)
        .zip(poisoned)
        .map(|((m, b), poison)| match (poison, cancelled_at) {
            (Some(reason), _) => ModelOutcome::Failed { reason },
            (None, Some(refs_replayed)) => ModelOutcome::Cancelled { refs_replayed },
            (None, None) => ModelOutcome::Completed(m.stats() - b),
        })
        .collect()
}

/// [`Sweep::run_refs`] with default settings — the one-liner the
/// experiment drivers use.
pub fn sweep_refs(models: &mut [Box<dyn MemoryModel>], refs: &[MemRef]) -> Vec<ModelStats> {
    Sweep::new().run_refs(models, refs)
}

// ---------------------------------------------------------------------
// One-pass Mattson stack-distance engine
// ---------------------------------------------------------------------

/// Exact one-pass miss-ratio curves for the LRU, modulus-indexed cache
/// family (Mattson et al., 1970).
///
/// LRU has the *inclusion* property: the content of an `A`-way set is
/// always a subset of the content of the same set with more ways. One
/// traversal that maintains, per set, the blocks in LRU order (a
/// "reuse stack") therefore determines every associativity at once: an
/// access whose block sits at stack depth `d` hits in every cache of
/// that set count with associativity `> d` and misses in the rest.
/// Recording a histogram of depths per set count yields the **exact**
/// miss count of every `(sets, ways)` combination of a given line size
/// in one pass — the per-combination replays of a size × associativity
/// grid collapse into a single traversal.
///
/// Exactness holds for reference streams replayed with
/// allocate-on-miss, touch-on-hit semantics for every access: that is
/// any read-only stream (the paper's Figure 1 stride traces, load
/// miss-ratio studies), or mixed streams against write-allocate LRU
/// caches ([`crate::cache::WritePolicy::WriteBackAllocate`]). Under
/// no-write-allocate, whether a *write* moves its block to MRU depends
/// on the associativity, so no single stack order represents all
/// configurations — use the [`Sweep`] engine for those.
///
/// # Set sampling
///
/// [`LruStackSweep::with_set_sampling`] keeps only blocks whose low
/// index bits match one residue class (1 in K), which selects the same
/// 1-in-K subset of sets in **every** configuration with at least K
/// sets. Miss *ratios* over the sampled stream are unbiased estimates
/// of the full-stream ratios; [`LruStackSweep::sampling_note`] renders
/// the caveat for reports.
///
/// # Example
///
/// ```
/// use cac_sim::sweep::LruStackSweep;
/// use cac_trace::stride::VectorStride;
///
/// // 32-byte lines; all set counts of an 8KB cache at 1/2/4 ways plus
/// // fully-associative, in one pass.
/// let mut sweep = LruStackSweep::new(32, &[256, 128, 64, 1])?;
/// let refs: Vec<_> = VectorStride::paper_figure1(128, 16).collect();
/// sweep.run_refs(&refs);
/// // 8KB direct-mapped = 256 sets x 1 way; fully assoc = 1 set x 256.
/// let dm = sweep.misses(256, 1).unwrap();
/// let fa = sweep.misses(1, 256).unwrap();
/// assert!(dm > fa);
/// assert_eq!(fa, 64); // compulsory only: the vector fits
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LruStackSweep {
    line: u64,
    block_bits: u32,
    families: Vec<SetFamily>,
    /// Sampling modulus (1 = every block) and the kept residue.
    sample_k: u64,
    refs_seen: u64,
    refs_sampled: u64,
}

/// Per-set reuse stacks and the distance histogram for one set count.
#[derive(Debug, Clone)]
struct SetFamily {
    sets: u32,
    /// Per-set LRU stacks, MRU first. Sampled-out sets stay empty.
    stacks: Vec<Vec<u64>>,
    /// `hist[d]` = accesses that found their block at stack depth `d`.
    hist: Vec<u64>,
    /// Accesses whose block was not on the stack (compulsory for the
    /// whole family).
    cold: u64,
}

impl LruStackSweep {
    /// Creates an engine for `line`-byte blocks covering every given
    /// set count (duplicates are merged). A `(sets, ways)` query then
    /// describes the cache of capacity `sets * ways * line`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] unless `line` and every set count are powers
    /// of two (the modulus family the paper's conventional caches use),
    /// with at least one set count given.
    pub fn new(line: u64, set_counts: &[u32]) -> Result<Self, Error> {
        if line < 2 || !line.is_power_of_two() {
            return Err(Error::config(format!(
                "stack-distance sweep needs a power-of-two line size of at least 2, got {line}"
            )));
        }
        let mut counts: Vec<u32> = set_counts.to_vec();
        counts.sort_unstable();
        counts.dedup();
        if counts.is_empty() {
            return Err(Error::config(
                "stack-distance sweep needs at least one set count",
            ));
        }
        if let Some(bad) = counts.iter().find(|c| **c == 0 || !c.is_power_of_two()) {
            return Err(Error::config(format!(
                "stack-distance sweep set counts must be powers of two (modulus \
                 indexing), got {bad}"
            )));
        }
        Ok(LruStackSweep {
            line,
            block_bits: line.trailing_zeros(),
            families: counts
                .into_iter()
                .map(|sets| SetFamily {
                    sets,
                    stacks: vec![Vec::new(); sets as usize],
                    hist: Vec::new(),
                    cold: 0,
                })
                .collect(),
            sample_k: 1,
            refs_seen: 0,
            refs_sampled: 0,
        })
    }

    /// Enables 1-in-`k` set sampling: only blocks with
    /// `block_addr % k == 0` are observed.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] unless `k` is a power of two no larger than
    /// the smallest *multi-set* family configured (larger `k` would
    /// leave some configurations with no sampled set at all). A 1-set
    /// (fully-associative) family never constrains `k`: every sampled
    /// block lands in its only set, so it always retains samples — this
    /// is what lets a sampled pass still feed
    /// [`crate::analytic::AnalyticModel::from_sweep`].
    pub fn with_set_sampling(mut self, k: u32) -> Result<Self, Error> {
        if k == 0 || !k.is_power_of_two() {
            return Err(Error::config(format!(
                "set-sampling factor must be a power of two, got {k}"
            )));
        }
        let min_sets = self
            .families
            .iter()
            .map(|f| f.sets)
            .find(|s| *s > 1)
            .unwrap_or(1);
        if k > min_sets && min_sets > 1 {
            return Err(Error::config(format!(
                "set-sampling factor {k} exceeds the smallest multi-set count {min_sets}; \
                 every configuration must retain at least one sampled set"
            )));
        }
        self.sample_k = u64::from(k);
        Ok(self)
    }

    /// The configured line size in bytes.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// The sampling factor K (1 = exact, no sampling).
    pub fn sampling(&self) -> u64 {
        self.sample_k
    }

    /// References presented to the engine (sampled or not).
    pub fn refs_seen(&self) -> u64 {
        self.refs_seen
    }

    /// References that fell in the sampled residue class and were
    /// observed. Equal to [`LruStackSweep::refs_seen`] when sampling is
    /// off.
    pub fn refs_sampled(&self) -> u64 {
        self.refs_sampled
    }

    /// Observes one reference.
    pub fn observe(&mut self, addr: u64) {
        self.refs_seen += 1;
        let block = addr >> self.block_bits;
        if self.sample_k > 1 && !block.is_multiple_of(self.sample_k) {
            return;
        }
        self.refs_sampled += 1;
        for family in &mut self.families {
            let set = (block & u64::from(family.sets - 1)) as usize;
            let stack = &mut family.stacks[set];
            match stack.iter().position(|&b| b == block) {
                Some(depth) => {
                    // Move-to-front; record the depth it was found at.
                    stack[..=depth].rotate_right(1);
                    if family.hist.len() <= depth {
                        family.hist.resize(depth + 1, 0);
                    }
                    family.hist[depth] += 1;
                }
                None => {
                    family.cold += 1;
                    stack.insert(0, block);
                }
            }
        }
    }

    /// Observes every reference of a slice (reads and writes alike; see
    /// the type docs for when that is exact).
    pub fn run_refs(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.observe(r.addr);
        }
    }

    /// Streams a [`RefSource`] through the engine.
    ///
    /// # Errors
    ///
    /// Propagates the source's decode/read errors; references observed
    /// before the error remain counted.
    pub fn run_source<S: RefSource>(&mut self, mut source: S) -> Result<(), S::Error> {
        let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
        while source.read_ref_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
            self.run_refs(&buf);
        }
        Ok(())
    }

    fn family(&self, sets: u32) -> Option<&SetFamily> {
        self.families.iter().find(|f| f.sets == sets)
    }

    /// Exact misses of the sampled stream in the `(sets, ways)` LRU
    /// cache, or `None` if that set count was not configured or `ways`
    /// is 0.
    pub fn misses(&self, sets: u32, ways: u32) -> Option<u64> {
        if ways == 0 {
            return None;
        }
        let family = self.family(sets)?;
        let deep: u64 = family.hist.iter().skip(ways as usize).sum();
        Some(family.cold + deep)
    }

    /// Hits of the sampled stream in the `(sets, ways)` cache.
    pub fn hits(&self, sets: u32, ways: u32) -> Option<u64> {
        self.misses(sets, ways).map(|m| self.refs_sampled - m)
    }

    /// Miss ratio of the sampled stream in the `(sets, ways)` cache
    /// (exact when sampling is off, an unbiased estimate otherwise).
    /// `None` for unconfigured set counts or before any reference.
    pub fn miss_ratio(&self, sets: u32, ways: u32) -> Option<f64> {
        if self.refs_sampled == 0 {
            return None;
        }
        self.misses(sets, ways)
            .map(|m| m as f64 / self.refs_sampled as f64)
    }

    /// Worst-case binomial standard error of a reported miss ratio
    /// under set sampling, or `None` when the engine is exact
    /// (sampling off). Exposed numerically so analytic validators can
    /// widen their error bounds programmatically instead of scraping
    /// the text note.
    pub fn sampling_standard_error(&self) -> Option<f64> {
        if self.sample_k <= 1 {
            return None;
        }
        let n = self.refs_sampled.max(1) as f64;
        // p(1-p)/n is maximised at p = 0.5.
        Some((0.25 / n).sqrt())
    }

    /// A report-ready caveat line when sampling is on (`None` when the
    /// engine is exact): the sampled fraction and the worst-case
    /// binomial standard error of a reported miss ratio.
    pub fn sampling_note(&self) -> Option<String> {
        let se = self.sampling_standard_error()?;
        Some(format!(
            "set sampling 1/{}: ratios estimated from {} of {} refs \
             (worst-case standard error ±{:.2} miss-%)",
            self.sample_k,
            self.refs_sampled,
            self.refs_seen,
            se * 100.0
        ))
    }

    /// A copy of the recorded stack-distance histogram for one
    /// configured set count (the raw material of the
    /// [`analytic`](crate::analytic) tier), or `None` for set counts
    /// the sweep was not configured with.
    pub fn histogram(&self, sets: u32) -> Option<crate::analytic::StackHistogram> {
        let family = self.family(sets)?;
        Some(crate::analytic::StackHistogram {
            cold: family.cold,
            depths: family.hist.clone(),
            refs: self.refs_sampled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use cac_core::{CacheGeometry, IndexSpec};
    use cac_trace::stride::VectorStride;

    fn models(specs: &[IndexSpec]) -> Vec<Box<dyn MemoryModel>> {
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        specs
            .iter()
            .map(|s| Box::new(Cache::build(geom, s.clone()).unwrap()) as Box<dyn MemoryModel>)
            .collect()
    }

    fn mixed_refs(n: u64) -> Vec<MemRef> {
        (0..n)
            .map(|i| MemRef {
                pc: 0x1000 + i,
                addr: (i.wrapping_mul(0x9E37_79B9) >> 5) & 0xF_FFFF,
                is_write: i % 7 == 0,
            })
            .collect()
    }

    #[test]
    fn engine_matches_sequential_replay_any_worker_count() {
        let refs = mixed_refs(30_000);
        let specs = [
            IndexSpec::modulo(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::xor_skewed(),
        ];
        let mut reference = models(&specs);
        let expect: Vec<ModelStats> = reference.iter_mut().map(|m| m.run_refs(&refs)).collect();
        for workers in [1usize, 2, 5] {
            let mut swept = models(&specs);
            let got = Sweep::new()
                .workers(workers)
                .chunk_ops(977)
                .run_refs(&mut swept, &refs);
            assert_eq!(got, expect, "workers {workers}");
        }
    }

    #[test]
    fn source_and_slice_paths_agree() {
        use cac_trace::io::IterRefSource;
        let refs = mixed_refs(25_000);
        let specs = [IndexSpec::modulo(), IndexSpec::ipoly_skewed()];
        let mut by_slice = models(&specs);
        let expect = sweep_refs(&mut by_slice, &refs);
        for workers in [1usize, 3] {
            let mut by_source = models(&specs);
            let got = Sweep::new()
                .workers(workers)
                .chunk_ops(1013)
                .run_source(&mut by_source, IterRefSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(got, expect, "workers {workers}");
        }
    }

    #[test]
    fn isolated_sweep_matches_plain_sweep_when_nothing_fails() {
        let refs = mixed_refs(20_000);
        let specs = [IndexSpec::modulo(), IndexSpec::ipoly_skewed()];
        let mut plain = models(&specs);
        let expect = sweep_refs(&mut plain, &refs);
        for workers in [1usize, 3] {
            let mut isolated = models(&specs);
            let got = Sweep::new()
                .workers(workers)
                .chunk_ops(977)
                .run_refs_isolated(&mut isolated, &refs);
            let got: Vec<&ModelStats> = got.iter().map(|o| o.stats().unwrap()).collect();
            assert_eq!(got, expect.iter().collect::<Vec<_>>(), "workers {workers}");
        }
    }

    #[test]
    fn poisoned_model_degrades_without_touching_siblings() {
        use crate::model::PoisonModel;
        use cac_trace::io::IterRefSource;
        let refs = mixed_refs(15_000);
        let specs = [IndexSpec::modulo(), IndexSpec::xor_skewed()];
        let mut healthy = models(&specs);
        let expect = sweep_refs(&mut healthy, &refs);

        for workers in [1usize, 2, 4] {
            // Slice path: poison sandwiched between healthy models.
            let mut mixed: Vec<Box<dyn MemoryModel>> = Vec::new();
            mixed.push(models(&specs[..1]).pop().unwrap());
            mixed.push(Box::new(PoisonModel::new(4_000)));
            mixed.push(models(&specs[1..]).pop().unwrap());
            let outcomes = Sweep::new()
                .workers(workers)
                .chunk_ops(1013)
                .run_refs_isolated(&mut mixed, &refs);
            assert_eq!(outcomes.len(), 3, "workers {workers}");
            assert_eq!(outcomes[0].stats(), Some(&expect[0]), "workers {workers}");
            assert!(outcomes[1].is_failed(), "workers {workers}");
            assert!(
                outcomes[1].failure().unwrap().contains("poison model"),
                "workers {workers}: {:?}",
                outcomes[1].failure()
            );
            assert_eq!(outcomes[2].stats(), Some(&expect[1]), "workers {workers}");

            // Streaming path: same quarantine guarantees.
            let mut mixed: Vec<Box<dyn MemoryModel>> = Vec::new();
            mixed.push(models(&specs[..1]).pop().unwrap());
            mixed.push(Box::new(PoisonModel::new(4_000)));
            mixed.push(models(&specs[1..]).pop().unwrap());
            let outcomes = Sweep::new()
                .workers(workers)
                .chunk_ops(1013)
                .run_source_isolated(&mut mixed, IterRefSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(outcomes[0].stats(), Some(&expect[0]), "workers {workers}");
            assert!(outcomes[1].is_failed(), "workers {workers}");
            assert_eq!(outcomes[2].stats(), Some(&expect[1]), "workers {workers}");
        }
    }

    #[test]
    fn immediate_panic_is_reported_with_its_reason() {
        use crate::model::PoisonModel;
        let refs = mixed_refs(100);
        let mut ms: Vec<Box<dyn MemoryModel>> = vec![Box::new(PoisonModel::new(0))];
        let outcomes = Sweep::new().workers(1).run_refs_isolated(&mut ms, &refs);
        let reason = outcomes[0].failure().expect("must fail");
        assert!(reason.contains("configured trigger 0"), "{reason}");
    }

    #[test]
    fn budget_cancels_all_models_deterministically() {
        use cac_trace::io::IterRefSource;
        let refs = mixed_refs(50_000);
        let specs = [IndexSpec::modulo(), IndexSpec::ipoly_skewed()];
        for workers in [1usize, 3] {
            let mut ms = models(&specs);
            let outcomes = Sweep::new()
                .workers(workers)
                .chunk_ops(1000)
                .budget(SweepBudget::refs(10_000))
                .run_source_isolated(&mut ms, IterRefSource::new(refs.iter().copied()))
                .unwrap();
            for o in &outcomes {
                // Trips at the first chunk boundary at/after the limit.
                assert_eq!(
                    o,
                    &ModelOutcome::Cancelled {
                        refs_replayed: 10_000
                    },
                    "workers {workers}"
                );
                assert!(o.is_cancelled() && o.stats().is_none() && o.failure().is_none());
            }
            // Slice path delegates to the same watchdog.
            let mut ms = models(&specs);
            let outcomes = Sweep::new()
                .workers(workers)
                .chunk_ops(1000)
                .budget(SweepBudget::refs(10_000))
                .run_refs_isolated(&mut ms, &refs);
            assert!(outcomes.iter().all(|o| o
                == &ModelOutcome::Cancelled {
                    refs_replayed: 10_000
                }));
        }
    }

    #[test]
    fn budget_larger_than_stream_is_a_normal_completion() {
        use cac_trace::io::IterRefSource;
        let refs = mixed_refs(5_000);
        let specs = [IndexSpec::modulo(), IndexSpec::xor_skewed()];
        let mut plain = models(&specs);
        let expect = sweep_refs(&mut plain, &refs);
        let mut ms = models(&specs);
        let outcomes = Sweep::new()
            .workers(1)
            .budget(SweepBudget::refs(1_000_000))
            .run_source_isolated(&mut ms, IterRefSource::new(refs.iter().copied()))
            .unwrap();
        let got: Vec<&ModelStats> = outcomes.iter().map(|o| o.stats().unwrap()).collect();
        assert_eq!(got, expect.iter().collect::<Vec<_>>());
        // A stream ending exactly at the budget also completes.
        let mut ms = models(&specs);
        let outcomes = Sweep::new()
            .workers(1)
            .chunk_ops(1000)
            .budget(SweepBudget::refs(5_000))
            .run_source_isolated(&mut ms, IterRefSource::new(refs.iter().copied()))
            .unwrap();
        assert!(outcomes.iter().all(|o| o.stats().is_some()));
    }

    #[test]
    fn poison_before_budget_trip_stays_failed() {
        use crate::model::PoisonModel;
        use cac_trace::io::IterRefSource;
        let refs = mixed_refs(20_000);
        let mut ms: Vec<Box<dyn MemoryModel>> = vec![
            Box::new(PoisonModel::new(100)),
            models(&[IndexSpec::modulo()]).pop().unwrap(),
        ];
        let outcomes = Sweep::new()
            .workers(1)
            .chunk_ops(1000)
            .budget(SweepBudget::refs(5_000))
            .run_source_isolated(&mut ms, IterRefSource::new(refs.iter().copied()))
            .unwrap();
        assert!(outcomes[0].is_failed());
        assert!(outcomes[1].is_cancelled());
    }

    #[test]
    fn budget_constructors() {
        assert!(SweepBudget::unlimited().is_unlimited());
        assert!(!SweepBudget::refs(5).is_unlimited());
        assert!(!SweepBudget::secs(0.5).is_unlimited());
        assert_eq!(SweepBudget::refs(5).max_refs, Some(5));
        assert_eq!(SweepBudget::secs(2.0).max_secs, Some(2.0));
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let mut ms = models(&[IndexSpec::modulo()]);
        let stats = sweep_refs(&mut ms, &[]);
        assert_eq!(stats[0].demand.accesses, 0);
        let none: Vec<Box<dyn MemoryModel>> = Vec::new();
        let mut none = none;
        assert!(sweep_refs(&mut none, &mixed_refs(10)).is_empty());
    }

    #[test]
    fn stack_sweep_matches_figure1_compulsory_bound() {
        let mut sweep = LruStackSweep::new(32, &[128]).unwrap();
        let refs: Vec<MemRef> = VectorStride::paper_figure1(1, 16).collect();
        sweep.run_refs(&refs);
        // 64 sequential 8-byte elements = 16 blocks, all resident at
        // 2 ways x 128 sets: compulsory only.
        assert_eq!(sweep.misses(128, 2), Some(16));
        assert_eq!(sweep.hits(128, 2), Some(refs.len() as u64 - 16));
        assert_eq!(sweep.refs_seen(), refs.len() as u64);
    }

    #[test]
    fn stack_sweep_validation() {
        assert!(LruStackSweep::new(31, &[64]).is_err());
        assert!(LruStackSweep::new(32, &[]).is_err());
        assert!(LruStackSweep::new(32, &[48]).is_err());
        assert!(LruStackSweep::new(32, &[64])
            .unwrap()
            .misses(32, 1)
            .is_none());
        assert!(LruStackSweep::new(32, &[64])
            .unwrap()
            .misses(64, 0)
            .is_none());
        assert!(LruStackSweep::new(32, &[64, 128])
            .unwrap()
            .with_set_sampling(128)
            .is_err());
        assert!(LruStackSweep::new(32, &[64])
            .unwrap()
            .with_set_sampling(3)
            .is_err());
    }

    #[test]
    fn sampling_k1_is_exact_and_k4_is_close() {
        let refs = mixed_refs(60_000);
        let mut exact = LruStackSweep::new(32, &[64, 128]).unwrap();
        exact.run_refs(&refs);
        let mut k1 = LruStackSweep::new(32, &[64, 128])
            .unwrap()
            .with_set_sampling(1)
            .unwrap();
        k1.run_refs(&refs);
        assert_eq!(k1.misses(128, 2), exact.misses(128, 2));
        assert!(k1.sampling_note().is_none());

        let mut k4 = LruStackSweep::new(32, &[64, 128])
            .unwrap()
            .with_set_sampling(4)
            .unwrap();
        k4.run_refs(&refs);
        assert!(k4.refs_sampled() < refs.len() as u64 / 2);
        let exact_ratio = exact.miss_ratio(128, 2).unwrap();
        let sampled_ratio = k4.miss_ratio(128, 2).unwrap();
        assert!(
            (exact_ratio - sampled_ratio).abs() < 0.05,
            "exact {exact_ratio:.4} vs sampled {sampled_ratio:.4}"
        );
        assert!(k4.sampling_note().unwrap().contains("1/4"));
    }
}

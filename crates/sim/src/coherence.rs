//! A write-invalidate snooping bus over two-level virtual-real nodes.
//!
//! §3.2 of the paper notes that with Inclusion maintained, "a snooping bus
//! protocol need only compare addresses of global write operations with
//! the tags of the lowest level of private cache", and §3.3 lists
//! *invalidations due to external coherency actions* as the third cause of
//! L1 holes — then sets them aside because they "occur regardless of the
//! cache architecture". This module builds the machinery anyway, so the
//! claim can be checked and the hole-cause breakdown measured:
//!
//! * every node is a [`TwoLevelHierarchy`] (virtually-indexed L1 over a
//!   physically-indexed L2 with explicit inclusion);
//! * a write by one node broadcasts an invalidation of the written
//!   physical block; snooping nodes drop it from L2 and, for Inclusion,
//!   from L1 — punching a coherence hole;
//! * the single-writer invariant (no remote copies survive a write) and
//!   per-node inclusion are checkable after any access sequence.
//!
//! The protocol is deliberately minimal (write-invalidate with
//! write-through L1s, no dirty-sharing states): the paper's architecture
//! makes every store globally visible at L2, so MESI's M/E distinction
//! adds nothing to the hole analysis this module exists to support.
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::coherence::SnoopingBus;
//! use cac_sim::hierarchy::TwoLevelHierarchy;
//! use cac_sim::vm::PageMapper;
//!
//! let node = || TwoLevelHierarchy::new(
//!     CacheGeometry::new(1024, 32, 1)?,
//!     IndexSpec::ipoly(),
//!     CacheGeometry::new(4096, 32, 1)?,
//!     IndexSpec::modulo(),
//!     PageMapper::identity(),
//! );
//! let mut bus = SnoopingBus::new(vec![node()?, node()?])?;
//!
//! bus.read(0, 0x100)?;         // node 0 caches the block
//! bus.read(1, 0x100)?;         // node 1 caches it too (shared)
//! bus.write(1, 0x100)?;        // node 1 writes: node 0 is invalidated
//! assert!(!bus.node(0).unwrap().l1().contains(0x100));
//! assert!(bus.read(9, 0x100).is_err()); // out-of-range node: an error, not a panic
//! assert!(bus.check_invariants());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::hierarchy::{HierarchyAccess, TwoLevelHierarchy};
use cac_core::Error;

/// Bus-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Reads presented to the bus (all node reads).
    pub reads: u64,
    /// Writes presented to the bus (each one broadcasts an invalidation).
    pub writes: u64,
    /// Snoop probes delivered (writes × remote nodes).
    pub snoops: u64,
    /// Snoops that found and removed a remote L2 copy.
    pub remote_l2_invalidations: u64,
    /// Snoops that punched a hole in a remote L1.
    pub remote_l1_holes: u64,
}

impl BusStats {
    /// Fraction of snoop probes that actually hit a remote copy — how
    /// much invalidation traffic does useful work.
    pub fn snoop_hit_rate(&self) -> f64 {
        if self.snoops == 0 {
            0.0
        } else {
            self.remote_l2_invalidations as f64 / self.snoops as f64
        }
    }
}

/// A write-invalidate snooping bus over `N` private two-level hierarchies.
///
/// See the [module docs](self) for the protocol and an example.
#[derive(Debug)]
pub struct SnoopingBus {
    nodes: Vec<TwoLevelHierarchy>,
    stats: BusStats,
}

impl SnoopingBus {
    /// Creates a bus over the given nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if no nodes are supplied.
    pub fn new(nodes: Vec<TwoLevelHierarchy>) -> Result<Self, Error> {
        if nodes.is_empty() {
            return Err(Error::OutOfRange {
                what: "node count",
                value: 0,
                constraint: ">= 1",
            });
        }
        Ok(SnoopingBus {
            nodes,
            stats: BusStats::default(),
        })
    }

    /// Number of nodes on the bus.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Range-checks a node id, turning an out-of-range `i` into a
    /// [`Error::OutOfRange`] instead of a panic.
    fn check_node(&self, i: usize) -> Result<(), Error> {
        if i < self.nodes.len() {
            Ok(())
        } else {
            Err(Error::OutOfRange {
                what: "node id",
                value: i as u64,
                constraint: "< the bus's node count",
            })
        }
    }

    /// Immutable access to a node; `None` if `i` is out of range.
    pub fn node(&self, i: usize) -> Option<&TwoLevelHierarchy> {
        self.nodes.get(i)
    }

    /// A read by node `i` at virtual address `va`. Reads are satisfied
    /// locally (L1 → L2 → memory); they generate no snoop traffic in this
    /// protocol.
    ///
    /// # Errors
    ///
    /// [`Error::OutOfRange`] if `i` is not a node on this bus.
    pub fn read(&mut self, i: usize, va: u64) -> Result<HierarchyAccess, Error> {
        self.check_node(i)?;
        self.stats.reads += 1;
        Ok(self.nodes[i].read(va))
    }

    /// A write by node `i` at virtual address `va`: performed locally,
    /// then the written physical block is invalidated in every other
    /// node.
    ///
    /// # Errors
    ///
    /// [`Error::OutOfRange`] if `i` is not a node on this bus.
    pub fn write(&mut self, i: usize, va: u64) -> Result<HierarchyAccess, Error> {
        self.check_node(i)?;
        self.stats.writes += 1;
        let pa = self.nodes[i].translate(va);
        let res = self.nodes[i].write(va);
        for (j, node) in self.nodes.iter_mut().enumerate() {
            if j == i {
                continue;
            }
            self.stats.snoops += 1;
            let out = node.snoop_invalidate(pa);
            if out.l2_invalidated {
                self.stats.remote_l2_invalidations += 1;
            }
            if out.l1_invalidated {
                self.stats.remote_l1_holes += 1;
            }
        }
        Ok(res)
    }

    /// Bus counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Verifies the protocol invariants: Inclusion inside every node.
    /// (The single-writer property is enforced synchronously by
    /// [`SnoopingBus::write`]; tests check it per write via
    /// [`TwoLevelHierarchy::holds_physical_block`].)
    pub fn check_invariants(&mut self) -> bool {
        self.nodes.iter_mut().all(|n| n.check_inclusion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::PageMapper;
    use cac_core::{CacheGeometry, IndexSpec};

    fn node() -> TwoLevelHierarchy {
        TwoLevelHierarchy::new(
            CacheGeometry::new(1024, 32, 1).unwrap(),
            IndexSpec::ipoly(),
            CacheGeometry::new(4096, 32, 1).unwrap(),
            IndexSpec::modulo(),
            PageMapper::identity(),
        )
        .unwrap()
    }

    fn bus(n: usize) -> SnoopingBus {
        SnoopingBus::new((0..n).map(|_| node()).collect()).unwrap()
    }

    #[test]
    fn empty_bus_is_rejected() {
        assert!(SnoopingBus::new(Vec::new()).is_err());
    }

    #[test]
    fn out_of_range_node_is_an_error_not_a_panic() {
        let mut b = bus(2);
        assert!(b.node(1).is_some());
        assert!(b.node(2).is_none());
        assert!(matches!(b.read(2, 0), Err(Error::OutOfRange { .. })));
        assert!(matches!(b.write(5, 0), Err(Error::OutOfRange { .. })));
        // Rejected operations leave the counters untouched.
        assert_eq!(b.stats().reads, 0);
        assert_eq!(b.stats().writes, 0);
        assert_eq!(b.stats().snoops, 0);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut b = bus(3);
        for i in 0..3 {
            b.read(i, 0x200).unwrap();
        }
        b.write(0, 0x200).unwrap();
        let pa_block = 0x200 / 32;
        assert!(b.node(0).unwrap().holds_physical_block(pa_block));
        assert!(!b.node(1).unwrap().holds_physical_block(pa_block));
        assert!(!b.node(2).unwrap().holds_physical_block(pa_block));
        assert_eq!(b.stats().remote_l2_invalidations, 2);
        assert_eq!(b.stats().remote_l1_holes, 2);
        assert!(b.check_invariants());
    }

    #[test]
    fn writes_to_private_data_produce_useless_snoops() {
        let mut b = bus(2);
        b.write(0, 0x8000).unwrap(); // nobody else has it
        assert_eq!(b.stats().snoops, 1);
        assert_eq!(b.stats().remote_l2_invalidations, 0);
        assert_eq!(b.stats().snoop_hit_rate(), 0.0);
    }

    #[test]
    fn remote_reader_misses_after_invalidation() {
        let mut b = bus(2);
        b.read(1, 0x300).unwrap();
        assert!(b.read(1, 0x300).unwrap().l1_hit);
        b.write(0, 0x300).unwrap();
        // Node 1 must re-fetch: its copy was invalidated.
        assert!(!b.read(1, 0x300).unwrap().l1_hit);
        assert_eq!(b.node(1).unwrap().stats().external_invalidations_l1, 1);
    }

    #[test]
    fn ping_pong_sharing_counts_holes_on_both_sides() {
        let mut b = bus(2);
        for round in 0..16 {
            let writer = round % 2;
            b.read(writer, 0x400).unwrap();
            b.write(writer, 0x400).unwrap();
        }
        let s = b.stats();
        // After the first write, every subsequent write finds the other
        // node's freshly-refetched copy.
        assert!(s.remote_l2_invalidations >= 14, "{s:?}");
        assert!(b.check_invariants());
        assert!(b.node(0).unwrap().stats().external_invalidations_l1 > 0);
        assert!(b.node(1).unwrap().stats().external_invalidations_l1 > 0);
    }

    #[test]
    fn single_writer_invariant_under_random_traffic() {
        let mut b = bus(4);
        // Deterministic pseudo-random mixed traffic over a small shared
        // region to force heavy interaction.
        let mut x = 0x12345678u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let node = (x % 4) as usize;
            let va = (x >> 8) % 128 * 32; // 128 shared blocks
            if x.is_multiple_of(3) {
                b.write(node, va).unwrap();
                // Immediately after a write, no other node may hold the
                // block (a later read may legitimately re-cache it).
                for j in 0..4 {
                    if j != node {
                        assert!(
                            !b.node(j).unwrap().holds_physical_block(va / 32),
                            "remote copy survived a write"
                        );
                    }
                }
            } else {
                b.read(node, va).unwrap();
            }
        }
        assert!(b.check_invariants());
    }

    #[test]
    fn reads_generate_no_snoops() {
        let mut b = bus(2);
        for i in 0..64 {
            b.read(0, i * 32).unwrap();
        }
        assert_eq!(b.stats().snoops, 0);
        assert_eq!(b.stats().reads, 64);
    }
}

//! Victim cache (Jouppi): a direct-mapped (or set-associative) main cache
//! backed by a small fully-associative buffer holding recent evictions.
//!
//! The paper's §2.1 cites the victim cache as one of the organizations the
//! I-Poly study compared against; this implementation lets the harness
//! reproduce that comparison.

use crate::assoc::VictimQueue;
use crate::cache::Cache;
use crate::model::{extra, AccessOutcome, MemoryModel, ModelStats, ServicePoint};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};
use cac_trace::MemRef;

/// A main cache plus a small fully-associative LRU victim buffer.
///
/// On a main-cache miss the victim buffer is probed; a victim-buffer hit
/// swaps the line back into the main cache (the displaced main-cache line
/// drops into the buffer). Evictions from the main cache always enter the
/// buffer.
///
/// # Example
///
/// ```
/// use cac_core::CacheGeometry;
/// use cac_sim::victim::VictimCache;
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 1)?; // direct-mapped
/// let mut v = VictimCache::new(geom, 4)?;
/// // Two blocks that conflict in the main cache ping-pong via the buffer
/// // instead of missing to memory.
/// v.read(0);
/// v.read(8 * 1024);
/// assert!(v.read(0).victim_hit);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VictimCache {
    main: Cache,
    /// The fully-associative buffer: a FIFO set with O(1) membership.
    buffer: VictimQueue,
    stats: VictimStats,
}

/// Counters specific to the victim organization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits in the main cache.
    pub main_hits: u64,
    /// Misses in main that hit the victim buffer (swapped back).
    pub victim_hits: u64,
    /// Misses that went to the next level.
    pub full_misses: u64,
    /// Stores presented and passed through untouched (the organization
    /// is evaluated by load miss ratio, as in the paper's comparison).
    pub bypassed_stores: u64,
}

impl VictimStats {
    /// Effective miss ratio (only full misses cost a memory access).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.full_misses as f64 / self.accesses as f64
        }
    }
}

/// Outcome of one access to a [`VictimCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimAccess {
    /// Hit in the main cache.
    pub main_hit: bool,
    /// Hit in the victim buffer (line swapped back into main).
    pub victim_hit: bool,
}

impl VictimAccess {
    /// `true` if the access was serviced without going to the next level.
    pub fn hit(&self) -> bool {
        self.main_hit || self.victim_hit
    }
}

impl VictimCache {
    /// Creates a victim cache: conventional (modulo-indexed) main cache of
    /// geometry `geom` plus a `victim_lines`-entry fully-associative
    /// buffer.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors; `victim_lines` must be
    /// non-zero.
    pub fn new(geom: CacheGeometry, victim_lines: usize) -> Result<Self, Error> {
        if victim_lines == 0 {
            return Err(Error::OutOfRange {
                what: "victim buffer lines",
                value: 0,
                constraint: ">= 1",
            });
        }
        Ok(VictimCache {
            main: Cache::build(geom, IndexSpec::modulo())?,
            buffer: VictimQueue::new(victim_lines),
            stats: VictimStats::default(),
        })
    }

    /// Performs a read access.
    pub fn read(&mut self, addr: u64) -> VictimAccess {
        self.stats.accesses += 1;
        let block = self.main.geometry().block_addr(addr);
        // One main-cache access resolves hit/miss and performs the fill
        // on a miss (reads always allocate) — no separate pre-probe.
        let access = self.main.read(addr);
        if access.hit {
            self.stats.main_hits += 1;
            return VictimAccess {
                main_hit: true,
                victim_hit: false,
            };
        }
        // Miss: probe the victim buffer (a hit there means the fill that
        // just happened was the swap-back) and catch the displaced line.
        let victim_hit = self.buffer.take(block);
        if let Some(evicted) = access.evicted {
            self.buffer.push(evicted);
        }
        if victim_hit {
            self.stats.victim_hits += 1;
        } else {
            self.stats.full_misses += 1;
        }
        VictimAccess {
            main_hit: false,
            victim_hit,
        }
    }

    /// Running counters.
    pub fn stats(&self) -> VictimStats {
        self.stats
    }

    /// Counters of the underlying main cache.
    pub fn main_stats(&self) -> CacheStats {
        self.main.stats()
    }

    /// Invalidates all contents (cache and buffer) and clears counters.
    pub fn reset(&mut self) {
        self.main.flush();
        self.buffer.clear();
        self.stats = VictimStats::default();
    }
}

impl MemoryModel for VictimCache {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        if r.is_write {
            self.stats.bypassed_stores += 1;
            return AccessOutcome::bypass();
        }
        let a = self.read(r.addr);
        if a.main_hit {
            AccessOutcome::hit_at(ServicePoint::Level(0))
        } else if a.victim_hit {
            AccessOutcome::hit_at(ServicePoint::Victim(0))
        } else {
            AccessOutcome {
                filled: true,
                ..AccessOutcome::miss()
            }
        }
    }

    fn stats(&self) -> ModelStats {
        let s = self.stats;
        let demand = CacheStats {
            accesses: s.accesses,
            hits: s.main_hits + s.victim_hits,
            misses: s.full_misses,
            reads: s.accesses,
            read_misses: s.full_misses,
            ..CacheStats::default()
        };
        let mut m = ModelStats::single("victim", demand);
        m.extras = vec![
            extra("main-hits", s.main_hits),
            extra("victim-hits", s.victim_hits),
            extra("stores-bypassed", s.bypassed_stores),
        ];
        m
    }

    fn reset(&mut self) {
        VictimCache::reset(self);
    }

    fn describe(&self) -> String {
        format!(
            "victim cache: {} + {}-line fully-associative buffer",
            self.main.geometry(),
            self.buffer.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm8k() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 1).unwrap()
    }

    #[test]
    fn conflicting_pair_serviced_by_buffer() {
        let mut v = VictimCache::new(dm8k(), 4).unwrap();
        let a = 0u64;
        let b = 8 * 1024; // same set in the direct-mapped main cache
        v.read(a);
        v.read(b);
        // From now on each access swaps via the victim buffer.
        for _ in 0..10 {
            assert!(v.read(a).victim_hit || v.read(a).main_hit);
            assert!(v.read(b).victim_hit || v.read(b).main_hit);
        }
        assert_eq!(v.stats().full_misses, 2); // only the two cold misses
    }

    #[test]
    fn buffer_capacity_limits_protection() {
        // 8 blocks conflicting on one set overwhelm a 4-entry buffer under
        // cyclic access.
        let mut v = VictimCache::new(dm8k(), 4).unwrap();
        let blocks: Vec<u64> = (0..8).map(|i| i * 8 * 1024).collect();
        for _ in 0..5 {
            for &b in &blocks {
                v.read(b);
            }
        }
        assert!(v.stats().miss_ratio() > 0.5);
    }

    #[test]
    fn sequential_stream_unaffected() {
        let mut v = VictimCache::new(dm8k(), 4).unwrap();
        for i in 0..128u64 {
            v.read(i * 32);
        }
        for i in 0..128u64 {
            assert!(v.read(i * 32).hit());
        }
        assert_eq!(v.stats().full_misses, 128);
    }

    #[test]
    fn zero_buffer_rejected() {
        assert!(VictimCache::new(dm8k(), 0).is_err());
    }

    #[test]
    fn stats_sum_to_accesses() {
        let mut v = VictimCache::new(dm8k(), 2).unwrap();
        for i in 0..300u64 {
            v.read((i * 131) % 4096 * 32);
        }
        let s = v.stats();
        assert_eq!(s.accesses, 300);
        assert_eq!(s.main_hits + s.victim_hits + s.full_misses, 300);
    }
}

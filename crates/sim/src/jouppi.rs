//! The complete Jouppi organization \[13\]: victim cache **and** stream
//! buffers on one direct-mapped cache.
//!
//! Reference \[13\] of the paper ("Improving Direct-Mapped Cache
//! Performance by the Addition of a Small Fully-Associative Cache and
//! Prefetch Buffers") proposes both mechanisms together:
//!
//! * the **victim buffer** catches the mapping (conflict) misses of the
//!   direct-mapped cache — the same miss class I-Poly placement removes
//!   by construction;
//! * the **stream buffers** catch sequential compulsory/capacity misses
//!   — a class placement cannot touch.
//!
//! [`crate::victim`] and [`crate::stream`] model the halves in
//! isolation; this module composes them with Jouppi's lookup order
//! (cache → victim buffer → stream-buffer heads → memory), so the E10
//! organization comparison can include the full design and ask the
//! paper's implicit question: does conflict-avoiding *placement* beat
//! conflict-catching *buffers*?
//!
//! # Example
//!
//! ```
//! use cac_core::CacheGeometry;
//! use cac_sim::jouppi::JouppiCache;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 1)?;
//! let mut c = JouppiCache::new(geom, 4, 4, 4)?;
//! // A conflicting pair alternating: the victim buffer catches it...
//! for _ in 0..64 {
//!     c.read(0x0000);
//!     c.read(0x8000); // same direct-mapped set
//! }
//! // ...so after the two compulsory misses everything hits.
//! assert_eq!(c.stats().full_misses, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::assoc::VictimQueue;
use crate::cache::Cache;
use crate::model::{extra, AccessOutcome, MemoryModel, ModelStats, ServicePoint};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};
use cac_trace::MemRef;
use std::collections::VecDeque;

/// Counters for a [`JouppiCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JouppiStats {
    /// Total read accesses.
    pub accesses: u64,
    /// Hits in the direct-mapped cache.
    pub main_hits: u64,
    /// Misses caught by the victim buffer.
    pub victim_hits: u64,
    /// Misses caught by a stream-buffer head.
    pub stream_hits: u64,
    /// Misses that went all the way to memory.
    pub full_misses: u64,
    /// Stores presented and passed through untouched (Jouppi's buffers
    /// are a read mechanism; the comparison is by load miss ratio).
    pub bypassed_stores: u64,
}

impl JouppiStats {
    /// Effective miss ratio: only [`JouppiStats::full_misses`] reach the
    /// next level.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.full_misses as f64 / self.accesses as f64
        }
    }
}

/// Direct-mapped cache + victim buffer + stream buffers (Jouppi \[13\]).
#[derive(Debug)]
pub struct JouppiCache {
    main: Cache,
    /// O(1)-membership FIFO of evicted blocks.
    victim: VictimQueue,
    streams: Vec<(VecDeque<u64>, u64, u64)>, // (fifo, next, last_used)
    /// Flat tag store over the stream heads (`heads[i]` mirrors
    /// `streams[i].0.front()`): the hit check scans one contiguous
    /// array instead of chasing a `VecDeque` front per buffer. A plain
    /// array rather than a hash map because two streams may legally
    /// converge on the same head block, and the first match must win.
    heads: Vec<u64>,
    stream_capacity: usize,
    stream_depth: usize,
    clock: u64,
    stats: JouppiStats,
}

impl JouppiCache {
    /// Creates the organization: a conventional direct-mapped (or
    /// set-associative) cache of `geom`, `victim_lines` victim entries,
    /// and `stream_buffers` × `stream_depth` prefetch FIFOs. Jouppi's
    /// configuration is `(4, 4, 4)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if any capacity parameter is zero,
    /// plus geometry validation errors.
    pub fn new(
        geom: CacheGeometry,
        victim_lines: usize,
        stream_buffers: usize,
        stream_depth: usize,
    ) -> Result<Self, Error> {
        for (what, v) in [
            ("victim buffer lines", victim_lines),
            ("stream buffers", stream_buffers),
            ("stream buffer depth", stream_depth),
        ] {
            if v == 0 {
                return Err(Error::OutOfRange {
                    what,
                    value: 0,
                    constraint: ">= 1",
                });
            }
        }
        Ok(JouppiCache {
            main: Cache::build(geom, IndexSpec::modulo())?,
            victim: VictimQueue::new(victim_lines),
            streams: Vec::with_capacity(stream_buffers),
            heads: Vec::with_capacity(stream_buffers),
            stream_capacity: stream_buffers,
            stream_depth,
            clock: 0,
            stats: JouppiStats::default(),
        })
    }

    /// Performs a read access through the full lookup chain, reporting
    /// where the access was serviced and any block dropped from the
    /// organization entirely (out the far end of the victim buffer).
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let block = self.main.geometry().block_addr(addr);

        if self.main.probe_block(block).is_some() {
            let _ = self.main.read(addr);
            self.stats.main_hits += 1;
            return AccessOutcome::hit_at(ServicePoint::Level(0));
        }

        // Victim buffer: swap the line back into the cache.
        if self.victim.take(block) {
            let evicted = self.fill(block);
            self.stats.victim_hits += 1;
            return AccessOutcome {
                hit: true,
                served_by: ServicePoint::Victim(0),
                way: None,
                evicted,
                filled: false,
            };
        }

        // Stream-buffer heads: one scan over the flat tag store.
        if let Some(si) = self.heads.iter().position(|&h| h == block) {
            let (fifo, next, last_used) = &mut self.streams[si];
            fifo.pop_front();
            *last_used = self.clock;
            while fifo.len() < self.stream_depth {
                fifo.push_back(*next);
                *next += 1;
            }
            self.heads[si] = *fifo.front().expect("stream topped up");
            let evicted = self.fill(block);
            self.stats.stream_hits += 1;
            return AccessOutcome {
                hit: true,
                served_by: ServicePoint::Stream(0),
                way: None,
                evicted,
                filled: true,
            };
        }

        // Full miss: fetch and start a new stream after this block.
        let evicted = self.fill(block);
        self.stats.full_misses += 1;
        let mut fifo = VecDeque::with_capacity(self.stream_depth);
        for i in 1..=self.stream_depth as u64 {
            fifo.push_back(block + i);
        }
        let head = *fifo.front().expect("depth >= 1");
        let fresh = (fifo, block + self.stream_depth as u64 + 1, self.clock);
        if self.streams.len() < self.stream_capacity {
            self.streams.push(fresh);
            self.heads.push(head);
        } else {
            let lru = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.streams[lru] = fresh;
            self.heads[lru] = head;
        }
        AccessOutcome {
            hit: false,
            served_by: ServicePoint::Memory,
            way: None,
            evicted,
            filled: true,
        }
    }

    /// Fills `block` into the main cache, spilling any displaced line
    /// into the victim buffer; returns the block the spill pushed out of
    /// the buffer's far end, if any.
    fn fill(&mut self, block: u64) -> Option<u64> {
        let (_, evicted) = self.main.fill_block(block);
        evicted.and_then(|victim| self.victim.push(victim))
    }

    /// Running counters.
    pub fn stats(&self) -> JouppiStats {
        self.stats
    }

    /// Invalidates all contents (cache, victim buffer, streams) and
    /// clears all counters.
    pub fn reset(&mut self) {
        self.main.flush();
        self.victim.clear();
        self.streams.clear();
        self.heads.clear();
        self.clock = 0;
        self.stats = JouppiStats::default();
    }
}

impl MemoryModel for JouppiCache {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        if r.is_write {
            self.stats.bypassed_stores += 1;
            return AccessOutcome::bypass();
        }
        self.read(r.addr)
    }

    fn stats(&self) -> ModelStats {
        let s = self.stats;
        let demand = CacheStats {
            accesses: s.accesses,
            hits: s.main_hits + s.victim_hits + s.stream_hits,
            misses: s.full_misses,
            reads: s.accesses,
            read_misses: s.full_misses,
            ..CacheStats::default()
        };
        let mut m = ModelStats::single("jouppi", demand);
        m.extras = vec![
            extra("main-hits", s.main_hits),
            extra("victim-hits", s.victim_hits),
            extra("stream-hits", s.stream_hits),
            extra("stores-bypassed", s.bypassed_stores),
        ];
        m
    }

    fn reset(&mut self) {
        JouppiCache::reset(self);
    }

    fn describe(&self) -> String {
        format!(
            "Jouppi organization: {} + {}-line victim buffer + {}x{} stream buffers",
            self.main.geometry(),
            self.victim.capacity(),
            self.stream_capacity,
            self.stream_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 1).unwrap()
    }

    fn cache() -> JouppiCache {
        JouppiCache::new(geom(), 4, 4, 4).unwrap()
    }

    #[test]
    fn validation() {
        assert!(JouppiCache::new(geom(), 0, 4, 4).is_err());
        assert!(JouppiCache::new(geom(), 4, 0, 4).is_err());
        assert!(JouppiCache::new(geom(), 4, 4, 0).is_err());
    }

    #[test]
    fn outcomes_name_the_servicing_structure() {
        let mut c = cache();
        assert_eq!(c.read(0x0000).served_by, ServicePoint::Memory);
        assert_eq!(c.read(0x0008).served_by, ServicePoint::Level(0));
        c.read(0x2000); // same DM set as 0x0000: spills it to the victim buffer
        assert_eq!(c.read(0x0000).served_by, ServicePoint::Victim(0));
        let out = c.read(0x2020); // prefetched by 0x2000's stream
        assert_eq!(out.served_by, ServicePoint::Stream(0));
        assert!(out.hit && out.is_hit());
    }

    #[test]
    fn victim_catches_small_conflicts() {
        let mut c = cache();
        for _ in 0..32 {
            c.read(0x0000);
            c.read(0x2000); // same DM set (8KB apart)
        }
        let s = c.stats();
        assert_eq!(s.full_misses, 2);
        assert!(s.victim_hits + s.main_hits >= 62);
    }

    #[test]
    fn streams_catch_sequential_misses() {
        let mut c = cache();
        for i in 0..1024u64 {
            c.read(i * 32);
        }
        let s = c.stats();
        assert_eq!(s.full_misses, 1);
        assert_eq!(s.stream_hits, 1023);
    }

    #[test]
    fn wide_column_conflicts_overwhelm_both_buffers() {
        // 64 blocks colliding on one set: 4 victim lines and non-
        // sequential strides leave the organization helpless — the gap
        // I-Poly placement closes.
        let mut c = cache();
        for _pass in 0..8 {
            for i in 0..64u64 {
                c.read(i * 8192);
            }
        }
        let s = c.stats();
        assert_eq!(s.stream_hits, 0, "{s:?}");
        assert!(s.miss_ratio() > 0.8, "{s:?}");
    }

    #[test]
    fn mixed_workload_uses_all_three_levels() {
        let mut c = cache();
        for round in 0..32u64 {
            c.read(0x0000);
            c.read(0x0008); // same block: main hit
            c.read(0x2000); // same set: victim material
            c.read(0x4_0000 + round * 32); // sequential: stream material
        }
        let s = c.stats();
        assert!(s.main_hits > 0);
        assert!(s.victim_hits > 0);
        assert!(s.stream_hits > 0);
        assert_eq!(
            s.main_hits + s.victim_hits + s.stream_hits + s.full_misses,
            s.accesses
        );
    }

    #[test]
    fn stats_balance() {
        let mut c = cache();
        let mut x = 7u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.read(x % (1 << 20));
        }
        let s = c.stats();
        assert_eq!(
            s.main_hits + s.victim_hits + s.stream_hits + s.full_misses,
            s.accesses
        );
        assert!(s.miss_ratio() <= 1.0);
    }
}

//! Translation lookaside buffer.
//!
//! §3.1 of the paper weighs four ways of feeding an I-Poly index function
//! with enough address bits despite 4KB minimum pages. *Option 1* is to
//! translate first and index the L1 **physically** — attractive when the
//! pipeline already translates a stage ahead of tag lookup, but otherwise
//! "either extend the critical path ... or introduce an extra cycle of
//! untolerated latency via an additional pipeline stage". Evaluating that
//! trade-off needs a TLB model: this module provides a parametric
//! set-associative TLB with LRU replacement, backed by any
//! [`PageMapper`].
//!
//! [`PageMapper`]: crate::vm::PageMapper
//!
//! # Example
//!
//! ```
//! use cac_sim::tlb::Tlb;
//! use cac_sim::vm::PageMapper;
//!
//! let mut tlb = Tlb::new(64, 4, 4096, 30)?;
//! let mut mapper = PageMapper::identity();
//! let (pa, hit) = tlb.translate(0x1234, &mut mapper);
//! assert_eq!(pa, 0x1234);
//! assert!(!hit); // compulsory TLB miss
//! let (_, hit) = tlb.translate(0x1ff8, &mut mapper);
//! assert!(hit); // same page
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::assoc::AssocIndex;
use crate::vm::PageMapper;
use cac_core::Error;

/// One TLB entry: a cached virtual→physical page translation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    frame: u64,
    last_used: u64,
}

/// O(1) state for the fully-associative (one-set) configuration: the
/// [`AssocIndex`] maps VPNs to slots and orders them LRU; `frames`
/// holds the slot-indexed payload.
#[derive(Debug)]
struct AssocTlb {
    index: AssocIndex,
    frames: Vec<u64>,
}

/// Statistics kept by a [`Tlb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed (page walk required).
    pub misses: u64,
    /// Valid entries evicted to make room.
    pub evictions: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]` (0 if no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative TLB with true-LRU replacement.
///
/// The fully-associative configuration (`ways == entries`, §3.1's
/// worst case for lookup cost) runs on the O(1)
/// [`AssocIndex`] engine instead of scanning the
/// single set, with identical hit/miss/eviction behaviour.
#[derive(Debug)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    /// O(1) probe/LRU engine, present exactly when there is one set.
    assoc: Option<AssocTlb>,
    ways: u32,
    page_bits: u32,
    miss_penalty: u32,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries organised as
    /// `entries / ways` sets, for pages of `page_size` bytes; a miss costs
    /// `miss_penalty` cycles (the page-walk time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] unless `entries`, `ways` and
    /// `page_size` are powers of two, and [`Error::OutOfRange`] if
    /// `ways > entries`.
    pub fn new(entries: u32, ways: u32, page_size: u64, miss_penalty: u32) -> Result<Self, Error> {
        if entries == 0 || !entries.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "TLB entries",
                value: u64::from(entries),
            });
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "TLB ways",
                value: u64::from(ways),
            });
        }
        if page_size == 0 || !page_size.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "page size",
                value: page_size,
            });
        }
        if ways > entries {
            return Err(Error::OutOfRange {
                what: "TLB ways",
                value: u64::from(ways),
                constraint: "<= entries",
            });
        }
        let num_sets = (entries / ways) as usize;
        Ok(Tlb {
            sets: vec![Vec::with_capacity(ways as usize); num_sets],
            assoc: (num_sets == 1).then(|| AssocTlb {
                index: AssocIndex::new(ways as usize),
                frames: vec![0; ways as usize],
            }),
            ways,
            page_bits: page_size.trailing_zeros(),
            miss_penalty,
            clock: 0,
            stats: TlbStats::default(),
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        1 << self.page_bits
    }

    /// Page-walk penalty charged per miss, in cycles.
    pub fn miss_penalty(&self) -> u32 {
        self.miss_penalty
    }

    /// Translates `va`, consulting `mapper` (the page table) on a miss.
    /// Returns the physical address and whether the TLB hit.
    pub fn translate(&mut self, va: u64, mapper: &mut PageMapper) -> (u64, bool) {
        self.clock += 1;
        self.stats.accesses += 1;
        let vpn = va >> self.page_bits;
        let offset = va & (self.page_size() - 1);
        if let Some(fa) = &mut self.assoc {
            // Fully-associative fast path: O(1) probe and LRU update.
            if let Some(slot) = fa.index.get(vpn) {
                fa.index.touch(slot);
                return ((fa.frames[slot as usize] << self.page_bits) | offset, true);
            }
            self.stats.misses += 1;
            let pa = mapper.translate(va);
            if fa.index.is_full() {
                fa.index.remove_slot(fa.index.victim_slot());
                self.stats.evictions += 1;
            }
            let slot = fa.index.insert(vpn);
            fa.frames[slot as usize] = pa >> self.page_bits;
            return (pa, false);
        }
        let set_idx = (vpn % self.sets.len() as u64) as usize;
        let clock = self.clock;

        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|e| e.vpn == vpn) {
            entry.last_used = clock;
            return ((entry.frame << self.page_bits) | offset, true);
        }

        // Miss: walk the page table via the mapper.
        self.stats.misses += 1;
        let pa = mapper.translate(va);
        let frame = pa >> self.page_bits;
        if set.len() == self.ways as usize {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("set is full, hence non-empty");
            set.swap_remove(victim);
            self.stats.evictions += 1;
        }
        set.push(TlbEntry {
            vpn,
            frame,
            last_used: clock,
        });
        (pa, false)
    }

    /// The latency contribution of a translation: 0 on a hit,
    /// [`Tlb::miss_penalty`] on a miss.
    pub fn latency(&self, hit: bool) -> u32 {
        if hit {
            0
        } else {
            self.miss_penalty
        }
    }

    /// Invalidates every entry (e.g. on a context switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        if let Some(fa) = &mut self.assoc {
            fa.index.clear();
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(64, 4, 4096, 30).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Tlb::new(0, 4, 4096, 30).is_err());
        assert!(Tlb::new(63, 4, 4096, 30).is_err());
        assert!(Tlb::new(64, 3, 4096, 30).is_err());
        assert!(Tlb::new(64, 4, 1000, 30).is_err());
        assert!(Tlb::new(4, 8, 4096, 30).is_err());
        assert!(Tlb::new(64, 64, 4096, 30).is_ok()); // fully associative
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = tlb();
        let mut m = PageMapper::identity();
        let (pa, hit) = t.translate(0x5123, &mut m);
        assert_eq!(pa, 0x5123);
        assert!(!hit);
        let (pa, hit) = t.translate(0x5fff, &mut m);
        assert_eq!(pa, 0x5fff);
        assert!(hit);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().accesses, 2);
    }

    #[test]
    fn translations_preserve_page_offset() {
        let mut t = tlb();
        let mut m = PageMapper::randomized(4096, 1 << 24, 42);
        for va in [0x0u64, 0x1234, 0xabcd_e012] {
            let (pa, _) = t.translate(va, &mut m);
            assert_eq!(pa & 0xfff, va & 0xfff);
        }
    }

    #[test]
    fn cached_translation_matches_mapper() {
        let mut t = tlb();
        let mut m = PageMapper::randomized(4096, 1 << 24, 7);
        let (pa1, _) = t.translate(0x8000, &mut m);
        let (pa2, hit) = t.translate(0x8004, &mut m);
        assert!(hit);
        assert_eq!(pa2, pa1 + 4);
        assert_eq!(pa2, m.translate(0x8004));
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        // 4-way: touching 5 pages that map to one set evicts the first.
        let mut t = Tlb::new(4, 4, 4096, 30).unwrap(); // one set
        let mut m = PageMapper::identity();
        for p in 0..4u64 {
            t.translate(p * 4096, &mut m);
        }
        t.translate(0, &mut m); // refresh page 0
        t.translate(4 * 4096, &mut m); // evicts page 1 (oldest)
        assert_eq!(t.stats().evictions, 1);
        let (_, hit0) = t.translate(0, &mut m);
        assert!(hit0, "page 0 was refreshed, must survive");
        let (_, hit1) = t.translate(4096, &mut m);
        assert!(!hit1, "page 1 was LRU, must have been evicted");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = tlb();
        let mut m = PageMapper::identity();
        t.translate(0x1000, &mut m);
        t.flush();
        let (_, hit) = t.translate(0x1000, &mut m);
        assert!(!hit);
    }

    #[test]
    fn latency_model() {
        let t = tlb();
        assert_eq!(t.latency(true), 0);
        assert_eq!(t.latency(false), 30);
    }

    /// The O(1) fully-associative path against a naive LRU vector: same
    /// hits, same translations, same eviction count.
    #[test]
    fn fully_associative_engine_matches_naive_lru() {
        let entries = 16usize;
        let mut t = Tlb::new(entries as u32, entries as u32, 4096, 30).unwrap();
        let mut m = PageMapper::randomized(4096, 1 << 26, 11);
        let mut shadow = PageMapper::randomized(4096, 1 << 26, 11);
        let mut naive: Vec<u64> = Vec::new(); // VPNs, oldest first
        let mut evictions = 0u64;
        let mut x = 0x2468_ace0u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let va = x % (1 << 19); // 128 pages: thrashes 16 entries
            let vpn = va >> 12;
            let expect_hit = if let Some(p) = naive.iter().position(|&v| v == vpn) {
                naive.remove(p);
                naive.push(vpn);
                true
            } else {
                if naive.len() == entries {
                    naive.remove(0);
                    evictions += 1;
                }
                naive.push(vpn);
                false
            };
            let (pa, hit) = t.translate(va, &mut m);
            assert_eq!(hit, expect_hit, "va {va:#x}");
            assert_eq!(pa, shadow.translate(va));
        }
        assert_eq!(t.stats().evictions, evictions);
        assert!(t.stats().misses > 0 && t.stats().misses < t.stats().accesses);
        // flush() clears the engine too.
        t.flush();
        let (_, hit) = t.translate(0, &mut m);
        assert!(!hit);
    }

    #[test]
    fn miss_ratio_over_working_set_larger_than_tlb() {
        let mut t = Tlb::new(16, 4, 4096, 30).unwrap();
        let mut m = PageMapper::identity();
        // Cycle over 64 pages repeatedly: thrashes a 16-entry TLB.
        for _ in 0..4 {
            for p in 0..64u64 {
                t.translate(p * 4096, &mut m);
            }
        }
        assert!(t.stats().miss_ratio() > 0.9);
        // Small working set: near-zero steady-state miss ratio.
        let mut t2 = Tlb::new(16, 4, 4096, 30).unwrap();
        for _ in 0..64 {
            for p in 0..8u64 {
                t2.translate(p * 4096, &mut m);
            }
        }
        assert!(t2.stats().miss_ratio() < 0.05);
    }
}

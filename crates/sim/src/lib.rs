//! Cache simulators for the conflict-avoiding-cache reproduction.
//!
//! This crate provides the evaluation substrate of the paper:
//!
//! * [`cache::Cache`] — a parametric set-associative cache that accepts
//!   any [`cac_core::IndexFunction`], including skewed ones (different
//!   index per way), with LRU/FIFO/random replacement and
//!   write-through/write-back policies.
//! * [`classify::ThreeCClassifier`] — compulsory/capacity/conflict miss
//!   classification against an infinite cache and a fully-associative LRU
//!   cache of equal capacity.
//! * [`victim::VictimCache`] — direct-mapped cache plus small
//!   fully-associative victim buffer (Jouppi), one of the organizations
//!   the paper's related work compares against.
//! * [`stream::StreamBufferCache`] — the prefetch half of the same
//!   proposal: sequential stream buffers, which rescue streaming misses
//!   but not the conflict misses I-Poly placement removes.
//! * [`jouppi::JouppiCache`] — both halves composed (cache → victim →
//!   stream buffers → memory), the complete reference-\[13\] design.
//! * [`column::ColumnAssociative`] — the §3.1 option-4 design: first probe
//!   with the conventional index, second probe with the polynomial hash,
//!   with line swapping ("pseudo-full associativity in what is effectively
//!   a direct-mapped cache").
//! * [`mshr::MshrFile`] — lockup-free-cache miss status holding registers
//!   (Kroft), used by the out-of-order CPU model.
//! * [`vm::PageMapper`] — virtual→physical page mappings so the two-level
//!   hierarchy can index L1 virtually and L2 physically.
//! * [`tlb::Tlb`] — a parametric set-associative TLB, for evaluating the
//!   §3.1 *option 1* design (translate first, index the L1 physically).
//! * [`pagesize::DynamicIndexCache`] — the §3.1 *option 2* controller:
//!   I-Poly indexing enabled only while every mapped segment has pages at
//!   or above a size threshold, with an L1 flush on every mode switch.
//! * [`coherence::SnoopingBus`] — a write-invalidate snooping bus over
//!   several two-level nodes, measuring the §3.3 *external coherency*
//!   hole cause the paper sets aside.
//! * [`hierarchy::TwoLevelHierarchy`] — the two-level **virtual-real**
//!   hierarchy of Wang et al. that the paper adopts (§3.1–3.3): inclusion
//!   enforcement, virtual-alias control, and measurement of the *holes*
//!   the paper models analytically.
//! * [`stack::Hierarchy`] — the generic N-level stack the virtual-real
//!   design specializes, with victim/stream/MSHR structures attachable
//!   to any level as sidecars.
//!
//! # One model API
//!
//! Every organization above implements [`model::MemoryModel`] — one
//! `access`/`run_refs`/`stats`/`reset` surface reporting through the
//! shared [`model::AccessOutcome`] and [`model::ModelStats`] shapes —
//! and every organization is constructible from a declarative
//! [`config::SimConfig`] (parsed from a small TOML subset; shipped
//! examples under `examples/*.toml`), which is what `cac run --config`
//! replays traces against.
//!
//! # Hot-path architecture
//!
//! The simulators are built for billions of replayed references (see the
//! module docs of [`cache`] for the full picture):
//!
//! * placement functions are LUT-compiled ([`cac_core::IndexTable`]) at
//!   construction — `set_index` is a single table load, with no dynamic
//!   dispatch on the access path;
//! * cache lines live in flat way-major struct-of-arrays storage with an
//!   invalid-tag sentinel and one packed metadata word per line, and
//!   probes return `(way, set)` so hit and fill paths never recompute an
//!   index;
//! * one-set (fully-associative) geometries — the paper's reference
//!   curve, victim buffers, maximal TLBs — probe and pick victims in
//!   O(1) through [`assoc::AssocIndex`] instead of scanning every way;
//! * batched replay dispatches each chunk to a probe kernel
//!   monomorphized for the cache's shape (ways ∈ {1, 2, 4} ×
//!   replacement policy, plus the fully-associative engine);
//! * whole traces replay through the batched APIs
//!   ([`cache::Cache::run_trace`], [`hierarchy::TwoLevelHierarchy::run_trace`]),
//!   which return per-trace [`CacheStats`] deltas that are byte-identical
//!   to an equivalent per-op loop (`crates/sim/tests/replay_equivalence.rs`
//!   holds the guards);
//! * on-disk traces stream through [`replay`], which refills a reused
//!   chunk buffer from any `cac_trace::io::ChunkSource` (binary or text
//!   reader) and drains it through the same batched path, so external
//!   traces larger than memory replay at in-memory speed;
//! * multi-configuration sweeps run through [`sweep`]: the reference
//!   stream is decoded/generated **once** and broadcast to every model
//!   ([`sweep::Sweep`]), and LRU modulus-indexed size × associativity
//!   grids collapse into a single Mattson stack-distance traversal
//!   ([`sweep::LruStackSweep`]), optionally set-sampled.
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::cache::Cache;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! let mut conventional = Cache::build(geom, IndexSpec::modulo())?;
//! let mut ipoly = Cache::build(geom, IndexSpec::ipoly_skewed())?;
//!
//! // 64 blocks, 4KB apart: a pathological power-of-two stride.
//! for _round in 0..10 {
//!     for i in 0..64u64 {
//!         conventional.read(i * 4096);
//!         ipoly.read(i * 4096);
//!     }
//! }
//! // Conventional indexing thrashes (2 sets hold all 64 blocks);
//! // I-Poly sees only the 64 compulsory misses.
//! assert!(conventional.stats().miss_ratio() > 0.9);
//! assert_eq!(ipoly.stats().misses, 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod assoc;
pub mod cache;
pub mod classify;
pub mod coherence;
pub mod column;
pub mod config;
pub mod hierarchy;
pub mod jouppi;
pub mod journal;
pub mod model;
pub mod mshr;
pub mod pagesize;
pub mod replacement;
pub mod replay;
pub mod stack;
pub mod stats;
pub mod stream;
pub mod sweep;
pub mod tlb;
pub mod victim;
pub mod vm;

pub use analytic::{AnalyticModel, StackHistogram};
pub use cache::{Cache, CacheBuilder, WritePolicy};
pub use classify::{MissKind, ThreeCClassifier};
pub use config::SimConfig;
pub use hierarchy::TwoLevelHierarchy;
pub use model::{AccessOutcome, MemoryModel, ModelStats, ServicePoint};
pub use stack::{Hierarchy, HierarchyBuilder, LevelBuilder};
pub use stats::CacheStats;
pub use sweep::{sweep_refs, LruStackSweep, Sweep};

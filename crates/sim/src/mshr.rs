//! Miss status holding registers for a lockup-free cache (Kroft \[14\]).
//!
//! The paper's processor "has a lockup-free data cache that allows 8
//! outstanding misses to different cache lines" (§4). The CPU model uses
//! this file to decide whether a missing load can issue, merge with an
//! in-flight miss, or must stall.

/// One in-flight miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mshr {
    block: u64,
    ready_at: u64,
}

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the fill completes at the given cycle.
    Allocated {
        /// Cycle at which the line becomes available.
        ready_at: u64,
    },
    /// The block already has an in-flight miss; this access merges with it
    /// (a *secondary* miss) and completes when the primary fill does.
    Merged {
        /// Cycle at which the line becomes available.
        ready_at: u64,
    },
    /// All MSHRs are busy with other blocks; the access must retry later.
    Full,
}

impl MshrOutcome {
    /// The completion cycle, if the access was accepted.
    pub fn ready_at(self) -> Option<u64> {
        match self {
            MshrOutcome::Allocated { ready_at } | MshrOutcome::Merged { ready_at } => {
                Some(ready_at)
            }
            MshrOutcome::Full => None,
        }
    }
}

/// A file of miss status holding registers.
///
/// # Example
///
/// ```
/// use cac_sim::mshr::{MshrFile, MshrOutcome};
///
/// let mut mshrs = MshrFile::new(8);
/// // A miss to block 42 at cycle 100 with a 20-cycle penalty:
/// let out = mshrs.request(42, 100, 20);
/// assert_eq!(out.ready_at(), Some(120));
/// // Another access to the same block merges:
/// assert!(matches!(mshrs.request(42, 105, 20), MshrOutcome::Merged { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
    stats: MshrStats,
}

/// Counters for MSHR behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses (new allocations).
    pub primary: u64,
    /// Secondary misses (merged with an in-flight fill).
    pub secondary: u64,
    /// Requests rejected because the file was full.
    pub rejections: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers (the paper uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            stats: MshrStats::default(),
        }
    }

    /// Presents a missing `block` at cycle `now`; a fresh fill completes
    /// after `penalty` cycles. Retires completed entries first.
    pub fn request(&mut self, block: u64, now: u64, penalty: u64) -> MshrOutcome {
        self.retire(now);
        if let Some(e) = self.entries.iter().find(|e| e.block == block) {
            self.stats.secondary += 1;
            return MshrOutcome::Merged {
                ready_at: e.ready_at,
            };
        }
        if self.entries.len() == self.capacity {
            self.stats.rejections += 1;
            return MshrOutcome::Full;
        }
        let ready_at = now + penalty;
        self.entries.push(Mshr { block, ready_at });
        self.stats.primary += 1;
        MshrOutcome::Allocated { ready_at }
    }

    /// Checks whether `block` has an in-flight miss (without retiring).
    pub fn pending(&self, block: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.ready_at)
    }

    /// Drops entries whose fills completed at or before `now`.
    pub fn retire(&mut self, now: u64) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Number of in-flight misses.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Number of registers in the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all in-flight entries and clears the counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = MshrStats::default();
    }

    /// `true` when no more primary misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_merge() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(1, 0, 20), MshrOutcome::Allocated { ready_at: 20 });
        assert_eq!(m.request(1, 5, 20), MshrOutcome::Merged { ready_at: 20 });
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.stats().primary, 1);
        assert_eq!(m.stats().secondary, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(2);
        m.request(1, 0, 20);
        m.request(2, 0, 20);
        assert!(m.is_full());
        assert_eq!(m.request(3, 1, 20), MshrOutcome::Full);
        assert_eq!(m.stats().rejections, 1);
    }

    #[test]
    fn retirement_frees_slots() {
        let mut m = MshrFile::new(1);
        m.request(1, 0, 10);
        assert_eq!(m.request(2, 5, 10), MshrOutcome::Full);
        // At cycle 10 the first fill is done.
        assert_eq!(
            m.request(2, 10, 10),
            MshrOutcome::Allocated { ready_at: 20 }
        );
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn pending_lookup() {
        let mut m = MshrFile::new(4);
        m.request(7, 0, 20);
        assert_eq!(m.pending(7), Some(20));
        assert_eq!(m.pending(8), None);
    }

    #[test]
    fn paper_configuration_eight_outstanding() {
        let mut m = MshrFile::new(8);
        for b in 0..8u64 {
            assert!(matches!(m.request(b, 0, 20), MshrOutcome::Allocated { .. }));
        }
        assert_eq!(m.request(9, 0, 20), MshrOutcome::Full);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}

//! Three-C miss classification.
//!
//! The paper's argument rests on separating **conflict** misses from
//! compulsory and capacity misses (§2, §5: "If conflict misses are
//! eliminated, the miss ratio depends solely on compulsory and capacity
//! misses"). The standard classification (Hill) is implemented here:
//!
//! * **compulsory** — the block was never referenced before (an infinite
//!   cache would miss too);
//! * **capacity** — a fully-associative LRU cache of the same capacity
//!   would also miss;
//! * **conflict** — only the real (set-indexed) cache misses.

use crate::cache::Cache;
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};
use std::collections::HashSet;

/// The classification of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// The access hit in the cache under test.
    Hit,
    /// First-ever reference to the block.
    Compulsory,
    /// A fully-associative cache of equal capacity would also have missed.
    Capacity,
    /// Attributable purely to the placement function.
    Conflict,
}

/// Per-kind counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifiedStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Compulsory (cold) misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl ClassifiedStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Conflict misses as a fraction of all accesses — the quantity the
    /// I-Poly function is designed to eliminate.
    pub fn conflict_miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.conflict as f64 / self.accesses() as f64
        }
    }

    /// Overall miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

/// Classifies the misses of a cache under test by running an infinite
/// cache and an equal-capacity fully-associative LRU cache alongside it.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
/// use cac_sim::classify::{MissKind, ThreeCClassifier};
///
/// let geom = CacheGeometry::new(1024, 32, 1)?; // 32 lines direct-mapped
/// let mut c = ThreeCClassifier::new(geom, IndexSpec::modulo())?;
/// assert_eq!(c.read(0), MissKind::Compulsory);
/// assert_eq!(c.read(0), MissKind::Hit);
/// // A block one cache-size away conflicts in a direct-mapped cache:
/// c.read(1024);
/// assert_eq!(c.read(0), MissKind::Conflict);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThreeCClassifier {
    cache: Cache,
    fully: Cache,
    seen: HashSet<u64>,
    stats: ClassifiedStats,
}

impl ThreeCClassifier {
    /// Creates a classifier for a cache of geometry `geom` using placement
    /// `spec`.
    ///
    /// # Errors
    ///
    /// Propagates geometry/spec validation errors.
    pub fn new(geom: CacheGeometry, spec: IndexSpec) -> Result<Self, Error> {
        let fully_geom = CacheGeometry::fully_associative(geom.capacity(), geom.block())?;
        Ok(ThreeCClassifier {
            cache: Cache::build(geom, spec)?,
            fully: Cache::build(fully_geom, IndexSpec::modulo())?,
            seen: HashSet::new(),
            stats: ClassifiedStats::default(),
        })
    }

    /// Performs a read and classifies it.
    pub fn read(&mut self, addr: u64) -> MissKind {
        self.access(addr, false)
    }

    /// Performs a write and classifies it.
    pub fn write(&mut self, addr: u64) -> MissKind {
        self.access(addr, true)
    }

    /// Performs an access and classifies it.
    pub fn access(&mut self, addr: u64, is_write: bool) -> MissKind {
        let block = self.cache.geometry().block_addr(addr);
        let hit = self.cache.access(addr, is_write).hit;
        // Reference caches always observe the stream as reads so their
        // contents do not depend on the write policy of the cache under
        // test.
        let fully_hit = self.fully.read(addr).hit;
        let first_touch = self.seen.insert(block);
        let kind = if hit {
            MissKind::Hit
        } else if first_touch {
            MissKind::Compulsory
        } else if !fully_hit {
            MissKind::Capacity
        } else {
            MissKind::Conflict
        };
        match kind {
            MissKind::Hit => self.stats.hits += 1,
            MissKind::Compulsory => self.stats.compulsory += 1,
            MissKind::Capacity => self.stats.capacity += 1,
            MissKind::Conflict => self.stats.conflict += 1,
        }
        kind
    }

    /// Per-kind counters.
    pub fn stats(&self) -> ClassifiedStats {
        self.stats
    }

    /// Raw counters of the cache under test.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cache under test.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheGeometry {
        CacheGeometry::new(1024, 32, 1).unwrap() // 32 sets direct-mapped
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = ThreeCClassifier::new(tiny(), IndexSpec::modulo()).unwrap();
        assert_eq!(c.read(0x40), MissKind::Compulsory);
        assert_eq!(c.read(0x40), MissKind::Hit);
    }

    #[test]
    fn conflict_detected_in_direct_mapped() {
        let mut c = ThreeCClassifier::new(tiny(), IndexSpec::modulo()).unwrap();
        // Two blocks 1024 bytes apart share a set but the cache is far
        // from capacity: ping-ponging them is pure conflict.
        c.read(0);
        c.read(1024);
        for _ in 0..4 {
            assert_eq!(c.read(0), MissKind::Conflict);
            assert_eq!(c.read(1024), MissKind::Conflict);
        }
    }

    #[test]
    fn capacity_miss_when_working_set_exceeds_cache() {
        let mut c = ThreeCClassifier::new(tiny(), IndexSpec::modulo()).unwrap();
        // 64 blocks > 32 lines: sweeping twice yields capacity misses on
        // the second pass (LRU evicts everything before reuse).
        for i in 0..64u64 {
            c.read(i * 32);
        }
        let kind = c.read(0);
        assert_eq!(kind, MissKind::Capacity);
    }

    #[test]
    fn ipoly_turns_conflicts_into_hits() {
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let mut conv = ThreeCClassifier::new(geom, IndexSpec::modulo()).unwrap();
        let mut poly = ThreeCClassifier::new(geom, IndexSpec::ipoly_skewed()).unwrap();
        for _ in 0..8 {
            for i in 0..32u64 {
                conv.read(i * 4096);
                poly.read(i * 4096);
            }
        }
        assert!(conv.stats().conflict > 0);
        assert_eq!(poly.stats().conflict, 0);
        assert_eq!(poly.stats().capacity, 0);
        assert_eq!(poly.stats().compulsory, 32);
    }

    #[test]
    fn counters_sum_to_accesses() {
        let mut c = ThreeCClassifier::new(tiny(), IndexSpec::modulo()).unwrap();
        for i in 0..500u64 {
            c.access(i * 97, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 500);
        assert_eq!(s.accesses(), c.cache_stats().accesses);
        assert_eq!(s.misses() + s.hits, 500);
    }

    #[test]
    fn ratios_well_defined() {
        let c = ThreeCClassifier::new(tiny(), IndexSpec::modulo()).unwrap();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        assert_eq!(c.stats().conflict_miss_ratio(), 0.0);
    }
}

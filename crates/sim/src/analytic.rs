//! Analytic miss-ratio models: the fast screening tier in front of the
//! replay engines.
//!
//! Exhaustive simulation pays O(refs) per configuration; a screening
//! service evaluating millions of configurations cannot. This module
//! implements the closed-form predictors the PAPERS.md analytical
//! papers describe (Majumdar/Radhakrishnan's random-placement strategy
//! analysis; the Birthday-Paradox collision bounds) on top of the exact
//! stack-distance histograms [`LruStackSweep`] already produces:
//!
//! * [`lru_curve_from_histogram`] — the **exact** LRU miss-ratio curve
//!   of every associativity of one set count, read off a recorded
//!   [`StackHistogram`] in a single suffix-sum pass (Mattson inclusion:
//!   an access at stack depth `d` misses exactly the caches with at
//!   most `d` ways).
//! * [`AnalyticModel`] — the birthday-bound set-associative predictor:
//!   from the *fully-associative* stack-distance histogram of a
//!   workload, the miss ratio of any `(sets, ways)` cache with
//!   random/hashed placement is predicted in closed form. An access
//!   whose block was last used `d` distinct blocks ago misses iff at
//!   least `ways` of those `d` intervening blocks collide with its set
//!   — a binomial (birthday-collision) tail, [`set_conflict_probability`].
//! * [`birthday_collision_probability`] / [`expected_overflow_blocks`]
//!   — standalone footprint-parameterized collision bounds: how likely
//!   a conflict is at all, and how many blocks of an `m`-block
//!   footprint a `(sets, ways)` cache is expected to spill.
//! * [`prune_dominated`] — the dominance screen used by
//!   `cac sweep --prune analytic`: given predicted miss ratios for the
//!   configurations of one workload, keep only those within a stated
//!   error band of the best prediction; the rest can be skipped without
//!   replaying them.
//!
//! Predictions for hashed placement are approximations — the stated
//! error band is part of the contract, and
//! `crates/sim/tests/analytic_validation.rs` plus `cac analytic
//! validate` measure the error against [`LruStackSweep`] ground truth
//! on every shipped configuration. For modulus placement the same
//! histograms give *exact* answers ([`StackHistogram::misses_at`]), so
//! the screen degrades to simulation quality exactly where the paper's
//! conflict pathologies live.
//!
//! # Example
//!
//! ```
//! use cac_sim::analytic::AnalyticModel;
//! use cac_sim::sweep::LruStackSweep;
//!
//! // One traversal of the workload records the fully-associative
//! // stack-distance histogram...
//! let mut sweep = LruStackSweep::new(32, &[1])?;
//! for i in 0..100_000u64 {
//!     sweep.observe((i.wrapping_mul(0x9E37_79B9) >> 7) & 0xF_FFFF);
//! }
//! // ...from which the model predicts any (sets, ways) organization
//! // without replaying anything.
//! let model = AnalyticModel::from_sweep(&sweep).expect("1-set family present");
//! let dm = model.predict(256, 1).expect("refs observed");
//! let w2 = model.predict(256, 2).expect("refs observed");
//! assert!(dm >= w2); // more ways at a fixed set count never conflict more
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::sweep::LruStackSweep;

/// A recorded stack-distance histogram for one set count: the raw
/// material of every analytic curve in this module.
///
/// `depths[d]` counts accesses that found their block at LRU stack
/// depth `d` (0 = MRU); `cold` counts accesses whose block had never
/// been seen — which makes `cold` also the number of **distinct blocks**
/// (the workload's footprint) observed. `refs` is the total number of
/// observed accesses, `cold + depths.iter().sum()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackHistogram {
    /// Compulsory (first-touch) accesses — equal to the number of
    /// distinct blocks observed.
    pub cold: u64,
    /// `depths[d]` = accesses that hit stack depth `d`.
    pub depths: Vec<u64>,
    /// Total observed accesses (`cold + sum(depths)`).
    pub refs: u64,
}

impl StackHistogram {
    /// Exact LRU misses at associativity `ways` for this set count, by
    /// naive summation: every access at depth `>= ways` plus the cold
    /// misses. This is the reference the one-pass
    /// [`lru_curve_from_histogram`] is tested against.
    pub fn misses_at(&self, ways: u32) -> u64 {
        self.cold + self.depths.iter().skip(ways as usize).sum::<u64>()
    }

    /// The workload footprint in blocks (distinct blocks observed).
    pub fn footprint_blocks(&self) -> u64 {
        self.cold
    }
}

/// The exact LRU miss-ratio curve of one set count over associativities
/// `1..=max_ways`, computed in a single reverse suffix-sum pass:
/// `curve[w - 1]` is the miss ratio at `w` ways (equivalently, of the
/// cache of capacity `sets * w * line`). Monotone non-increasing — more
/// ways (more capacity at a fixed set count) can only hit more (Mattson
/// inclusion).
///
/// Returns an empty vector when the histogram holds no references.
pub fn lru_curve_from_histogram(h: &StackHistogram, max_ways: u32) -> Vec<f64> {
    if h.refs == 0 || max_ways == 0 {
        return Vec::new();
    }
    let refs = h.refs as f64;
    let n = max_ways as usize;
    let mut curve = vec![0.0f64; n];
    // misses(w) = cold + accesses at depth >= w; one suffix sum built
    // from the deep end serves every associativity.
    let mut suffix: u64 = h.depths.iter().skip(n).sum();
    for w in (1..=n).rev() {
        curve[w - 1] = (h.cold + suffix) as f64 / refs;
        suffix += h.depths.get(w - 1).copied().unwrap_or(0);
    }
    curve
}

/// Probability that an access whose block was last used `d` distinct
/// blocks ago misses in a `(sets, ways)` cache with uniform random
/// (hashed) placement: the birthday-collision tail
/// `P(Binomial(d, 1/sets) >= ways)` — at least `ways` of the `d`
/// intervening blocks landed in the victim's set.
///
/// Exact for `sets == 1` (the binomial degenerates to the constant `d`,
/// so the result is the Mattson rule `d >= ways`). `ways == 0` always
/// "misses".
pub fn set_conflict_probability(sets: u32, ways: u32, d: u64) -> f64 {
    if ways == 0 {
        return 1.0;
    }
    if d < u64::from(ways) {
        return 0.0;
    }
    if sets <= 1 {
        // All d intervening blocks share the single set.
        return 1.0;
    }
    let p = 1.0 / f64::from(sets);
    let ratio = p / (1.0 - p); // pmf(k+1)/pmf(k) carries this factor
    let df = d as f64;
    // cdf = P(X <= ways - 1), built from pmf(0) = (1-p)^d upward. When
    // (1-p)^d underflows to zero the true head probability is far below
    // f64 resolution, so tail = 1 is the correct limit.
    let mut pmf = (1.0 - p).powf(df);
    let mut cdf = pmf;
    for k in 0..u64::from(ways - 1) {
        pmf *= (df - k as f64) / (k as f64 + 1.0) * ratio;
        cdf += pmf;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Classic birthday-paradox bound: the probability that placing
/// `blocks` distinct blocks uniformly into `sets` sets produces at
/// least one collision (two blocks in the same set),
/// `1 - prod_{i<m} (1 - i/s)`. Saturates to 1 once `blocks > sets`
/// (pigeonhole).
pub fn birthday_collision_probability(sets: u32, blocks: u64) -> f64 {
    if sets == 0 || blocks > u64::from(sets) {
        return 1.0;
    }
    let s = f64::from(sets);
    let mut no_collision = 1.0f64;
    for i in 1..blocks {
        no_collision *= 1.0 - i as f64 / s;
        if no_collision <= f64::MIN_POSITIVE {
            return 1.0;
        }
    }
    1.0 - no_collision
}

/// Expected number of blocks of an `m = footprint_blocks` block
/// footprint that a `(sets, ways)` cache cannot hold simultaneously
/// under uniform random placement: `m - sets * E[min(X, ways)]` with
/// `X ~ Binomial(m, 1/sets)` — each set retains at most `ways` of the
/// blocks hashed into it, the rest overflow (conflict even though the
/// total capacity may suffice).
pub fn expected_overflow_blocks(sets: u32, ways: u32, footprint_blocks: u64) -> f64 {
    if sets == 0 || footprint_blocks == 0 {
        return 0.0;
    }
    let m = footprint_blocks as f64;
    if sets == 1 {
        return (m - f64::from(ways)).max(0.0);
    }
    let p = 1.0 / f64::from(sets);
    let ratio = p / (1.0 - p);
    // E[min(X, w)] = sum_{k < w} k pmf(k) + w P(X >= w).
    let mut pmf = (1.0 - p).powf(m);
    let mut cdf = pmf;
    let mut partial_mean = 0.0;
    for k in 0..u64::from(ways.saturating_sub(1)) {
        pmf *= (m - k as f64) / (k as f64 + 1.0) * ratio;
        cdf += pmf;
        partial_mean += (k as f64 + 1.0) * pmf;
    }
    let retained_per_set = partial_mean + f64::from(ways) * (1.0 - cdf).max(0.0);
    (m - f64::from(sets) * retained_per_set).max(0.0)
}

/// The birthday-bound set-associative miss-ratio predictor: wraps a
/// workload's **fully-associative** stack-distance histogram and
/// predicts any `(sets, ways)` organization with random/hashed
/// placement in closed form — no replay.
///
/// The model: an access at fully-associative stack depth `d` has had
/// `d` distinct blocks touched since its block was last used. Under
/// uniform placement those are `d` independent Bernoulli(1/sets) trials
/// on the victim's set, so the access misses with probability
/// [`set_conflict_probability`]`(sets, ways, d)`. Summing over the
/// histogram (plus the compulsory cold misses) yields the predicted
/// miss ratio. For `sets = 1` the prediction is exact; accuracy for
/// hashed placement is measured by `cac analytic validate`.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    hist: StackHistogram,
}

impl AnalyticModel {
    /// Wraps a fully-associative (single-set) stack-distance histogram.
    pub fn from_histogram(hist: StackHistogram) -> Self {
        AnalyticModel { hist }
    }

    /// Extracts the fully-associative histogram from a stack sweep, or
    /// `None` if the sweep was not configured with a 1-set family.
    pub fn from_sweep(sweep: &LruStackSweep) -> Option<Self> {
        sweep.histogram(1).map(AnalyticModel::from_histogram)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &StackHistogram {
        &self.hist
    }

    /// The workload footprint in blocks (distinct blocks observed).
    pub fn footprint_blocks(&self) -> u64 {
        self.hist.footprint_blocks()
    }

    /// Predicted miss ratio of a `(sets, ways)` cache with
    /// random/hashed placement, or `None` before any reference was
    /// observed or for `ways == 0`.
    pub fn predict(&self, sets: u32, ways: u32) -> Option<f64> {
        if self.hist.refs == 0 || ways == 0 {
            return None;
        }
        let mut expected_misses = self.hist.cold as f64;
        for (d, &count) in self.hist.depths.iter().enumerate() {
            if count == 0 {
                continue;
            }
            expected_misses += count as f64 * set_conflict_probability(sets, ways, d as u64);
        }
        Some((expected_misses / self.hist.refs as f64).clamp(0.0, 1.0))
    }
}

/// The dominance screen: given the predicted miss ratios of every
/// configuration of one workload, returns a keep-flag per
/// configuration. A configuration survives iff its prediction is within
/// `band` (an absolute miss-ratio margin) of the best prediction;
/// strictly dominated configurations — predicted worse than the best by
/// more than the error band — are pruned and need not be replayed.
///
/// Sound whenever the predictor's absolute error is below `band / 2`
/// for every configuration: a pruned configuration's true miss ratio
/// then cannot beat the true best survivor. Non-finite predictions are
/// never pruned (no evidence to screen on).
pub fn prune_dominated(predicted: &[f64], band: f64) -> Vec<bool> {
    let best = predicted
        .iter()
        .copied()
        .filter(|p| p.is_finite())
        .fold(f64::INFINITY, f64::min);
    predicted
        .iter()
        .map(|&p| !p.is_finite() || best.is_infinite() || p <= best + band)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(cold: u64, depths: &[u64]) -> StackHistogram {
        StackHistogram {
            cold,
            refs: cold + depths.iter().sum::<u64>(),
            depths: depths.to_vec(),
        }
    }

    #[test]
    fn curve_matches_naive_and_is_monotone() {
        let h = hist(7, &[40, 11, 0, 5, 2]);
        let curve = lru_curve_from_histogram(&h, 8);
        assert_eq!(curve.len(), 8);
        for w in 1..=8u32 {
            let naive = h.misses_at(w) as f64 / h.refs as f64;
            assert!(
                (curve[w as usize - 1] - naive).abs() < 1e-15,
                "w={w}: {} vs {naive}",
                curve[w as usize - 1]
            );
        }
        for pair in curve.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-15);
        }
        assert!(lru_curve_from_histogram(&hist(0, &[]), 4).is_empty());
        assert!(lru_curve_from_histogram(&h, 0).is_empty());
    }

    #[test]
    fn conflict_probability_degenerates_exactly() {
        // sets = 1: the Mattson rule d >= w.
        assert_eq!(set_conflict_probability(1, 2, 1), 0.0);
        assert_eq!(set_conflict_probability(1, 2, 2), 1.0);
        // d < w can never assemble w competitors.
        assert_eq!(set_conflict_probability(64, 4, 3), 0.0);
        // w = 0 always misses; probabilities stay in [0, 1].
        assert_eq!(set_conflict_probability(64, 0, 10), 1.0);
        for d in [0u64, 1, 5, 50, 500, 50_000] {
            let p = set_conflict_probability(128, 2, d);
            assert!((0.0..=1.0).contains(&p), "d={d}: {p}");
        }
        // Monotone in d, antitone in sets and ways.
        assert!(set_conflict_probability(128, 2, 300) >= set_conflict_probability(128, 2, 200));
        assert!(set_conflict_probability(128, 2, 200) >= set_conflict_probability(256, 2, 200));
        assert!(set_conflict_probability(128, 2, 200) >= set_conflict_probability(128, 4, 200));
    }

    #[test]
    fn conflict_probability_matches_direct_binomial() {
        // Small case checked against a direct binomial sum:
        // P(Bin(4, 1/4) >= 1) = 1 - (3/4)^4.
        let got = set_conflict_probability(4, 1, 4);
        let expect = 1.0 - 0.75f64.powi(4);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
        // P(Bin(3, 1/2) >= 2) = 3 * (1/2)^3 + (1/2)^3 = 0.5.
        let got = set_conflict_probability(2, 2, 3);
        assert!((got - 0.5).abs() < 1e-12, "{got}");
    }

    #[test]
    fn birthday_paradox_landmark() {
        // 23 people, 365 days: the canonical ~50.7%.
        let p = birthday_collision_probability(365, 23);
        assert!((p - 0.5073).abs() < 1e-3, "{p}");
        assert_eq!(birthday_collision_probability(8, 9), 1.0);
        assert_eq!(birthday_collision_probability(8, 1), 0.0);
    }

    #[test]
    fn overflow_bounds_make_sense() {
        // Footprint far below capacity: essentially nothing spills.
        assert!(expected_overflow_blocks(256, 2, 16) < 0.5);
        // Footprint far above capacity: nearly everything past capacity
        // spills.
        let over = expected_overflow_blocks(4, 1, 1000);
        assert!(over > 990.0, "{over}");
        // Fully associative: exact max(m - ways, 0).
        assert_eq!(expected_overflow_blocks(1, 8, 5), 0.0);
        assert_eq!(expected_overflow_blocks(1, 8, 13), 5.0);
        assert_eq!(expected_overflow_blocks(64, 2, 0), 0.0);
    }

    #[test]
    fn model_is_exact_fully_associative_and_monotone() {
        let h = hist(10, &[100, 50, 20, 10, 5, 2, 1]);
        let model = AnalyticModel::from_histogram(h.clone());
        // sets = 1 reduces to the exact Mattson rule.
        for w in 1..=8u32 {
            let exact = h.misses_at(w) as f64 / h.refs as f64;
            let got = model.predict(1, w).unwrap();
            assert!((got - exact).abs() < 1e-12, "w={w}: {got} vs {exact}");
        }
        // More ways or more sets never predict more misses.
        for (s, w) in [(2u32, 1u32), (4, 1), (4, 2), (64, 2)] {
            let base = model.predict(s, w).unwrap();
            assert!(model.predict(s * 2, w).unwrap() <= base + 1e-12);
            assert!(model.predict(s, w * 2).unwrap() <= base + 1e-12);
        }
        assert!(model.predict(4, 0).is_none());
        let empty = AnalyticModel::from_histogram(hist(0, &[]));
        assert!(empty.predict(4, 1).is_none());
    }

    #[test]
    fn pruning_keeps_the_band_and_never_the_dominated() {
        let keep = prune_dominated(&[0.10, 0.12, 0.30, 0.101], 0.05);
        assert_eq!(keep, vec![true, true, false, true]);
        // Ties all survive; NaN is never pruned.
        assert_eq!(prune_dominated(&[0.2, 0.2], 0.0), vec![true, true]);
        assert_eq!(
            prune_dominated(&[f64::NAN, 0.5], 0.1),
            vec![true, true],
            "non-finite predictions must survive"
        );
        assert!(prune_dominated(&[], 0.1).is_empty());
    }
}

//! Stream buffers — the prefetch half of Jouppi's proposal \[13\].
//!
//! The paper's related work (§2) cites "Improving Direct-Mapped Cache
//! Performance by the Addition of a Small Fully-Associative Cache and
//! Prefetch Buffers": a direct-mapped cache augmented with a *victim
//! cache* (see [`crate::victim`]) and **stream buffers** — small FIFOs
//! that, on a miss, start prefetching the blocks sequentially following
//! the miss address. Stream buffers attack a different miss class than
//! pseudo-random placement: they help *sequential* compulsory/capacity
//! misses but do nothing for the repetitive power-of-two conflicts the
//! I-Poly function removes — a contrast the organization comparison
//! (E10/E11) can now measure.
//!
//! The model: `N` buffers of `depth` entries. A cache miss first checks
//! the *head* of each buffer; a head hit moves the block into the cache
//! and shifts that buffer (prefetching one more block). A full miss
//! reallocates the least-recently-used buffer to the new stream. Only
//! head hits count (Jouppi's original policy).
//!
//! # Example
//!
//! ```
//! use cac_core::CacheGeometry;
//! use cac_sim::stream::StreamBufferCache;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 1)?;
//! let mut c = StreamBufferCache::new(geom, 4, 4)?;
//! // A long sequential scan: after the first miss per stream, the
//! // buffers supply the blocks.
//! for i in 0..4096u64 {
//!     c.read(i * 8);
//! }
//! let s = c.stats();
//! assert!(s.stream_hits > s.misses, "{s:?}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::Cache;
use crate::model::{extra, AccessOutcome, MemoryModel, ModelStats, ServicePoint};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};
use cac_trace::MemRef;
use std::collections::VecDeque;

/// One prefetch FIFO: block addresses in ascending order.
#[derive(Debug, Clone)]
struct StreamBuffer {
    /// Prefetched block addresses (front = head, the only hit-checkable
    /// entry under Jouppi's policy).
    fifo: VecDeque<u64>,
    /// Next block address the buffer would prefetch.
    next: u64,
    /// LRU stamp for reallocation.
    last_used: u64,
}

/// Counters for a [`StreamBufferCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total read accesses.
    pub accesses: u64,
    /// Hits in the cache proper.
    pub cache_hits: u64,
    /// Misses satisfied by a stream-buffer head.
    pub stream_hits: u64,
    /// Misses that went to the next level (and allocated a stream).
    pub misses: u64,
    /// Blocks prefetched that were flushed unused (reallocation waste).
    pub flushed_unused: u64,
    /// Stores presented and passed through untouched (stream buffers are
    /// a read-prefetch mechanism; the paper's L1 is no-write-allocate).
    pub bypassed_stores: u64,
}

impl StreamStats {
    /// Effective miss ratio after stream buffers: `misses / accesses`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of cache misses rescued by the buffers.
    pub fn rescue_rate(&self) -> f64 {
        let cache_misses = self.stream_hits + self.misses;
        if cache_misses == 0 {
            0.0
        } else {
            self.stream_hits as f64 / cache_misses as f64
        }
    }
}

/// A cache (any placement) fronted by Jouppi-style sequential stream
/// buffers.
#[derive(Debug)]
pub struct StreamBufferCache {
    cache: Cache,
    buffers: Vec<StreamBuffer>,
    /// Flat tag store over the buffer heads (`heads[i]` mirrors
    /// `buffers[i].fifo.front()`), so the head-hit check scans one
    /// contiguous array. A plain array rather than a hash map because
    /// two streams may legally converge on the same head block, and the
    /// first match must win.
    heads: Vec<u64>,
    /// Configured buffer count (`Vec::capacity` only promises "at
    /// least", so it cannot serve as the limit).
    capacity: usize,
    depth: usize,
    clock: u64,
    stats: StreamStats,
}

impl StreamBufferCache {
    /// Creates a direct-mapped conventional cache with `buffers` stream
    /// buffers of `depth` blocks each (Jouppi's configuration: 4 × 4).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if `buffers` or `depth` is zero,
    /// plus any geometry error.
    pub fn new(geom: CacheGeometry, buffers: usize, depth: usize) -> Result<Self, Error> {
        Self::with_spec(geom, IndexSpec::modulo(), buffers, depth)
    }

    /// Creates the cache with an explicit placement function, so stream
    /// buffers can be combined with I-Poly placement.
    ///
    /// # Errors
    ///
    /// See [`StreamBufferCache::new`].
    pub fn with_spec(
        geom: CacheGeometry,
        spec: IndexSpec,
        buffers: usize,
        depth: usize,
    ) -> Result<Self, Error> {
        if buffers == 0 {
            return Err(Error::OutOfRange {
                what: "stream buffers",
                value: 0,
                constraint: ">= 1",
            });
        }
        if depth == 0 {
            return Err(Error::OutOfRange {
                what: "stream buffer depth",
                value: 0,
                constraint: ">= 1",
            });
        }
        Ok(StreamBufferCache {
            cache: Cache::build(geom, spec)?,
            buffers: Vec::with_capacity(buffers),
            heads: Vec::with_capacity(buffers),
            capacity: buffers,
            depth,
            clock: 0,
            stats: StreamStats::default(),
        })
    }

    /// Maximum number of stream buffers.
    pub fn num_buffers(&self) -> usize {
        self.capacity
    }

    /// Performs a read. Stores are not modelled: Jouppi's buffers are a
    /// read-prefetch mechanism and the paper's L1 is no-write-allocate.
    pub fn read(&mut self, addr: u64) -> StreamOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let block = self.cache.geometry().block_addr(addr);

        if self.cache.probe_block(block).is_some() {
            let _ = self.cache.read(addr);
            self.stats.cache_hits += 1;
            return StreamOutcome::CacheHit;
        }

        // Check stream-buffer heads: one scan over the flat tag store.
        if let Some(bi) = self.heads.iter().position(|&h| h == block) {
            let buffer = &mut self.buffers[bi];
            buffer.fifo.pop_front();
            buffer.last_used = self.clock;
            // Top the buffer back up.
            while buffer.fifo.len() < self.depth {
                buffer.fifo.push_back(buffer.next);
                buffer.next += 1;
            }
            self.heads[bi] = *buffer.fifo.front().expect("stream topped up");
            self.cache.fill_block(block);
            self.stats.stream_hits += 1;
            return StreamOutcome::StreamHit;
        }

        // Full miss: fetch the block and (re)allocate a stream buffer
        // starting right after it.
        self.cache.fill_block(block);
        self.stats.misses += 1;
        let mut fifo = VecDeque::with_capacity(self.depth);
        for i in 1..=self.depth as u64 {
            fifo.push_back(block + i);
        }
        let head = *fifo.front().expect("depth >= 1");
        let fresh = StreamBuffer {
            fifo,
            next: block + self.depth as u64 + 1,
            last_used: self.clock,
        };
        if self.buffers.len() < self.capacity {
            self.buffers.push(fresh);
            self.heads.push(head);
        } else {
            let lru = self
                .buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_used)
                .map(|(i, _)| i)
                .expect("at least one buffer");
            self.stats.flushed_unused += self.buffers[lru].fifo.len() as u64;
            self.buffers[lru] = fresh;
            self.heads[lru] = head;
        }
        StreamOutcome::Miss
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The underlying cache's own counters (note: stream-buffer fills are
    /// counted there as ordinary fills).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Invalidates all contents (cache and buffers) and clears counters.
    pub fn reset(&mut self) {
        self.cache.flush();
        self.buffers.clear();
        self.heads.clear();
        self.clock = 0;
        self.stats = StreamStats::default();
    }
}

impl MemoryModel for StreamBufferCache {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        if r.is_write {
            self.stats.bypassed_stores += 1;
            return AccessOutcome::bypass();
        }
        match self.read(r.addr) {
            StreamOutcome::CacheHit => AccessOutcome::hit_at(ServicePoint::Level(0)),
            StreamOutcome::StreamHit => AccessOutcome::hit_at(ServicePoint::Stream(0)),
            StreamOutcome::Miss => AccessOutcome {
                filled: true,
                ..AccessOutcome::miss()
            },
        }
    }

    fn stats(&self) -> ModelStats {
        let s = self.stats;
        let demand = CacheStats {
            accesses: s.accesses,
            hits: s.cache_hits + s.stream_hits,
            misses: s.misses,
            reads: s.accesses,
            read_misses: s.misses,
            ..CacheStats::default()
        };
        let mut m = ModelStats::single("stream", demand);
        m.extras = vec![
            extra("cache-hits", s.cache_hits),
            extra("stream-hits", s.stream_hits),
            extra("flushed-unused", s.flushed_unused),
            extra("stores-bypassed", s.bypassed_stores),
        ];
        m
    }

    fn reset(&mut self) {
        StreamBufferCache::reset(self);
    }

    fn describe(&self) -> String {
        format!(
            "{}, {} placement + {}x{} stream buffers",
            self.cache.geometry(),
            self.cache.index_fn().label(),
            self.capacity,
            self.depth
        )
    }
}

/// Where a [`StreamBufferCache::read`] was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOutcome {
    /// Hit in the cache proper.
    CacheHit,
    /// Head hit in a stream buffer (one next-level fetch already done).
    StreamHit,
    /// Full miss: fetched from the next level.
    Miss,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 1).unwrap()
    }

    #[test]
    fn validation() {
        assert!(StreamBufferCache::new(geom(), 0, 4).is_err());
        assert!(StreamBufferCache::new(geom(), 4, 0).is_err());
        assert!(StreamBufferCache::new(geom(), 4, 4).is_ok());
    }

    #[test]
    fn sequential_stream_is_rescued() {
        let mut c = StreamBufferCache::new(geom(), 4, 4).unwrap();
        // 1024 sequential blocks (beyond cache capacity): one real miss,
        // then the stream buffer supplies everything.
        for i in 0..1024u64 {
            c.read(i * 32);
        }
        let s = c.stats();
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.stream_hits, 1023);
        assert!(s.rescue_rate() > 0.99);
    }

    #[test]
    fn interleaved_streams_fit_in_separate_buffers() {
        let mut c = StreamBufferCache::new(geom(), 4, 4).unwrap();
        // Three interleaved sequential streams far apart.
        for i in 0..512u64 {
            c.read(i * 32);
            c.read(0x1000_0000 + i * 32);
            c.read(0x2000_0000 + i * 32);
        }
        let s = c.stats();
        assert_eq!(s.misses, 3, "one allocation per stream: {s:?}");
    }

    #[test]
    fn too_many_streams_thrash_the_buffers() {
        let mut c = StreamBufferCache::new(geom(), 2, 4).unwrap();
        // Six interleaved streams over two buffers: constant reallocation.
        for i in 0..64u64 {
            for s in 0..6u64 {
                c.read((s << 28) + i * 32);
            }
        }
        let s = c.stats();
        assert!(s.misses > 300, "{s:?}");
        assert!(s.flushed_unused > 0);
    }

    #[test]
    fn conflict_misses_are_not_rescued() {
        // The E10/E11 contrast: a power-of-two column stride is non-
        // sequential, so stream buffers do nothing for it.
        let mut c = StreamBufferCache::new(geom(), 4, 4).unwrap();
        for _pass in 0..8 {
            for i in 0..64u64 {
                c.read(i * 4096);
            }
        }
        let s = c.stats();
        assert!(s.stream_hits == 0, "{s:?}");
        assert!(s.miss_ratio() > 0.5);
    }

    #[test]
    fn cache_hits_do_not_touch_buffers() {
        let mut c = StreamBufferCache::new(geom(), 4, 4).unwrap();
        c.read(0x40);
        assert_eq!(c.read(0x40), StreamOutcome::CacheHit);
        assert_eq!(c.read(0x48), StreamOutcome::CacheHit); // same block
        assert_eq!(c.stats().cache_hits, 2);
    }

    #[test]
    fn head_only_policy() {
        let mut c = StreamBufferCache::new(geom(), 1, 4).unwrap();
        c.read(0); // allocates stream prefetching blocks 1..=4
                   // Skipping the head (block 1) to block 2 is NOT a stream hit under
                   // the head-only policy: it reallocates the buffer.
        assert_eq!(c.read(2 * 32), StreamOutcome::Miss);
    }

    #[test]
    fn works_with_ipoly_placement() {
        let g2 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let mut c = StreamBufferCache::with_spec(g2, IndexSpec::ipoly_skewed(), 4, 4).unwrap();
        for i in 0..512u64 {
            c.read(i * 32);
        }
        assert!(c.stats().rescue_rate() > 0.9);
    }
}

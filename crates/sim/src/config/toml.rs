//! A minimal TOML-subset reader for the declarative config layer.
//!
//! The build environment has no crate registry (see `crates/shims/`), so
//! rather than depending on `serde`/`toml` this module implements the
//! small slice of TOML the [`SimConfig`](crate::config::SimConfig) files
//! actually use:
//!
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * values: `"strings"` (with `\"`, `\\`, `\n`, `\t` escapes), integers
//!   (optionally with `_` separators or a `0x` prefix), booleans, and
//!   flat arrays of those scalars;
//! * `[section]` tables and `[[section]]` arrays-of-tables;
//! * `#` comments and blank lines.
//!
//! Dotted keys, inline tables, floats, dates and multi-line strings are
//! **not** supported and produce a clear parse error with the offending
//! line number. That is deliberate: a shipped config that strays off the
//! subset should fail `cac config validate` loudly, not silently.

use cac_core::Error;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer (decimal, `_`-separated or `0x` hex).
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// An ordered set of `key = value` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    pairs: Vec<(String, Value)>,
}

impl Table {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All keys, in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }

    /// `true` if the table has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    fn insert(&mut self, key: String, value: Value, line: usize) -> Result<(), Error> {
        if self.get(&key).is_some() {
            return Err(Error::config(format!("line {line}: duplicate key {key:?}")));
        }
        self.pairs.push((key, value));
        Ok(())
    }
}

/// One `[name]` or `[[name]]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name.
    pub name: String,
    /// `true` for `[[name]]` array-of-tables entries.
    pub array: bool,
    /// The section's pairs.
    pub table: Table,
}

/// A parsed document: top-level pairs plus sections in file order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    /// Pairs before the first section header.
    pub root: Table,
    /// Sections, in file order (`[[x]]` appears once per entry).
    pub sections: Vec<Section>,
}

impl Doc {
    /// The single `[name]` section, if present.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if the section appears more than once.
    pub fn section(&self, name: &str) -> Result<Option<&Table>, Error> {
        let mut found = None;
        for s in self.sections.iter().filter(|s| s.name == name) {
            if found.is_some() {
                return Err(Error::config(format!("section [{name}] appears twice")));
            }
            found = Some(&s.table);
        }
        Ok(found)
    }

    /// All `[[name]]` entries, in file order.
    pub fn section_array(&self, name: &str) -> Vec<&Table> {
        self.sections
            .iter()
            .filter(|s| s.name == name && s.array)
            .map(|s| &s.table)
            .collect()
    }

    /// Names of all sections present, deduplicated, in first-appearance
    /// order.
    pub fn section_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.sections {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }
}

/// Parses a document.
///
/// # Errors
///
/// [`Error::Config`] with the offending line number on any syntax the
/// subset does not cover.
///
/// # Example
///
/// ```
/// let doc = cac_sim::config::toml::parse(
///     "name = \"demo\"\n[cache]\nsize = \"8KiB\"\nways = 2\n",
/// )?;
/// assert_eq!(doc.root.get("name").unwrap().as_str(), Some("demo"));
/// let cache = doc.section("cache")?.unwrap();
/// assert_eq!(cache.get("ways").unwrap().as_int(), Some(2));
/// # Ok::<(), cac_core::Error>(())
/// ```
pub fn parse(input: &str) -> Result<Doc, Error> {
    let mut doc = Doc::default();
    let mut current: Option<usize> = None; // index into doc.sections
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        if raw.len() > MAX_LINE_LEN {
            return Err(Error::config(format!(
                "line {line_no}: line is {} bytes long (limit {MAX_LINE_LEN}); \
                 config files this subset covers never need lines that long",
                raw.len()
            )));
        }
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest.strip_suffix("]]").map(str::trim).ok_or_else(|| {
                Error::config(format!("line {line_no}: malformed [[section]] header"))
            })?;
            check_key(name, line_no)?;
            doc.sections.push(Section {
                name: name.to_owned(),
                array: true,
                table: Table::default(),
            });
            current = Some(doc.sections.len() - 1);
        } else if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').map(str::trim).ok_or_else(|| {
                Error::config(format!("line {line_no}: malformed [section] header"))
            })?;
            check_key(name, line_no)?;
            if doc.sections.iter().any(|s| s.name == name && !s.array) {
                return Err(Error::config(format!(
                    "line {line_no}: section [{name}] appears twice"
                )));
            }
            doc.sections.push(Section {
                name: name.to_owned(),
                array: false,
                table: Table::default(),
            });
            current = Some(doc.sections.len() - 1);
        } else {
            let (key, value) = line.split_once('=').ok_or_else(|| {
                Error::config(format!(
                    "line {line_no}: expected `key = value` or a [section] header, got {line:?}"
                ))
            })?;
            let key = key.trim();
            check_key(key, line_no)?;
            let value = parse_value(value.trim(), line_no)?;
            let table = match current {
                Some(idx) => &mut doc.sections[idx].table,
                None => &mut doc.root,
            };
            table.insert(key.to_owned(), value, line_no)?;
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (pos, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..pos],
            _ => escaped = false,
        }
    }
    line
}

fn check_key(key: &str, line_no: usize) -> Result<(), Error> {
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(())
    } else {
        Err(Error::config(format!(
            "line {line_no}: invalid key {key:?} (bare keys only: letters, digits, `_`, `-`)"
        )))
    }
}

/// Longest raw line [`parse`] accepts. A generous bound for real
/// configs that keeps pathological input (one multi-megabyte line,
/// e.g. a decompression bomb) from being scanned char by char many
/// times over.
pub const MAX_LINE_LEN: usize = 4096;

fn parse_value(v: &str, line_no: usize) -> Result<Value, Error> {
    if v.is_empty() {
        return Err(Error::config(format!("line {line_no}: missing value")));
    }
    if let Some(body) = v.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| {
            Error::config(format!(
                "line {line_no}: arrays must open and close on one line"
            ))
        })?;
        let mut items = Vec::new();
        for part in split_array(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            // Rejected *before* recursing: a deeply nested `[[[[...`
            // value must not recurse once per bracket (stack overflow
            // on adversarial input).
            if part.starts_with('[') {
                return Err(Error::config(format!(
                    "line {line_no}: nested arrays are not supported"
                )));
            }
            items.push(parse_value(part, line_no)?);
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = v.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| Error::config(format!("line {line_no}: unterminated string {v:?}")))?;
        return Ok(Value::Str(unescape(body, line_no)?));
    }
    match v {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = v.replace('_', "");
    let (parsed, numeric) = if let Some(hex) = digits.strip_prefix("0x") {
        (
            i64::from_str_radix(hex, 16).ok(),
            !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit()),
        )
    } else {
        (
            digits.parse().ok(),
            !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()),
        )
    };
    parsed.map(Value::Int).ok_or_else(|| {
        if numeric {
            Error::config(format!(
                "line {line_no}: integer {v} is out of range (values must fit a \
                 signed 64-bit integer)"
            ))
        } else {
            Error::config(format!(
                "line {line_no}: cannot parse value {v:?} (expected a string, integer, \
                 boolean or flat array)"
            ))
        }
    })
}

/// Splits an array body on commas outside strings.
fn split_array(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (pos, c) in body.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..pos]);
                start = pos + 1;
            }
            _ => escaped = false,
        }
    }
    parts.push(&body[start..]);
    parts
}

fn unescape(s: &str, line_no: usize) -> Result<String, Error> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(Error::config(format!(
                    "line {line_no}: unsupported escape \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_config_shapes() {
        let doc = parse(
            "# demo\nname = \"two level\"  # inline comment\n\
             enabled = true\nseed = 0x5eed\n\
             [hierarchy]\nvirtual-real = true\n\
             [[level]]\nsize = \"8KiB\"\nways = 2\n\
             [[level]]\nsize = \"256KiB\"\n\
             [extras]\nlist = [1, 2, 3]\nnames = [\"a\", \"b,c\"]\n",
        )
        .unwrap();
        assert_eq!(doc.root.get("name").unwrap().as_str(), Some("two level"));
        assert_eq!(doc.root.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(doc.root.get("seed").unwrap().as_int(), Some(0x5eed));
        let levels = doc.section_array("level");
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].get("ways").unwrap().as_int(), Some(2));
        assert_eq!(levels[1].get("size").unwrap().as_str(), Some("256KiB"));
        let extras = doc.section("extras").unwrap().unwrap();
        assert_eq!(
            extras.get("list"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(
            extras.get("names"),
            Some(&Value::Array(vec![
                Value::Str("a".into()),
                Value::Str("b,c".into())
            ]))
        );
        assert_eq!(doc.section_names(), vec!["hierarchy", "level", "extras"]);
        assert!(
            doc.section("level").is_err(),
            "array sections are not single"
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (src, needle) in [
            ("size 8192", "line 1"),
            ("[cache\nx = 1", "malformed"),
            ("x = ", "missing value"),
            ("x = 1\nx = 2", "duplicate key"),
            ("x = \"abc", "unterminated"),
            ("x = 1.5", "cannot parse"),
            ("x = [[1]]", "nested arrays"),
            ("a.b = 1", "invalid key"),
            ("[c]\n[c]\nx = 1", "appears twice"),
            ("x = \"\\q\"", "unsupported escape"),
        ] {
            let err = parse(src).unwrap_err().to_string();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn comments_respect_strings() {
        let doc = parse("x = \"a # b\" # real comment\n").unwrap();
        assert_eq!(doc.root.get("x").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn pathological_input_errors_instead_of_panicking() {
        // Deep array nesting must not recurse per bracket. (Depth is
        // kept under MAX_LINE_LEN so the nesting check, not the line
        // limit, is what fires.)
        let deep = format!("x = {}1{}", "[".repeat(1_500), "]".repeat(1_500));
        let err = parse(&deep).unwrap_err().to_string();
        assert!(err.contains("nested arrays"), "{err}");

        // Past the line limit the length guard fires first — either
        // way, adversarial nesting cannot recurse.
        let vast = format!("x = {}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = parse(&vast).unwrap_err().to_string();
        assert!(err.contains("limit"), "{err}");

        // Overlong lines are rejected with the line number.
        let long = format!("y = 1\nx = \"{}\"", "a".repeat(MAX_LINE_LEN + 1));
        let err = parse(&long).unwrap_err().to_string();
        assert!(err.contains("line 2") && err.contains("limit"), "{err}");

        // Out-of-range integers name the problem, with line numbers.
        for src in ["x = 99999999999999999999", "x = 0xFFFFFFFFFFFFFFFF"] {
            let err = parse(src).unwrap_err().to_string();
            assert!(err.contains("out of range"), "{src} -> {err}");
        }
        // Negative and in-range values still parse.
        assert_eq!(
            parse("x = -5").unwrap().root.get("x").unwrap().as_int(),
            Some(-5)
        );
    }
}

//! Declarative simulation configs: build any [`MemoryModel`] from a
//! serializable description.
//!
//! The ROADMAP's north star — "as many scenarios as you can imagine" —
//! needs new cache organizations to be a config file, not a code
//! change. [`SimConfig`] is that file's in-memory form: a tagged
//! description of one model, parsed from a small TOML subset (see
//! [`toml`]; no external dependencies — the build environment has no
//! crate registry), validated with paper-grounded error messages, and
//! built into a boxed [`MemoryModel`] the `cac run --config`
//! subcommand replays traces against.
//!
//! One section selects the organization:
//!
//! | section       | model |
//! |---------------|-------|
//! | `[cache]`     | [`crate::cache::Cache`] (any placement/policy) |
//! | `[hierarchy]` + `[[level]]` | generic [`crate::stack::Hierarchy`], or the §3 [`crate::hierarchy::TwoLevelHierarchy`] with `virtual-real = true` |
//! | `[column]`    | [`crate::column::ColumnAssociative`] |
//! | `[victim]`    | [`crate::victim::VictimCache`] |
//! | `[stream]`    | [`crate::stream::StreamBufferCache`] |
//! | `[jouppi]`    | [`crate::jouppi::JouppiCache`] |
//!
//! Shipped examples for every organization in the paper's comparison
//! matrix live under `examples/*.toml`; `cac config validate` keeps
//! them building.

pub mod toml;

use crate::cache::{Cache, WritePolicy};
use crate::column::{ColumnAssociative, RehashKind};
use crate::hierarchy::TwoLevelHierarchy;
use crate::jouppi::JouppiCache;
use crate::model::MemoryModel;
use crate::replacement::ReplacementPolicy;
use crate::stack::{Hierarchy, LevelBuilder};
use crate::stream::StreamBufferCache;
use crate::victim::VictimCache;
use crate::vm::PageMapper;
use cac_core::{parse_size, CacheGeometry, Error, IndexSpec};
use toml::{Table, Value};

/// A cache array description, shared by `[cache]` and `[[level]]`.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Geometry (capacity / line / ways).
    pub geometry: CacheGeometry,
    /// Placement scheme.
    pub index: IndexSpec,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Seed for the random-replacement stream.
    pub seed: u64,
}

impl CacheConfig {
    /// A cache with the paper's defaults (LRU, write-through /
    /// no-write-allocate).
    pub fn new(geometry: CacheGeometry, index: IndexSpec) -> Self {
        CacheConfig {
            geometry,
            index,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            seed: 0x5eed_cace,
        }
    }

    fn build(&self) -> Result<Cache, Error> {
        Cache::builder(self.geometry)
            .index_spec(self.index.clone())
            .replacement(self.replacement)
            .write_policy(self.write_policy)
            .seed(self.seed)
            .build()
    }
}

/// One level of a `[hierarchy]`: a cache plus optional sidecars.
#[derive(Debug, Clone)]
pub struct LevelConfig {
    /// The level's cache array.
    pub cache: CacheConfig,
    /// Victim-buffer sidecar (lines), if attached.
    pub victim_lines: Option<usize>,
    /// Stream-buffer sidecar (buffers, depth), if attached.
    pub stream: Option<(usize, usize)>,
    /// MSHR-file sidecar (registers), if attached.
    pub mshrs: Option<usize>,
    /// Fill latency reported to the MSHR file (cycles).
    pub miss_penalty: u64,
}

impl LevelConfig {
    /// A bare level around `cache` (no sidecars).
    pub fn new(cache: CacheConfig) -> Self {
        LevelConfig {
            cache,
            victim_lines: None,
            stream: None,
            mshrs: None,
            miss_penalty: crate::stack::DEFAULT_MISS_PENALTY,
        }
    }

    fn has_sidecars(&self) -> bool {
        self.victim_lines.is_some() || self.stream.is_some() || self.mshrs.is_some()
    }

    fn level_builder(&self) -> LevelBuilder {
        let mut lb = LevelBuilder::new(self.cache.geometry)
            .index_spec(self.cache.index.clone())
            .replacement(self.cache.replacement)
            .write_policy(self.cache.write_policy)
            .seed(self.cache.seed)
            .miss_penalty(self.miss_penalty);
        if let Some(v) = self.victim_lines {
            lb = lb.victim_buffer(v);
        }
        if let Some((n, d)) = self.stream {
            lb = lb.stream_buffers(n, d);
        }
        if let Some(m) = self.mshrs {
            lb = lb.mshrs(m);
        }
        lb
    }
}

/// Virtual→physical page-mapping description (virtual-real hierarchies
/// only).
#[derive(Debug, Clone)]
pub enum MappingConfig {
    /// Physical address equals virtual address.
    Identity,
    /// Deterministic pseudo-random demand paging.
    Randomized {
        /// Page size in bytes.
        page_size: u64,
        /// Physical memory pool in bytes.
        memory: u64,
        /// Frame-assignment seed.
        seed: u64,
    },
    /// Many-to-one aliasing (`vpn mod frames`).
    Aliased {
        /// Page size in bytes.
        page_size: u64,
        /// Number of physical frames.
        frames: u64,
    },
}

impl MappingConfig {
    fn mapper(&self) -> PageMapper {
        match *self {
            MappingConfig::Identity => PageMapper::identity(),
            MappingConfig::Randomized {
                page_size,
                memory,
                seed,
            } => PageMapper::randomized(page_size, memory, seed),
            MappingConfig::Aliased { page_size, frames } => PageMapper::aliased(page_size, frames),
        }
    }
}

/// A multi-level hierarchy description.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// The levels, processor side first.
    pub levels: Vec<LevelConfig>,
    /// `true` builds the paper's §3 virtual-real
    /// [`TwoLevelHierarchy`] (exactly two levels, no sidecars);
    /// `false` builds the generic physical [`Hierarchy`].
    pub virtual_real: bool,
    /// Inclusion enforcement (generic stacks only; the virtual-real
    /// hierarchy always enforces it).
    pub inclusion: bool,
    /// Page mapping (virtual-real only).
    pub mapping: MappingConfig,
}

/// A column-associative cache description (§3.1 option 4).
#[derive(Debug, Clone)]
pub struct ColumnConfig {
    /// Geometry (interpreted direct-mapped).
    pub geometry: CacheGeometry,
    /// Second-probe function.
    pub rehash: RehashKind,
}

/// A victim-cache description (Jouppi's first half).
#[derive(Debug, Clone)]
pub struct VictimConfig {
    /// Main-cache geometry.
    pub geometry: CacheGeometry,
    /// Victim-buffer lines.
    pub victim_lines: usize,
}

/// A stream-buffer cache description (Jouppi's second half).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Cache geometry.
    pub geometry: CacheGeometry,
    /// Placement scheme.
    pub index: IndexSpec,
    /// Number of stream buffers.
    pub buffers: usize,
    /// Depth of each buffer (blocks).
    pub depth: usize,
}

/// The full Jouppi organization description.
#[derive(Debug, Clone)]
pub struct JouppiConfig {
    /// Main-cache geometry.
    pub geometry: CacheGeometry,
    /// Victim-buffer lines.
    pub victim_lines: usize,
    /// Number of stream buffers.
    pub stream_buffers: usize,
    /// Depth of each stream buffer.
    pub stream_depth: usize,
}

/// A deliberately faulty model for exercising the sweep engine's panic
/// isolation (see [`crate::model::PoisonModel`]). Test-and-demo only.
#[derive(Debug, Clone)]
pub struct PoisonConfig {
    /// Accesses replayed before the model starts panicking.
    pub after: u64,
}

/// The model a [`SimConfig`] describes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ModelConfig {
    /// A single parametric cache.
    Cache(CacheConfig),
    /// A multi-level hierarchy (virtual-real or generic).
    Hierarchy(HierarchyConfig),
    /// A column-associative cache.
    Column(ColumnConfig),
    /// A victim cache.
    Victim(VictimConfig),
    /// A stream-buffer cache.
    Stream(StreamConfig),
    /// The complete Jouppi organization.
    Jouppi(JouppiConfig),
    /// A panic-injection fixture ([`crate::model::PoisonModel`]).
    Poison(PoisonConfig),
}

/// A declarative simulation configuration: an optional name plus one
/// model description. See the [module docs](self) for the file format.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Display name (`name = "..."` at the file's top level).
    pub name: Option<String>,
    /// The model to build.
    pub model: ModelConfig,
}

impl SimConfig {
    /// Wraps a model description without a name.
    pub fn new(model: ModelConfig) -> Self {
        SimConfig { name: None, model }
    }

    /// Shorthand for a single-cache config with the paper's default
    /// policies.
    pub fn cache(geometry: CacheGeometry, index: IndexSpec) -> Self {
        SimConfig::new(ModelConfig::Cache(CacheConfig::new(geometry, index)))
    }

    /// Names the config (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builds the described model.
    ///
    /// # Errors
    ///
    /// Any geometry/placement validation error, plus [`Error::Config`]
    /// for descriptions the organizations cannot realize.
    ///
    /// # Example
    ///
    /// The paper's §4 L1 — 8KB, 2-way, 32-byte lines, skewed I-Poly
    /// placement — as a config:
    ///
    /// ```
    /// use cac_sim::config::SimConfig;
    /// use cac_trace::MemRef;
    ///
    /// let cfg = SimConfig::from_toml_str(
    ///     "name = \"paper section-4 L1\"\n\
    ///      [cache]\n\
    ///      size = \"8KiB\"\n\
    ///      line = 32\n\
    ///      ways = 2\n\
    ///      index = \"ipoly-skew\"\n",
    /// )?;
    /// let mut model = cfg.build()?;
    /// // Figure 1's pathological power-of-two stride: the skewed I-Poly
    /// // organization sees only the 64 compulsory misses.
    /// for _pass in 0..10 {
    ///     for i in 0..64u64 {
    ///         model.access(MemRef { pc: 0, addr: i * 4096, is_write: false });
    ///     }
    /// }
    /// assert_eq!(model.stats().demand.misses, 64);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn build(&self) -> Result<Box<dyn MemoryModel>, Error> {
        match &self.model {
            ModelConfig::Cache(c) => Ok(Box::new(c.build()?)),
            ModelConfig::Hierarchy(h) => build_hierarchy(h),
            ModelConfig::Column(c) => Ok(Box::new(ColumnAssociative::with_rehash(
                c.geometry, c.rehash,
            )?)),
            ModelConfig::Victim(v) => Ok(Box::new(VictimCache::new(v.geometry, v.victim_lines)?)),
            ModelConfig::Stream(s) => Ok(Box::new(StreamBufferCache::with_spec(
                s.geometry,
                s.index.clone(),
                s.buffers,
                s.depth,
            )?)),
            ModelConfig::Jouppi(j) => Ok(Box::new(JouppiCache::new(
                j.geometry,
                j.victim_lines,
                j.stream_buffers,
                j.stream_depth,
            )?)),
            ModelConfig::Poison(p) => Ok(Box::new(crate::model::PoisonModel::new(p.after))),
        }
    }

    /// The geometry of the model's primary (closest-to-CPU) cache:
    /// level 1 for hierarchies, the main array for
    /// column/victim/stream/Jouppi organizations. `None` for models
    /// without a cache array (the poison fixture). This is the geometry
    /// the [`analytic`](crate::analytic) tier predicts for.
    pub fn primary_geometry(&self) -> Option<CacheGeometry> {
        match &self.model {
            ModelConfig::Cache(c) => Some(c.geometry),
            ModelConfig::Hierarchy(h) => h.levels.first().map(|l| l.cache.geometry),
            ModelConfig::Column(c) => Some(c.geometry),
            ModelConfig::Victim(v) => Some(v.geometry),
            ModelConfig::Stream(s) => Some(s.geometry),
            ModelConfig::Jouppi(j) => Some(j.geometry),
            ModelConfig::Poison(_) => None,
        }
    }

    /// The placement scheme of the model's primary cache.
    /// Column/victim/Jouppi primary arrays are modulus-indexed by
    /// construction; `None` for models without a cache array. Paired
    /// with [`SimConfig::primary_geometry`], this tells the analytic
    /// tier which estimator applies (exact Mattson curves for modulus
    /// placement, the binomial model for hashed placement).
    pub fn primary_index(&self) -> Option<IndexSpec> {
        match &self.model {
            ModelConfig::Cache(c) => Some(c.index.clone()),
            ModelConfig::Hierarchy(h) => h.levels.first().map(|l| l.cache.index.clone()),
            ModelConfig::Column(_) | ModelConfig::Victim(_) | ModelConfig::Jouppi(_) => {
                Some(IndexSpec::modulo())
            }
            ModelConfig::Stream(s) => Some(s.index.clone()),
            ModelConfig::Poison(_) => None,
        }
    }

    /// Parses a config document.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] on syntax errors, unknown sections/keys, or
    /// descriptions that fail validation.
    pub fn from_toml_str(input: &str) -> Result<SimConfig, Error> {
        let doc = toml::parse(input)?;
        check_keys(&doc.root, &["name", "description"], "the file's top level")?;
        let name = opt_str(&doc.root, "name")?;

        let model_sections: Vec<&str> = doc
            .section_names()
            .into_iter()
            .filter(|n| {
                matches!(
                    *n,
                    "cache" | "hierarchy" | "column" | "victim" | "stream" | "jouppi" | "poison"
                )
            })
            .collect();
        let has_levels = !doc.section_array("level").is_empty();
        let model = match (model_sections.as_slice(), has_levels) {
            (["cache"], false) => ModelConfig::Cache(parse_cache_table(
                doc.section("cache")?.expect("present"),
                &[],
            )?),
            (["hierarchy"], _) => ModelConfig::Hierarchy(parse_hierarchy(&doc)?),
            (["column"], false) => {
                ModelConfig::Column(parse_column(doc.section("column")?.expect("present"))?)
            }
            (["victim"], false) => {
                ModelConfig::Victim(parse_victim(doc.section("victim")?.expect("present"))?)
            }
            (["stream"], false) => {
                ModelConfig::Stream(parse_stream(doc.section("stream")?.expect("present"))?)
            }
            (["jouppi"], false) => {
                ModelConfig::Jouppi(parse_jouppi(doc.section("jouppi")?.expect("present"))?)
            }
            (["poison"], false) => {
                let table = doc.section("poison")?.expect("present");
                check_keys(table, &["after"], "[poison]")?;
                ModelConfig::Poison(PoisonConfig {
                    after: get_u64(table, "after", 0)?,
                })
            }
            ([], false) => {
                return Err(Error::config(
                    "no model section; add one of [cache], [hierarchy] (with [[level]] \
                     entries), [column], [victim], [stream] or [jouppi]",
                ))
            }
            (_, true) if model_sections != ["hierarchy"] => {
                return Err(Error::config(
                    "[[level]] entries belong to a [hierarchy] section",
                ))
            }
            _ => {
                return Err(Error::config(format!(
                    "exactly one model section is allowed, found: {}",
                    model_sections.join(", ")
                )))
            }
        };
        // Reject stray sections the parser did not consume.
        for n in doc.section_names() {
            if !matches!(
                n,
                "cache"
                    | "hierarchy"
                    | "level"
                    | "column"
                    | "victim"
                    | "stream"
                    | "jouppi"
                    | "poison"
            ) {
                return Err(Error::config(format!(
                    "unknown section [{n}]; valid sections: cache, hierarchy, level, \
                     column, victim, stream, jouppi"
                )));
            }
        }
        Ok(SimConfig { name, model })
    }

    /// Reads and parses a config file.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for I/O problems (with the path in the
    /// message), plus everything [`SimConfig::from_toml_str`] reports.
    pub fn load(path: &str) -> Result<SimConfig, Error> {
        let input = std::fs::read_to_string(path)
            .map_err(|e| Error::config(format!("cannot read {path}: {e}")))?;
        SimConfig::from_toml_str(&input).map_err(|e| match e {
            Error::Config { message } => Error::config(format!("{path}: {message}")),
            other => other,
        })
    }
}

fn build_hierarchy(h: &HierarchyConfig) -> Result<Box<dyn MemoryModel>, Error> {
    if h.virtual_real {
        if h.levels.len() != 2 {
            return Err(Error::config(format!(
                "the virtual-real hierarchy has exactly two levels (virtually-indexed L1 \
                 over physically-indexed L2, §3.1), got {}",
                h.levels.len()
            )));
        }
        if h.levels.iter().any(LevelConfig::has_sidecars) {
            return Err(Error::config(
                "sidecars (victim/stream/mshr) are not available on the virtual-real \
                 hierarchy; use a generic hierarchy (virtual-real = false) instead",
            ));
        }
        let (l1, l2) = (&h.levels[0].cache, &h.levels[1].cache);
        if l1.write_policy != WritePolicy::WriteThroughNoAllocate
            || l2.write_policy != WritePolicy::WriteBackAllocate
        {
            return Err(Error::config(
                "the virtual-real hierarchy fixes L1 write-through/no-write-allocate and \
                 L2 write-back/write-allocate (§4); remove the write-policy overrides",
            ));
        }
        Ok(Box::new(TwoLevelHierarchy::new(
            l1.geometry,
            l1.index.clone(),
            l2.geometry,
            l2.index.clone(),
            h.mapping.mapper(),
        )?))
    } else {
        if !matches!(h.mapping, MappingConfig::Identity) {
            return Err(Error::config(
                "page-mapping applies only to the virtual-real hierarchy (the generic \
                 stack is physically addressed); set virtual-real = true",
            ));
        }
        let mut b = Hierarchy::builder().inclusion(h.inclusion);
        for level in &h.levels {
            b = b.level(level.level_builder());
        }
        Ok(Box::new(b.build()?))
    }
}

// ---------------------------------------------------------------------
// TOML-table → config parsing helpers
// ---------------------------------------------------------------------

fn check_keys(table: &Table, allowed: &[&str], context: &str) -> Result<(), Error> {
    for key in table.keys() {
        if !allowed.contains(&key) {
            return Err(Error::config(format!(
                "unknown key {key:?} in {context}; valid keys: {}",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn opt_str(table: &Table, key: &str) -> Result<Option<String>, Error> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(Error::config(format!(
            "{key} must be a string, got a {}",
            other.type_name()
        ))),
    }
}

fn get_u64(table: &Table, key: &str, default: u64) -> Result<u64, Error> {
    match table.get(key) {
        None => Ok(default),
        Some(Value::Int(v)) if *v >= 0 => Ok(*v as u64),
        Some(other) => Err(Error::config(format!(
            "{key} must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn get_usize(table: &Table, key: &str, default: usize) -> Result<usize, Error> {
    Ok(get_u64(table, key, default as u64)? as usize)
}

fn get_bool(table: &Table, key: &str, default: bool) -> Result<bool, Error> {
    match table.get(key) {
        None => Ok(default),
        Some(Value::Bool(v)) => Ok(*v),
        Some(other) => Err(Error::config(format!(
            "{key} must be true or false, got a {}",
            other.type_name()
        ))),
    }
}

/// A byte size: an integer or a string with binary-unit suffix.
fn get_size(table: &Table, key: &str, default: Option<u64>) -> Result<u64, Error> {
    match table.get(key) {
        None => default.ok_or_else(|| Error::config(format!("missing required key {key:?}"))),
        Some(Value::Int(v)) if *v > 0 => Ok(*v as u64),
        Some(Value::Str(s)) => parse_size(s),
        Some(other) => Err(Error::config(format!(
            "{key} must be a byte count or a size string like \"8KiB\", got {other:?}"
        ))),
    }
}

const CACHE_KEYS: &[&str] = &[
    "size",
    "line",
    "ways",
    "index",
    "replacement",
    "write-policy",
    "seed",
];

/// Parses the shared cache keys (plus `extra_allowed` sidecar keys the
/// caller will read itself) into a [`CacheConfig`].
fn parse_cache_table(table: &Table, extra_allowed: &[&str]) -> Result<CacheConfig, Error> {
    let mut allowed: Vec<&str> = CACHE_KEYS.to_vec();
    allowed.extend_from_slice(extra_allowed);
    check_keys(table, &allowed, "a cache description")?;
    let size = get_size(table, "size", None)?;
    let line = get_size(table, "line", Some(32))?;
    let ways = get_u64(table, "ways", 1)? as u32;
    let geometry = CacheGeometry::new(size, line, ways)?;
    let index = match opt_str(table, "index")? {
        None => IndexSpec::modulo(),
        Some(name) => IndexSpec::parse(&name)?,
    };
    let replacement = match opt_str(table, "replacement")?.as_deref() {
        None | Some("lru") => ReplacementPolicy::Lru,
        Some("fifo") => ReplacementPolicy::Fifo,
        Some("random") => ReplacementPolicy::Random,
        Some(other) => {
            return Err(Error::config(format!(
                "unknown replacement policy {other:?}; valid: lru, fifo, random"
            )))
        }
    };
    let write_policy = match opt_str(table, "write-policy")?.as_deref() {
        None | Some("write-through") => WritePolicy::WriteThroughNoAllocate,
        Some("write-back") => WritePolicy::WriteBackAllocate,
        Some(other) => {
            return Err(Error::config(format!(
                "unknown write policy {other:?}; valid: write-through (no-write-allocate, \
                 the paper's L1) or write-back (write-allocate, the paper's L2)"
            )))
        }
    };
    let seed = get_u64(table, "seed", 0x5eed_cace)?;
    Ok(CacheConfig {
        geometry,
        index,
        replacement,
        write_policy,
        seed,
    })
}

const LEVEL_SIDECAR_KEYS: &[&str] = &[
    "victim-lines",
    "stream-buffers",
    "stream-depth",
    "mshrs",
    "miss-penalty",
];

fn parse_level(table: &Table, position: usize) -> Result<LevelConfig, Error> {
    let mut cache = parse_cache_table(table, LEVEL_SIDECAR_KEYS)?;
    // Deeper levels default to the paper's L2 policy unless overridden.
    if position > 0 && table.get("write-policy").is_none() {
        cache.write_policy = WritePolicy::WriteBackAllocate;
    }
    let victim_lines = match get_usize(table, "victim-lines", 0)? {
        0 => None,
        n => Some(n),
    };
    let buffers = get_usize(table, "stream-buffers", 0)?;
    let depth = get_usize(table, "stream-depth", 4)?;
    let stream = (buffers > 0).then_some((buffers, depth));
    if buffers == 0 && table.get("stream-depth").is_some() {
        return Err(Error::config(
            "stream-depth without stream-buffers; set both (Jouppi's configuration is 4x4)",
        ));
    }
    let mshrs = match get_usize(table, "mshrs", 0)? {
        0 => None,
        n => Some(n),
    };
    Ok(LevelConfig {
        cache,
        victim_lines,
        stream,
        mshrs,
        miss_penalty: get_u64(table, "miss-penalty", crate::stack::DEFAULT_MISS_PENALTY)?,
    })
}

fn parse_hierarchy(doc: &toml::Doc) -> Result<HierarchyConfig, Error> {
    let table = doc.section("hierarchy")?.expect("caller checked");
    check_keys(
        table,
        &[
            "virtual-real",
            "inclusion",
            "page-mapping",
            "page-size",
            "memory",
            "frames",
            "seed",
        ],
        "[hierarchy]",
    )?;
    let virtual_real = get_bool(table, "virtual-real", false)?;
    if virtual_real && table.get("inclusion").is_some() {
        return Err(Error::config(
            "inclusion cannot be overridden on the virtual-real hierarchy — it always \
             enforces Inclusion (§3.2); the key applies to generic stacks only",
        ));
    }
    let inclusion = get_bool(table, "inclusion", true)?;
    let page_size = get_size(table, "page-size", Some(4096))?;
    let mapping = match opt_str(table, "page-mapping")?.as_deref() {
        None | Some("identity") => {
            for key in ["page-size", "memory", "frames", "seed"] {
                if table.get(key).is_some() {
                    return Err(Error::config(format!(
                        "{key} only applies to the randomized/aliased page mappings"
                    )));
                }
            }
            MappingConfig::Identity
        }
        Some("randomized") => MappingConfig::Randomized {
            page_size,
            memory: get_size(table, "memory", Some(256 << 20))?,
            seed: get_u64(table, "seed", 42)?,
        },
        Some("aliased") => MappingConfig::Aliased {
            page_size,
            frames: get_u64(table, "frames", 16)?,
        },
        Some(other) => {
            return Err(Error::config(format!(
                "unknown page-mapping {other:?}; valid: identity, randomized, aliased"
            )))
        }
    };
    let level_tables = doc.section_array("level");
    if level_tables.is_empty() {
        return Err(Error::config(
            "[hierarchy] needs [[level]] entries, processor side first \
             (the paper's §4 machine: an 8KB L1 over a 256KB..1MB L2)",
        ));
    }
    let levels = level_tables
        .iter()
        .enumerate()
        .map(|(i, t)| parse_level(t, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(HierarchyConfig {
        levels,
        virtual_real,
        inclusion,
        mapping,
    })
}

fn parse_column(table: &Table) -> Result<ColumnConfig, Error> {
    check_keys(table, &["size", "line", "rehash"], "[column]")?;
    let geometry = CacheGeometry::new(
        get_size(table, "size", None)?,
        get_size(table, "line", Some(32))?,
        1,
    )?;
    let rehash = match opt_str(table, "rehash")?.as_deref() {
        None | Some("polynomial") => RehashKind::Polynomial,
        Some("top-bit-flip") => RehashKind::TopBitFlip,
        Some(other) => {
            return Err(Error::config(format!(
                "unknown rehash {other:?}; valid: polynomial (§3.1 option 4) or \
                 top-bit-flip (the hash-rehash baseline)"
            )))
        }
    };
    Ok(ColumnConfig { geometry, rehash })
}

fn parse_victim(table: &Table) -> Result<VictimConfig, Error> {
    check_keys(table, &["size", "line", "ways", "victim-lines"], "[victim]")?;
    let geometry = CacheGeometry::new(
        get_size(table, "size", None)?,
        get_size(table, "line", Some(32))?,
        get_u64(table, "ways", 1)? as u32,
    )?;
    Ok(VictimConfig {
        geometry,
        victim_lines: get_usize(table, "victim-lines", 4)?,
    })
}

fn parse_stream(table: &Table) -> Result<StreamConfig, Error> {
    check_keys(
        table,
        &["size", "line", "ways", "index", "buffers", "depth"],
        "[stream]",
    )?;
    let geometry = CacheGeometry::new(
        get_size(table, "size", None)?,
        get_size(table, "line", Some(32))?,
        get_u64(table, "ways", 1)? as u32,
    )?;
    let index = match opt_str(table, "index")? {
        None => IndexSpec::modulo(),
        Some(name) => IndexSpec::parse(&name)?,
    };
    Ok(StreamConfig {
        geometry,
        index,
        buffers: get_usize(table, "buffers", 4)?,
        depth: get_usize(table, "depth", 4)?,
    })
}

fn parse_jouppi(table: &Table) -> Result<JouppiConfig, Error> {
    check_keys(
        table,
        &[
            "size",
            "line",
            "victim-lines",
            "stream-buffers",
            "stream-depth",
        ],
        "[jouppi]",
    )?;
    let geometry = CacheGeometry::new(
        get_size(table, "size", None)?,
        get_size(table, "line", Some(32))?,
        1,
    )?;
    Ok(JouppiConfig {
        geometry,
        victim_lines: get_usize(table, "victim-lines", 4)?,
        stream_buffers: get_usize(table, "stream-buffers", 4)?,
        stream_depth: get_usize(table, "stream-depth", 4)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_trace::MemRef;

    fn refs(n: u64) -> Vec<MemRef> {
        (0..n)
            .map(|i| MemRef {
                pc: 0x1000 + i,
                addr: (i.wrapping_mul(0x9E37_79B9) >> 5) & 0xF_FFFF,
                is_write: i % 7 == 0,
            })
            .collect()
    }

    #[test]
    fn cache_config_matches_hand_wired_cache() {
        let cfg = SimConfig::from_toml_str(
            "[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\nindex = \"ipoly-skew\"\n",
        )
        .unwrap();
        let mut model = cfg.build().unwrap();
        let mut reference = Cache::build(
            CacheGeometry::new(8 * 1024, 32, 2).unwrap(),
            IndexSpec::ipoly_skewed(),
        )
        .unwrap();
        let refs = refs(20_000);
        let delta = model.run_refs(&refs);
        let expect = reference.run_refs(refs.iter().copied());
        assert_eq!(delta.demand, expect);
    }

    #[test]
    fn virtual_real_hierarchy_builds_and_accepts_mappings() {
        let cfg = SimConfig::from_toml_str(
            "name = \"vr\"\n[hierarchy]\nvirtual-real = true\npage-mapping = \"randomized\"\n\
             page-size = 4096\nmemory = \"64MiB\"\nseed = 7\n\
             [[level]]\nsize = \"8KiB\"\nways = 2\nindex = \"ipoly-skew\"\n\
             [[level]]\nsize = \"256KiB\"\nways = 2\n",
        )
        .unwrap();
        assert_eq!(cfg.name.as_deref(), Some("vr"));
        let mut model = cfg.build().unwrap();
        let refs = refs(30_000);
        let delta = model.run_refs(&refs);
        assert_eq!(delta.demand.accesses, 30_000);
        assert!(model.stats().extra("holes-created").is_some());
        assert!(model.describe().contains("virtual-real"));
    }

    #[test]
    fn generic_hierarchy_with_sidecars_builds() {
        let cfg = SimConfig::from_toml_str(
            "[hierarchy]\n\
             [[level]]\nsize = \"8KiB\"\nvictim-lines = 4\nstream-buffers = 4\nmshrs = 8\n\
             [[level]]\nsize = \"64KiB\"\n\
             [[level]]\nsize = \"1MiB\"\n",
        )
        .unwrap();
        let mut model = cfg.build().unwrap();
        let refs = refs(20_000);
        model.run_refs(&refs);
        let s = model.stats();
        assert_eq!(s.components.len(), 3);
        assert!(s.extra("l1-victim-hits").is_some());
        assert!(s.extra("l1-mshr-primary").is_some());
    }

    #[test]
    fn every_organization_section_builds() {
        for (section, needle) in [
            ("[column]\nsize = \"8KiB\"\n", "column"),
            ("[victim]\nsize = \"8KiB\"\nvictim-lines = 4\n", "victim"),
            (
                "[stream]\nsize = \"8KiB\"\nbuffers = 4\ndepth = 4\n",
                "stream",
            ),
            ("[jouppi]\nsize = \"8KiB\"\n", "Jouppi"),
        ] {
            let cfg = SimConfig::from_toml_str(section).unwrap();
            let mut model = cfg.build().unwrap();
            let refs = refs(5_000);
            let delta = model.run_refs(&refs);
            assert!(delta.demand.reads > 0, "{section}");
            assert!(model.describe().contains(needle), "{section}");
        }
    }

    #[test]
    fn validation_messages_are_grounded() {
        for (src, needle) in [
            ("x = 1", "unknown key"),
            ("", "no model section"),
            ("[cache]\n", "missing required key \"size\""),
            (
                "[cache]\nsize = \"8KiB\"\n[column]\nsize = \"8KiB\"\n",
                "exactly one",
            ),
            (
                "[cache]\nsize = \"8KiB\"\nindex = \"sha256\"\n",
                "unknown index scheme",
            ),
            ("[cache]\nsize = 3000\n", "power of two"),
            (
                "[cache]\nsize = \"8KiB\"\nwrite-policy = \"wt\"\n",
                "write-through",
            ),
            ("[[level]]\nsize = \"8KiB\"\n", "[hierarchy]"),
            ("[hierarchy]\n", "[[level]]"),
            (
                "[hierarchy]\nvirtual-real = true\n[[level]]\nsize = \"8KiB\"\n",
                "exactly two levels",
            ),
            (
                "[hierarchy]\nvirtual-real = true\n[[level]]\nsize = \"8KiB\"\nvictim-lines = 2\n\
                 [[level]]\nsize = \"64KiB\"\n",
                "sidecars",
            ),
            (
                "[hierarchy]\npage-mapping = \"randomized\"\n[[level]]\nsize = \"8KiB\"\n\
                 [[level]]\nsize = \"64KiB\"\n",
                "virtual-real",
            ),
            (
                "[hierarchy]\nvirtual-real = true\ninclusion = false\n\
                 [[level]]\nsize = \"8KiB\"\n[[level]]\nsize = \"64KiB\"\n",
                "always",
            ),
            (
                "[hierarchy]\npage-size = 8192\n[[level]]\nsize = \"8KiB\"\n",
                "randomized/aliased",
            ),
            (
                "[hierarchy]\n[[level]]\nsize = \"8KiB\"\n[[level]]\nsize = \"4KiB\"\n",
                "Inclusion",
            ),
            ("[cache]\nsize = \"8KiB\"\n[stray]\nx = 1\n", "unknown"),
        ] {
            let err = SimConfig::from_toml_str(src)
                .and_then(|c| c.build().map(|_| ()))
                .unwrap_err()
                .to_string();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn load_reports_the_path() {
        let err = SimConfig::load("/nonexistent/x.toml")
            .unwrap_err()
            .to_string();
        assert!(err.contains("/nonexistent/x.toml"), "{err}");
    }
}

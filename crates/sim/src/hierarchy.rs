//! Two-level **virtual-real** cache hierarchy (Wang, Baer & Levy \[25\]),
//! as adopted by the paper in §3.1–§3.3.
//!
//! L1 is virtually indexed and virtually tagged (exposing all address bits
//! to the I-Poly hash without translation delay); L2 is physically indexed
//! and tagged. Inclusion (`L1 ⊆ L2`) is enforced explicitly: when L2
//! evicts a line, any L1 copy is invalidated. Because the L1 and L2 index
//! functions are unrelated pseudo-random hashes, that invalidation usually
//! punches a *hole* at an L1 location the refill does not plug — the
//! effect §3.3 models with `P_H = (2^{m_1} − 1)/2^{m_2}`.
//!
//! The hierarchy also keeps at most one virtual alias of a physical block
//! in L1 at a time (§3.3 cause 2), invalidating the previous alias when a
//! second virtual address maps to the same physical block.

use crate::cache::{Cache, WritePolicy};
use crate::model::{extra, AccessOutcome, ComponentStats, MemoryModel, ModelStats, ServicePoint};
use crate::stats::CacheStats;
use crate::vm::PageMapper;
use cac_core::{CacheGeometry, Error, IndexSpec};
use cac_trace::{MemRef, TraceOp};
use std::collections::HashMap;
use std::ops::{Add, Sub};

/// Counters specific to the two-level hierarchy.
///
/// The three invalidation counters correspond one-to-one to the §3.3
/// list of hole causes: L2 replacements, virtual-alias removal, and
/// external coherency actions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 lines invalidated to preserve Inclusion after an L2 eviction.
    pub inclusion_invalidations: u64,
    /// Holes created at L1 (inclusion invalidations whose slot was not
    /// coincidentally refilled by the access in progress).
    pub holes_created: u64,
    /// L1 lines invalidated because a second virtual alias of the same
    /// physical block was brought in.
    pub alias_invalidations: u64,
    /// L1 lines invalidated by external coherency actions (§3.3 cause 3);
    /// every one of these is a hole.
    pub external_invalidations_l1: u64,
    /// L2 lines invalidated by external coherency actions.
    pub external_invalidations_l2: u64,
}

/// Field-wise difference, for batched-replay deltas.
impl Sub for HierarchyStats {
    type Output = HierarchyStats;
    fn sub(self, rhs: HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            inclusion_invalidations: self.inclusion_invalidations - rhs.inclusion_invalidations,
            holes_created: self.holes_created - rhs.holes_created,
            alias_invalidations: self.alias_invalidations - rhs.alias_invalidations,
            external_invalidations_l1: self.external_invalidations_l1
                - rhs.external_invalidations_l1,
            external_invalidations_l2: self.external_invalidations_l2
                - rhs.external_invalidations_l2,
        }
    }
}

/// Field-wise sum, for accumulating streamed-replay chunk deltas.
impl Add for HierarchyStats {
    type Output = HierarchyStats;
    fn add(self, rhs: HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            inclusion_invalidations: self.inclusion_invalidations + rhs.inclusion_invalidations,
            holes_created: self.holes_created + rhs.holes_created,
            alias_invalidations: self.alias_invalidations + rhs.alias_invalidations,
            external_invalidations_l1: self.external_invalidations_l1
                + rhs.external_invalidations_l1,
            external_invalidations_l2: self.external_invalidations_l2
                + rhs.external_invalidations_l2,
        }
    }
}

/// Counters attributable to one batched replay
/// ([`TwoLevelHierarchy::run_trace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyRun {
    /// L1 counters for the replayed trace.
    pub l1: CacheStats,
    /// L2 counters for the replayed trace.
    pub l2: CacheStats,
    /// Hierarchy (hole/alias/inclusion) counters for the replayed trace.
    pub hierarchy: HierarchyStats,
}

/// Member-wise sum, for accumulating streamed-replay chunk deltas.
impl Add for HierarchyRun {
    type Output = HierarchyRun;
    fn add(self, rhs: HierarchyRun) -> HierarchyRun {
        HierarchyRun {
            l1: self.l1 + rhs.l1,
            l2: self.l2 + rhs.l2,
            hierarchy: self.hierarchy + rhs.hierarchy,
        }
    }
}

/// What an external (bus) invalidation found in this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopOutcome {
    /// The block was resident in (and removed from) L2.
    pub l2_invalidated: bool,
    /// A virtual copy was resident in (and removed from) L1 — a hole.
    pub l1_invalidated: bool,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Hit at L1.
    pub l1_hit: bool,
    /// Hit at L2 (only meaningful when L1 missed or for write-through
    /// traffic).
    pub l2_hit: bool,
}

/// A virtually-indexed L1 over a physically-indexed L2 with explicit
/// inclusion enforcement.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
/// use cac_sim::hierarchy::TwoLevelHierarchy;
/// use cac_sim::vm::PageMapper;
///
/// let l1 = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let l2 = CacheGeometry::new(256 * 1024, 32, 2)?;
/// let mut h = TwoLevelHierarchy::new(
///     l1, IndexSpec::ipoly_skewed(),
///     l2, IndexSpec::modulo(),
///     PageMapper::randomized(4096, 1 << 26, 42),
/// )?;
/// h.read(0x10_0000);
/// assert!(h.read(0x10_0000).l1_hit);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TwoLevelHierarchy {
    l1: Cache,
    l2: Cache,
    mapper: PageMapper,
    /// Reverse map for inclusion: physical block → virtual block resident
    /// at L1. At most one alias per physical block is allowed in L1.
    l1_contents: HashMap<u64, u64>,
    stats: HierarchyStats,
    /// The demand stream as the processor sees it: an access is a hit
    /// when it was serviced at L1 or L2 (i.e. before memory).
    demand: CacheStats,
}

impl TwoLevelHierarchy {
    /// Builds the hierarchy. L1 uses the paper's write-through /
    /// no-write-allocate policy; L2 is write-back / write-allocate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if the block sizes differ or L2 is
    /// smaller than L1, plus any placement-validation error.
    pub fn new(
        l1_geom: CacheGeometry,
        l1_spec: IndexSpec,
        l2_geom: CacheGeometry,
        l2_spec: IndexSpec,
        mapper: PageMapper,
    ) -> Result<Self, Error> {
        if l1_geom.block() != l2_geom.block() {
            return Err(Error::OutOfRange {
                what: "L2 block size",
                value: l2_geom.block(),
                constraint: "equal to L1 block size",
            });
        }
        if l2_geom.capacity() < l1_geom.capacity() {
            return Err(Error::OutOfRange {
                what: "L2 capacity",
                value: l2_geom.capacity(),
                constraint: ">= L1 capacity",
            });
        }
        Ok(TwoLevelHierarchy {
            l1: Cache::build(l1_geom, l1_spec)?,
            l2: Cache::builder(l2_geom)
                .index_spec(l2_spec)
                .write_policy(WritePolicy::WriteBackAllocate)
                .build()?,
            mapper,
            l1_contents: HashMap::new(),
            stats: HierarchyStats::default(),
            demand: CacheStats::default(),
        })
    }

    /// Physical block address for a virtual block address.
    fn pa_block_of(&mut self, va_block: u64) -> u64 {
        let offset_bits = self.l1.geometry().offset_bits();
        let pa = self.mapper.translate(va_block << offset_bits);
        pa >> offset_bits
    }

    /// Performs a read at virtual address `va`.
    pub fn read(&mut self, va: u64) -> HierarchyAccess {
        self.access(va, false)
    }

    /// Performs a write at virtual address `va`.
    pub fn write(&mut self, va: u64) -> HierarchyAccess {
        self.access(va, true)
    }

    /// Performs an access at virtual address `va`.
    pub fn access(&mut self, va: u64, is_write: bool) -> HierarchyAccess {
        let res = self.access_inner(va, is_write);
        let hit = res.l1_hit || res.l2_hit;
        if is_write {
            self.demand.record_write(hit);
        } else {
            self.demand.record_read(hit);
        }
        res
    }

    fn access_inner(&mut self, va: u64, is_write: bool) -> HierarchyAccess {
        let geom = self.l1.geometry();
        let va_block = geom.block_addr(va);
        let pa = self.mapper.translate(va);
        let pa_block = geom.block_addr(pa);

        let l1_res = self.l1.access(va, is_write);
        if l1_res.hit {
            // Write-through: the write also updates L2. Inclusion makes
            // this a guaranteed L2 hit unless the write races a hole; the
            // write-back L2 absorbs either way.
            if is_write {
                let _ = self.l2.access(pa, true);
            }
            return HierarchyAccess {
                l1_hit: true,
                l2_hit: true,
            };
        }

        // L1 missed. Maintain the reverse map for a fill that happened
        // (reads always fill; write misses do not under no-write-allocate).
        if l1_res.filled {
            if let Some(victim_va) = l1_res.evicted {
                let victim_pa = self.pa_block_of(victim_va);
                self.l1_contents.remove(&victim_pa);
            }
            // Virtual-alias control: at most one alias per physical block.
            if let Some(&old_va) = self.l1_contents.get(&pa_block) {
                if old_va != va_block && self.l1.invalidate_block(old_va) {
                    self.stats.alias_invalidations += 1;
                }
            }
            self.l1_contents.insert(pa_block, va_block);
        }

        // L2 access with the physical address.
        let l2_res = self.l2.access(pa, is_write);
        if let Some(victim_pa_block) = l2_res.evicted {
            // Inclusion: the evicted L2 line must not survive in L1.
            if let Some(victim_va) = self.l1_contents.remove(&victim_pa_block) {
                if self.l1.invalidate_block(victim_va) {
                    self.stats.inclusion_invalidations += 1;
                    // If the invalidated line occupied the slot the current
                    // fill just took, the refill would have plugged it; the
                    // sequential model already handled that case (the fill
                    // evicted it first and it is no longer in the map), so
                    // every invalidation reaching this point is a hole.
                    self.stats.holes_created += 1;
                }
            }
        }
        HierarchyAccess {
            l1_hit: false,
            l2_hit: l2_res.hit,
        }
    }

    /// Replays a full instruction trace through the hierarchy, performing
    /// the memory references and skipping everything else. Returns the
    /// counters attributable to this trace; totals keep accumulating as
    /// with per-op calls, and the counters are identical to what the
    /// equivalent `for op { access(..) }` loop would produce.
    pub fn run_trace<I>(&mut self, ops: I) -> HierarchyRun
    where
        I: IntoIterator<Item = TraceOp>,
    {
        self.run_refs(ops.into_iter().filter_map(|op| op.mem_ref()))
    }

    /// Replays a bare memory-reference trace; see
    /// [`TwoLevelHierarchy::run_trace`].
    pub fn run_refs<I>(&mut self, refs: I) -> HierarchyRun
    where
        I: IntoIterator<Item = MemRef>,
    {
        let (l1, l2, h) = (self.l1.stats(), self.l2.stats(), self.stats);
        for r in refs {
            self.access(r.addr, r.is_write);
        }
        HierarchyRun {
            l1: self.l1.stats() - l1,
            l2: self.l2.stats() - l2,
            hierarchy: self.stats - h,
        }
    }

    /// Translates a virtual address through this node's page table.
    ///
    /// Public so a snooping bus can broadcast the *physical* address of a
    /// write made by this node (reverse translation is exactly what the
    /// virtual-real hierarchy is designed to avoid needing for its own
    /// coherence actions).
    pub fn translate(&mut self, va: u64) -> u64 {
        self.mapper.translate(va)
    }

    /// Applies an external coherency invalidation for physical address
    /// `pa` (§3.3 cause 3): the block is removed from L2 and, to keep the
    /// hierarchy consistent, any virtual copy is removed from L1 — which
    /// punches a hole there.
    pub fn snoop_invalidate(&mut self, pa: u64) -> SnoopOutcome {
        let pa_block = self.l2.geometry().block_addr(pa);
        let l2_invalidated = self.l2.invalidate_block(pa_block);
        if l2_invalidated {
            self.stats.external_invalidations_l2 += 1;
        }
        let l1_invalidated = match self.l1_contents.remove(&pa_block) {
            Some(va_block) => self.l1.invalidate_block(va_block),
            None => false,
        };
        if l1_invalidated {
            self.stats.external_invalidations_l1 += 1;
        }
        SnoopOutcome {
            l2_invalidated,
            l1_invalidated,
        }
    }

    /// `true` if this node holds the physical block anywhere in its
    /// hierarchy (used by coherence invariant checks).
    pub fn holds_physical_block(&self, pa_block: u64) -> bool {
        self.l2.probe_block(pa_block).is_some() || self.l1_contents.contains_key(&pa_block)
    }

    /// L1 counters.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Hierarchy-specific counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Fraction of L2 misses that created a hole at L1 — the quantity the
    /// paper's §3.3 simulation reports (average < 0.1%, never > 1.2% with
    /// a 1MB L2).
    pub fn hole_rate(&self) -> f64 {
        let m = self.l2.stats().misses;
        if m == 0 {
            0.0
        } else {
            self.stats.holes_created as f64 / m as f64
        }
    }

    /// The L1 cache (read-only).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache (read-only).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Verifies Inclusion: every valid L1 line's physical block is
    /// resident in L2. Intended for tests; cost is `O(L1 lines)`.
    pub fn check_inclusion(&mut self) -> bool {
        let va_blocks: Vec<u64> = self.l1.resident_blocks().collect();
        va_blocks.into_iter().all(|va_block| {
            let pa_block = self.pa_block_of(va_block);
            self.l2.probe_block(pa_block).is_some()
        })
    }

    /// Invalidates both levels and clears all counters. Established page
    /// mappings are kept — the OS page table outlives a cache flush.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l1_contents.clear();
        self.stats = HierarchyStats::default();
        self.demand = CacheStats::default();
    }
}

impl MemoryModel for TwoLevelHierarchy {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        let a = TwoLevelHierarchy::access(self, r.addr, r.is_write);
        if a.l1_hit {
            AccessOutcome::hit_at(ServicePoint::Level(0))
        } else if a.l2_hit {
            AccessOutcome::hit_at(ServicePoint::Level(1))
        } else {
            AccessOutcome {
                filled: !r.is_write,
                ..AccessOutcome::miss()
            }
        }
    }

    fn stats(&self) -> ModelStats {
        let s = self.stats;
        ModelStats {
            demand: self.demand,
            components: vec![
                ComponentStats {
                    name: "l1".to_owned(),
                    stats: self.l1.stats(),
                },
                ComponentStats {
                    name: "l2".to_owned(),
                    stats: self.l2.stats(),
                },
            ],
            extras: vec![
                extra("inclusion-invalidations", s.inclusion_invalidations),
                extra("holes-created", s.holes_created),
                extra("alias-invalidations", s.alias_invalidations),
                extra("external-invalidations-l1", s.external_invalidations_l1),
                extra("external-invalidations-l2", s.external_invalidations_l2),
            ],
        }
    }

    fn reset(&mut self) {
        TwoLevelHierarchy::reset(self);
    }

    fn describe(&self) -> String {
        format!(
            "virtual-real hierarchy: L1 {} ({}) / L2 {} ({})",
            self.l1.geometry(),
            self.l1.index_fn().label(),
            self.l2.geometry(),
            self.l2.index_fn().label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> TwoLevelHierarchy {
        // Small caches so evictions happen quickly: 1KB L1 / 4KB L2.
        let l1 = CacheGeometry::new(1024, 32, 1).unwrap();
        let l2 = CacheGeometry::new(4096, 32, 1).unwrap();
        TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::identity(),
        )
        .unwrap()
    }

    #[test]
    fn basic_hit_flow() {
        let mut h = small_hierarchy();
        let a = h.read(0x1000);
        assert!(!a.l1_hit);
        assert!(!a.l2_hit);
        let b = h.read(0x1000);
        assert!(b.l1_hit);
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
    }

    #[test]
    fn inclusion_maintained_under_pressure() {
        let mut h = small_hierarchy();
        // Touch far more blocks than L2 holds; inclusion must hold at
        // every point (checked at the end and implied by hole counting).
        for i in 0..4096u64 {
            h.read(i * 32 * 3);
        }
        assert!(h.check_inclusion());
        assert!(h.stats().inclusion_invalidations > 0);
    }

    #[test]
    fn holes_are_counted() {
        let mut h = small_hierarchy();
        for i in 0..8192u64 {
            h.read((i * 97) % 100_000 * 32);
        }
        let s = h.stats();
        assert!(s.holes_created > 0);
        assert!(s.holes_created <= s.inclusion_invalidations);
        assert!(h.hole_rate() > 0.0);
        assert!(h.hole_rate() < 1.0);
    }

    #[test]
    fn write_through_reaches_l2() {
        let mut h = small_hierarchy();
        h.read(0x40); // fill both levels
        let before = h.l2_stats().writes;
        h.write(0x40); // L1 hit, written through
        assert_eq!(h.l2_stats().writes, before + 1);
    }

    #[test]
    fn write_miss_does_not_fill_l1() {
        let mut h = small_hierarchy();
        let a = h.write(0x9000);
        assert!(!a.l1_hit);
        assert!(!h.l1().contains(0x9000));
        // But L2 allocates (write-back/write-allocate).
        assert!(h.l2().contains(0x9000));
        assert!(h.check_inclusion());
    }

    #[test]
    fn alias_control_keeps_one_copy() {
        // 16-frame aliased mapping: virtual pages 0 and 16 are the same
        // physical page.
        let l1 = CacheGeometry::new(1024, 32, 1).unwrap();
        let l2 = CacheGeometry::new(4096, 32, 1).unwrap();
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::aliased(4096, 16),
        )
        .unwrap();
        let va_a = 0x123u64;
        let va_b = 16 * 4096 + 0x123; // alias of va_a
        h.read(va_a);
        h.read(va_b);
        assert!(h.stats().alias_invalidations >= 1);
        // Only the second alias remains at L1.
        assert!(!h.l1().contains(va_a));
        assert!(h.l1().contains(va_b));
        // Interleaved aliases keep trading places but stay consistent.
        for _ in 0..10 {
            h.read(va_a);
            h.read(va_b);
        }
        assert!(h.check_inclusion());
    }

    #[test]
    fn geometry_validation() {
        let l1 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let l2_small = CacheGeometry::new(4 * 1024, 32, 2).unwrap();
        assert!(TwoLevelHierarchy::new(
            l1,
            IndexSpec::modulo(),
            l2_small,
            IndexSpec::modulo(),
            PageMapper::identity(),
        )
        .is_err());
        let l2_wrong_block = CacheGeometry::new(64 * 1024, 64, 2).unwrap();
        assert!(TwoLevelHierarchy::new(
            l1,
            IndexSpec::modulo(),
            l2_wrong_block,
            IndexSpec::modulo(),
            PageMapper::identity(),
        )
        .is_err());
    }

    #[test]
    fn snoop_invalidate_removes_both_levels() {
        let mut h = small_hierarchy();
        h.read(0x1000);
        assert!(h.l1().contains(0x1000));
        let out = h.snoop_invalidate(0x1000);
        assert!(out.l2_invalidated);
        assert!(out.l1_invalidated);
        assert!(!h.l1().contains(0x1000));
        assert!(!h.holds_physical_block(0x1000 / 32));
        assert_eq!(h.stats().external_invalidations_l1, 1);
        assert_eq!(h.stats().external_invalidations_l2, 1);
        // Next access is a compulsory-style refill.
        assert!(!h.read(0x1000).l1_hit);
        assert!(h.check_inclusion());
    }

    #[test]
    fn snoop_of_absent_block_is_a_clean_miss() {
        let mut h = small_hierarchy();
        let out = h.snoop_invalidate(0xdead_0000);
        assert!(!out.l2_invalidated);
        assert!(!out.l1_invalidated);
        assert_eq!(h.stats().external_invalidations_l1, 0);
    }

    #[test]
    fn snoop_on_l2_only_block_creates_no_l1_hole() {
        let mut h = small_hierarchy();
        h.write(0x9000); // no-write-allocate: L2 only
        let out = h.snoop_invalidate(0x9000);
        assert!(out.l2_invalidated);
        assert!(!out.l1_invalidated);
    }

    #[test]
    fn hole_rate_tracks_paper_model_order_of_magnitude() {
        // 8KB direct-mapped L1 / 256KB direct-mapped L2 with random pages:
        // the analytical P_H is 0.031; the measured rate should be within
        // a small factor of that (it depends on residency, which the
        // model's "always resident" assumption upper-bounds).
        let l1 = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        let l2 = CacheGeometry::new(256 * 1024, 32, 1).unwrap();
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 28, 7),
        )
        .unwrap();
        // Working set of 16K blocks (512KB) streams through repeatedly so
        // L2 keeps evicting.
        for round in 0..6u64 {
            for i in 0..16384u64 {
                h.read((i * 32) + (round % 2) * 11);
            }
        }
        let rate = h.hole_rate();
        assert!(rate < 0.05, "hole rate {rate} implausibly high");
        assert!(h.check_inclusion());
    }
}

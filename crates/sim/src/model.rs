//! The composable simulation surface: one trait, one access-result type,
//! one statistics shape for every cache organization in the crate.
//!
//! The paper's whole argument is comparative — the same reference stream
//! replayed against many cache *organizations* (§2.1's direct-mapped /
//! set-associative / victim / column-associative / skewed / I-Poly
//! matrix). Historically each organization here exposed its own
//! constructor and access surface; [`MemoryModel`] unifies them:
//!
//! * [`MemoryModel::access`] replays one [`MemRef`] and reports the
//!   outcome through the shared [`AccessOutcome`], so callers never
//!   re-derive hits from stats deltas;
//! * [`MemoryModel::run_refs`] replays a slice batched (overridable so
//!   concrete models keep their monomorphic hot loops — the trait costs
//!   one virtual call per *chunk*, not per reference);
//! * [`MemoryModel::stats`] renders every organization's counters into
//!   the common [`ModelStats`] shape the report layer understands.
//!
//! The trait is object-safe: `Box<dyn MemoryModel>` is what the
//! declarative [`crate::config::SimConfig`] layer hands back, and what
//! `cac run --config` drives.
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::cache::Cache;
//! use cac_sim::model::MemoryModel;
//! use cac_trace::MemRef;
//!
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! let mut model: Box<dyn MemoryModel> =
//!     Box::new(Cache::build(geom, IndexSpec::ipoly_skewed())?);
//! let refs: Vec<MemRef> = (0..64u64)
//!     .map(|i| MemRef { pc: 0, addr: i * 4096, is_write: false })
//!     .collect();
//! let delta = model.run_refs(&refs);
//! assert_eq!(delta.demand.misses, 64); // compulsory only under I-Poly
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::stats::CacheStats;
use cac_trace::MemRef;
use std::fmt;
use std::ops::Sub;

/// Where an access was serviced.
///
/// Levels are numbered from the processor side (`Level(0)` = L1).
/// Sidecar variants carry the index of the level they are attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ServicePoint {
    /// Hit in the cache array of the given level.
    Level(u8),
    /// Hit in the victim buffer attached to the given level.
    Victim(u8),
    /// Hit at a stream-buffer head attached to the given level.
    Stream(u8),
    /// Hit at the second (rehash) probe of a column-associative cache.
    SecondProbe,
    /// Missed everywhere; serviced by memory.
    Memory,
    /// Not modelled by this organization (e.g. a store presented to a
    /// read-only prefetch organization): passed through untouched.
    Bypass,
}

/// Result of a single access, shared by every organization.
///
/// Invariant: `hit` is `true` exactly when `served_by` is neither
/// [`ServicePoint::Memory`] nor [`ServicePoint::Bypass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access was serviced without going to memory.
    pub hit: bool,
    /// Where the access was serviced.
    pub served_by: ServicePoint,
    /// The way that hit or was filled, for single-level caches that track
    /// it (`None` for non-allocating misses and composite organizations).
    pub way: Option<u32>,
    /// Block address of a valid line this access pushed out of the
    /// organization entirely (not merely demoted into a sidecar).
    pub evicted: Option<u64>,
    /// Whether a new line was brought in from the next level.
    pub filled: bool,
}

impl AccessOutcome {
    /// An access serviced at `point` with no fill or eviction.
    pub fn hit_at(point: ServicePoint) -> Self {
        AccessOutcome {
            hit: !matches!(point, ServicePoint::Memory | ServicePoint::Bypass),
            served_by: point,
            way: None,
            evicted: None,
            filled: false,
        }
    }

    /// A full miss serviced by memory.
    pub fn miss() -> Self {
        AccessOutcome {
            hit: false,
            served_by: ServicePoint::Memory,
            way: None,
            evicted: None,
            filled: false,
        }
    }

    /// An access this organization does not model (see
    /// [`ServicePoint::Bypass`]).
    pub fn bypass() -> Self {
        AccessOutcome {
            hit: false,
            served_by: ServicePoint::Bypass,
            way: None,
            evicted: None,
            filled: false,
        }
    }

    /// `true` unless the access went to memory (or was bypassed).
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

/// Counters of one component (a cache level or a sidecar) inside a
/// model, named for report rendering (`"l1"`, `"victim"`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// Component name, stable across a model's lifetime.
    pub name: String,
    /// The component's counters in the common shape.
    pub stats: CacheStats,
}

/// The statistics shape every [`MemoryModel`] reports.
///
/// `demand` describes the reference stream as presented to the model:
/// an access counts as a *hit* when it was serviced anywhere before
/// memory (cache array, victim buffer, stream-buffer head, second
/// probe). `components` break the same traffic down per cache level /
/// sidecar, and `extras` carry organization-specific counters (holes,
/// probe distribution, MSHR occupancy events, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// The demand stream's counters (hit = serviced before memory).
    pub demand: CacheStats,
    /// Per-component counters, processor side first.
    pub components: Vec<ComponentStats>,
    /// Named organization-specific counters.
    pub extras: Vec<(String, u64)>,
}

/// Builds one [`ModelStats::extras`] entry.
pub fn extra(name: impl Into<String>, value: u64) -> (String, u64) {
    (name.into(), value)
}

impl ModelStats {
    /// A single-component model's stats, demand equal to the component.
    pub fn single(name: &str, stats: CacheStats) -> Self {
        ModelStats {
            demand: stats,
            components: vec![ComponentStats {
                name: name.to_owned(),
                stats,
            }],
            extras: Vec::new(),
        }
    }

    /// Looks up an extra counter by name.
    pub fn extra(&self, name: &str) -> Option<u64> {
        self.extras.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a component's counters by name.
    pub fn component(&self, name: &str) -> Option<&CacheStats> {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map(|c| &c.stats)
    }
}

/// Field-wise difference, for batched-replay deltas. Both operands must
/// come from the same model (same component/extra shape).
impl Sub for ModelStats {
    type Output = ModelStats;
    fn sub(self, rhs: ModelStats) -> ModelStats {
        debug_assert_eq!(self.components.len(), rhs.components.len());
        debug_assert_eq!(self.extras.len(), rhs.extras.len());
        ModelStats {
            demand: self.demand - rhs.demand,
            components: self
                .components
                .into_iter()
                .zip(rhs.components)
                .map(|(a, b)| {
                    debug_assert_eq!(a.name, b.name);
                    ComponentStats {
                        name: a.name,
                        stats: a.stats - b.stats,
                    }
                })
                .collect(),
            extras: self
                .extras
                .into_iter()
                .zip(rhs.extras)
                .map(|((n, a), (m, b))| {
                    debug_assert_eq!(n, m);
                    (n, a - b)
                })
                .collect(),
        }
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.demand)
    }
}

/// One memory model: anything a reference stream can be replayed
/// against. Implemented by [`crate::cache::Cache`],
/// [`crate::hierarchy::TwoLevelHierarchy`], the generic
/// [`crate::stack::Hierarchy`], [`crate::column::ColumnAssociative`],
/// [`crate::jouppi::JouppiCache`], [`crate::victim::VictimCache`] and
/// [`crate::stream::StreamBufferCache`].
///
/// `Send` is a supertrait so a `Box<dyn MemoryModel>` can be handed to
/// a worker thread of the multi-configuration sweep engine
/// ([`crate::sweep`]); every model here is plain owned data, so the
/// bound costs implementors nothing.
pub trait MemoryModel: Send {
    /// Replays one memory reference.
    fn access(&mut self, r: MemRef) -> AccessOutcome;

    /// Accumulated counters in the common shape.
    fn stats(&self) -> ModelStats;

    /// Invalidates all contents and clears all counters.
    fn reset(&mut self);

    /// One-line human description (geometry + placement), for reports.
    fn describe(&self) -> String;

    /// Replays a reference slice and returns the counters attributable
    /// to it (`stats after - stats before`), exactly as the equivalent
    /// per-reference [`MemoryModel::access`] loop would produce.
    ///
    /// The default implementation is the per-reference loop; concrete
    /// models with batched replay paths override it. Either way the
    /// per-reference cost is monomorphic — when called through
    /// `dyn MemoryModel` only this method is dispatched virtually, once
    /// per slice.
    fn run_refs(&mut self, refs: &[MemRef]) -> ModelStats {
        let before = self.stats();
        for &r in refs {
            self.access(r);
        }
        self.stats() - before
    }
}

/// A deliberately faulty model: behaves as an always-miss "cache" until
/// its access counter reaches a trigger, then panics on every further
/// access.
///
/// This is the test fixture behind the sweep engine's panic isolation
/// (`[poison]` config sections, `Sweep::run_refs_isolated`): a sweep
/// containing a `PoisonModel` must degrade that one row to
/// `Failed` while sibling models' counters stay byte-identical. It has
/// no simulation value.
#[derive(Debug, Clone)]
pub struct PoisonModel {
    after: u64,
    stats: CacheStats,
}

impl PoisonModel {
    /// A model that panics once `after` accesses have been replayed
    /// (`after = 0` panics on the very first access).
    pub fn new(after: u64) -> Self {
        PoisonModel {
            after,
            stats: CacheStats::new(),
        }
    }
}

impl MemoryModel for PoisonModel {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        if self.stats.accesses >= self.after {
            panic!(
                "poison model tripped after {} accesses (configured trigger {})",
                self.stats.accesses, self.after
            );
        }
        if r.is_write {
            self.stats.record_write(false);
        } else {
            self.stats.record_read(false);
        }
        AccessOutcome::miss()
    }

    fn stats(&self) -> ModelStats {
        ModelStats::single("poison", self.stats)
    }

    fn reset(&mut self) {
        self.stats = CacheStats::new();
    }

    fn describe(&self) -> String {
        format!("poison model (panics after {} accesses)", self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructors_uphold_the_hit_invariant() {
        assert!(AccessOutcome::hit_at(ServicePoint::Level(0)).hit);
        assert!(AccessOutcome::hit_at(ServicePoint::Victim(1)).hit);
        assert!(AccessOutcome::hit_at(ServicePoint::SecondProbe).is_hit());
        assert!(!AccessOutcome::hit_at(ServicePoint::Memory).hit);
        assert!(!AccessOutcome::miss().hit);
        assert!(!AccessOutcome::bypass().hit);
        assert_eq!(AccessOutcome::bypass().served_by, ServicePoint::Bypass);
    }

    #[test]
    fn model_stats_lookup_and_delta() {
        let mut a = CacheStats::new();
        a.record_read(false);
        a.record_read(true);
        let mut s = ModelStats::single("l1", a);
        s.extras.push(extra("holes", 3));
        assert_eq!(s.component("l1").unwrap().accesses, 2);
        assert_eq!(s.extra("holes"), Some(3));
        assert_eq!(s.extra("nope"), None);

        let mut later = s.clone();
        later.demand.record_read(true);
        later.components[0].stats.record_read(true);
        later.extras[0].1 = 5;
        let delta = later - s;
        assert_eq!(delta.demand.accesses, 1);
        assert_eq!(delta.component("l1").unwrap().hits, 1);
        assert_eq!(delta.extra("holes"), Some(2));
    }
}

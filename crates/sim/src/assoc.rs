//! O(1) fully-associative lookup: an open-addressing tag map plus an
//! intrusive recency list.
//!
//! Several structures in this crate are fully associative — the
//! degenerate one-set [`crate::cache::Cache`] geometry the paper's
//! miss-ratio comparisons use as their reference curve, the victim
//! buffers of Jouppi's organization, and a TLB configured with as many
//! ways as entries. Probing them by scanning every way costs O(ways)
//! per access, and victim selection by scanning every stamp costs
//! another O(ways); for the 256-line fully-associative 8KB model that
//! made it ~3× slower than every set-associative configuration in the
//! same sweep.
//!
//! [`AssocIndex`] replaces both scans:
//!
//! * **Probe** — an open-addressing hash table (linear probing, ≤ 50%
//!   load, fibonacci hashing, backward-shift deletion — no tombstones)
//!   maps a resident key to its slot in O(1).
//! * **Victim selection** — slots are threaded on an intrusive doubly-
//!   linked list in eviction order. Appending on insert and *not*
//!   moving on touch gives FIFO order; moving a touched slot to the
//!   tail gives true LRU. The head is always the next victim, in O(1).
//! * **Slot reuse** — freed slots are handed back lowest-index first
//!   (a small binary min-heap), which reproduces exactly the
//!   "first invalid way" choice of the scan it replaces, so random
//!   replacement (which picks a *way*, not a stamp) sees an identical
//!   slot layout and therefore evicts identical victims.
//!
//! The structure deliberately stores no payload: callers keep their
//! per-line metadata in the same flat slot-indexed arrays they always
//! had, and the index only answers "which slot?" and "who is next?".

/// Sentinel for an empty hash bucket and a nil list link.
const NIL: u32 = u32::MAX;

/// Fibonacci multiplier (the golden-ratio constant) for bucket hashing.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// An O(1) fully-associative index over `u64` keys: hash-mapped probes,
/// list-ordered victim selection, min-heap slot reuse. See the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use cac_sim::assoc::AssocIndex;
///
/// let mut idx = AssocIndex::new(2);
/// let a = idx.insert(0xaaa);
/// let b = idx.insert(0xbbb);
/// assert_eq!(idx.get(0xaaa), Some(a));
/// idx.touch(a); // LRU usage: a is now most recent
/// assert_eq!(idx.victim_slot(), b);
/// idx.remove_slot(b);
/// assert_eq!(idx.get(0xbbb), None);
/// assert_eq!(idx.insert(0xccc), b, "freed slots are reused lowest-first");
/// ```
#[derive(Debug, Clone)]
pub struct AssocIndex {
    /// Hash buckets holding slot numbers (`NIL` = vacant). Power-of-two
    /// sized, at most half full.
    buckets: Vec<u32>,
    /// `64 - log2(buckets.len())`, for fibonacci hashing.
    shift: u32,
    /// The key resident in each slot (meaningful only while occupied).
    keys: Vec<u64>,
    /// Intrusive doubly-linked list links, eviction order: `head` is
    /// the next victim, `tail` the most recently inserted/touched.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Free slots as a binary min-heap, so allocation hands out the
    /// lowest-numbered slot first.
    free: Vec<u32>,
}

impl AssocIndex {
    /// Creates an index over `slots` slots, all free.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or does not fit in `u32`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "an associative index needs at least one slot");
        assert!(slots < NIL as usize, "slot count must fit in u32");
        let buckets = (slots * 2).next_power_of_two().max(8);
        AssocIndex {
            buckets: vec![NIL; buckets],
            shift: 64 - buckets.trailing_zeros(),
            keys: vec![0; slots],
            prev: vec![NIL; slots],
            next: vec![NIL; slots],
            head: NIL,
            tail: NIL,
            // An ascending run is already a valid min-heap.
            free: (0..slots as u32).collect(),
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.keys.len() - self.free.len()
    }

    /// `true` when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// The key resident in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range; the value is meaningless if the
    /// slot is currently free.
    pub fn key_at(&self, slot: u32) -> u64 {
        self.keys[slot as usize]
    }

    #[inline]
    fn bucket_for(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// The slot holding `key`, if resident. O(1) expected.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mask = self.buckets.len() - 1;
        let mut i = self.bucket_for(key);
        loop {
            let slot = self.buckets[i];
            if slot == NIL {
                return None;
            }
            if self.keys[slot as usize] == key {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Moves `slot` to the most-recent end of the list (LRU usage; FIFO
    /// callers simply never call this).
    ///
    /// # Panics
    ///
    /// May panic (or corrupt recency order) if `slot` is not occupied.
    #[inline]
    pub fn touch(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.attach_tail(slot);
    }

    /// Occupies the lowest-numbered free slot with `key`, appending it
    /// at the most-recent end of the eviction list. Returns the slot.
    ///
    /// # Panics
    ///
    /// Panics if the index is full. Inserting a key that is already
    /// resident is a caller bug (debug-asserted): the probe table maps
    /// each key to one slot.
    pub fn insert(&mut self, key: u64) -> u32 {
        debug_assert!(self.get(key).is_none(), "key {key:#x} already resident");
        let slot = self.pop_free().expect("associative index is full");
        self.keys[slot as usize] = key;
        let mask = self.buckets.len() - 1;
        let mut i = self.bucket_for(key);
        while self.buckets[i] != NIL {
            i = (i + 1) & mask;
        }
        self.buckets[i] = slot;
        self.attach_tail(slot);
        slot
    }

    /// The next victim: the head (least-recent / first-in) slot.
    ///
    /// # Panics
    ///
    /// Panics if the index is empty.
    #[inline]
    pub fn victim_slot(&self) -> u32 {
        assert!(self.head != NIL, "no occupied slot to victimize");
        self.head
    }

    /// Frees `slot`: unlinks it from the eviction list, removes its key
    /// from the probe table and returns the slot to the free heap.
    ///
    /// # Panics
    ///
    /// May panic if `slot` is not occupied.
    pub fn remove_slot(&mut self, slot: u32) {
        self.unlink(slot);
        self.hash_remove(slot);
        self.push_free(slot);
    }

    /// Frees every slot.
    pub fn clear(&mut self) {
        self.buckets.fill(NIL);
        self.head = NIL;
        self.tail = NIL;
        self.free.clear();
        self.free.extend(0..self.keys.len() as u32);
    }

    /// Occupied slots in eviction order (next victim first).
    pub fn iter_eviction_order(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = cur;
            cur = self.next[cur as usize];
            Some(s)
        })
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    #[inline]
    fn attach_tail(&mut self, slot: u32) {
        self.prev[slot as usize] = self.tail;
        self.next[slot as usize] = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
    }

    /// Removes `slot`'s key from the probe table with backward-shift
    /// deletion, preserving every other key's probe chain without
    /// tombstones.
    fn hash_remove(&mut self, slot: u32) {
        let mask = self.buckets.len() - 1;
        let mut hole = self.bucket_for(self.keys[slot as usize]);
        while self.buckets[hole] != slot {
            hole = (hole + 1) & mask;
        }
        let mut j = hole;
        loop {
            self.buckets[hole] = NIL;
            loop {
                j = (j + 1) & mask;
                let s = self.buckets[j];
                if s == NIL {
                    return;
                }
                let ideal = self.bucket_for(self.keys[s as usize]);
                // The entry at `j` may fill the hole iff the hole lies on
                // its probe path, i.e. `ideal` is cyclically no later
                // than the hole.
                if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                    self.buckets[hole] = s;
                    hole = j;
                    break;
                }
            }
        }
    }

    fn pop_free(&mut self) -> Option<u32> {
        let top = *self.free.first()?;
        let last = self.free.pop().expect("non-empty");
        if let Some(first) = self.free.first_mut() {
            *first = last;
            // Sift down.
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut min = i;
                if l < self.free.len() && self.free[l] < self.free[min] {
                    min = l;
                }
                if r < self.free.len() && self.free[r] < self.free[min] {
                    min = r;
                }
                if min == i {
                    break;
                }
                self.free.swap(i, min);
                i = min;
            }
        }
        Some(top)
    }

    fn push_free(&mut self, slot: u32) {
        self.free.push(slot);
        // Sift up.
        let mut i = self.free.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.free[parent] <= self.free[i] {
                break;
            }
            self.free.swap(i, parent);
            i = parent;
        }
    }
}

/// A bounded FIFO set of block addresses with O(1) membership tests:
/// the shape of every victim buffer in this crate (Jouppi's is 4
/// entries, but ablations can make them large). Pushing beyond capacity
/// drops the oldest entry; a membership hit removes the entry (victim
/// buffers swap their line back into the cache).
///
/// # Example
///
/// ```
/// use cac_sim::assoc::VictimQueue;
///
/// let mut q = VictimQueue::new(2);
/// assert_eq!(q.push(1), None);
/// assert_eq!(q.push(2), None);
/// assert_eq!(q.push(3), Some(1), "oldest entry dropped at capacity");
/// assert!(q.take(2));
/// assert!(!q.take(2), "a hit removes the entry");
/// ```
#[derive(Debug, Clone)]
pub struct VictimQueue {
    index: AssocIndex,
}

impl VictimQueue {
    /// Creates a queue holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        VictimQueue {
            index: AssocIndex::new(capacity),
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.index.capacity()
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no block is buffered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Removes `block` if buffered; `true` on a hit.
    #[inline]
    pub fn take(&mut self, block: u64) -> bool {
        match self.index.get(block) {
            Some(slot) => {
                self.index.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Buffers `block`, returning the entry pushed out the far (oldest)
    /// end if the queue was full. `block` must not already be buffered
    /// (victim buffers hold lines *not* resident in their cache, so a
    /// duplicate push is a caller bug; debug-asserted).
    pub fn push(&mut self, block: u64) -> Option<u64> {
        let dropped = if self.index.is_full() {
            let oldest = self.index.victim_slot();
            let key = self.index.key_at(oldest);
            self.index.remove_slot(oldest);
            Some(key)
        } else {
            None
        };
        self.index.insert(block);
        dropped
    }

    /// Drops `block` without reporting a hit (inclusion invalidations).
    pub fn invalidate(&mut self, block: u64) {
        self.take(block);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = AssocIndex::new(4);
        assert!(idx.is_empty());
        let s0 = idx.insert(100);
        let s1 = idx.insert(200);
        assert_eq!((s0, s1), (0, 1), "slots allocated lowest-first");
        assert_eq!(idx.get(100), Some(0));
        assert_eq!(idx.get(200), Some(1));
        assert_eq!(idx.get(300), None);
        idx.remove_slot(s0);
        assert_eq!(idx.get(100), None);
        assert_eq!(idx.get(200), Some(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lowest_first() {
        let mut idx = AssocIndex::new(4);
        for k in 0..4 {
            idx.insert(k);
        }
        idx.remove_slot(2);
        idx.remove_slot(0);
        idx.remove_slot(3);
        assert_eq!(idx.insert(10), 0);
        assert_eq!(idx.insert(11), 2);
        assert_eq!(idx.insert(12), 3);
        assert!(idx.is_full());
    }

    #[test]
    fn fifo_order_without_touch() {
        let mut idx = AssocIndex::new(3);
        idx.insert(7);
        idx.insert(8);
        idx.insert(9);
        assert_eq!(idx.key_at(idx.victim_slot()), 7);
        let s = idx.victim_slot();
        idx.remove_slot(s);
        idx.insert(10);
        assert_eq!(idx.key_at(idx.victim_slot()), 8);
        let order: Vec<u64> = idx.iter_eviction_order().map(|s| idx.key_at(s)).collect();
        assert_eq!(order, vec![8, 9, 10]);
    }

    #[test]
    fn touch_moves_to_most_recent() {
        let mut idx = AssocIndex::new(3);
        let a = idx.insert(1);
        idx.insert(2);
        idx.insert(3);
        idx.touch(a);
        let order: Vec<u64> = idx.iter_eviction_order().map(|s| idx.key_at(s)).collect();
        assert_eq!(order, vec![2, 3, 1]);
        // Touching the tail is a no-op.
        idx.touch(a);
        assert_eq!(idx.key_at(idx.victim_slot()), 2);
    }

    #[test]
    fn clear_restores_pristine_state() {
        let mut idx = AssocIndex::new(3);
        idx.insert(5);
        idx.insert(6);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.get(5), None);
        assert_eq!(idx.insert(9), 0, "slot order restarts from zero");
    }

    /// Deterministic churn against a shadow `HashMap` + recency vector:
    /// the hash table (including backward-shift deletion) and the
    /// intrusive list must agree with the naive model through thousands
    /// of mixed operations.
    #[test]
    fn churn_matches_naive_model() {
        let slots = 61;
        let mut idx = AssocIndex::new(slots);
        let mut shadow: HashMap<u64, u32> = HashMap::new();
        let mut order: Vec<u64> = Vec::new(); // eviction order, oldest first
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 200; // small key space forces collisions + reuse
            match x % 5 {
                0 | 1 => {
                    // Insert (evicting the head when full), unless resident.
                    if !shadow.contains_key(&key) {
                        if idx.is_full() {
                            let v = idx.victim_slot();
                            let vk = idx.key_at(v);
                            assert_eq!(order.first(), Some(&vk), "step {step}");
                            idx.remove_slot(v);
                            shadow.remove(&vk);
                            order.remove(0);
                        }
                        let slot = idx.insert(key);
                        shadow.insert(key, slot);
                        order.push(key);
                    }
                }
                2 => {
                    // Touch if resident.
                    if let Some(&slot) = shadow.get(&key) {
                        idx.touch(slot);
                        let pos = order.iter().position(|&k| k == key).unwrap();
                        order.remove(pos);
                        order.push(key);
                    }
                }
                3 => {
                    // Remove if resident.
                    if let Some(slot) = shadow.remove(&key) {
                        idx.remove_slot(slot);
                        let pos = order.iter().position(|&k| k == key).unwrap();
                        order.remove(pos);
                    }
                }
                _ => {
                    // Lookup.
                    assert_eq!(idx.get(key), shadow.get(&key).copied(), "step {step}");
                }
            }
            assert_eq!(idx.len(), shadow.len(), "step {step}");
        }
        // Full-order agreement at the end.
        let got: Vec<u64> = idx.iter_eviction_order().map(|s| idx.key_at(s)).collect();
        assert_eq!(got, order);
        for (&k, &slot) in &shadow {
            assert_eq!(idx.get(k), Some(slot));
        }
    }

    #[test]
    fn victim_queue_is_a_fifo_set() {
        let mut q = VictimQueue::new(4);
        for b in [10, 20, 30, 40] {
            assert_eq!(q.push(b), None);
        }
        assert_eq!(q.push(50), Some(10));
        assert!(q.take(30));
        assert_eq!(q.len(), 3);
        assert_eq!(q.push(60), None);
        assert_eq!(q.push(70), Some(20));
        q.invalidate(40);
        assert!(!q.take(40));
        q.clear();
        assert!(q.is_empty() && !q.take(50));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = AssocIndex::new(0);
    }
}

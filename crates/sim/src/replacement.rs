//! Replacement policies.
//!
//! Skewed placements break the classic notion of a per-set LRU stack: the
//! candidate lines for one block live in *different* sets of each way. The
//! policies here therefore operate on per-line metadata (a global
//! access-time stamp), which works uniformly for conventional and skewed
//! caches and is the standard approach in skewed-associative simulators.

/// Which line to victimize when all candidate ways hold valid lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ReplacementPolicy {
    /// Evict the candidate with the oldest access-time stamp.
    #[default]
    Lru,
    /// Evict the candidate filled earliest.
    Fifo,
    /// Evict a pseudo-random candidate (deterministic xorshift stream).
    Random,
}

/// Internal selector state (owns the RNG stream for [`ReplacementPolicy::Random`]).
#[derive(Debug, Clone)]
pub(crate) struct Selector {
    policy: ReplacementPolicy,
    seed: u64,
    rng_state: u64,
}

impl Selector {
    pub(crate) fn new(policy: ReplacementPolicy, seed: u64) -> Self {
        let mut s = Selector {
            policy,
            seed,
            rng_state: 0,
        };
        s.reset();
        s
    }

    /// Restores the as-constructed state: the random stream restarts
    /// from the seed, so a reset cache replays exactly like a freshly
    /// built one (the sweep engine reuses models across sweep items on
    /// this guarantee).
    pub(crate) fn reset(&mut self) {
        // splitmix64 scramble so distinct seeds yield distinct xorshift
        // streams (and state is never zero).
        let mut z = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        self.rng_state = z | 1;
    }

    /// The configured policy (the cache hot paths branch on it once per
    /// chunk when picking a kernel, and once per fill otherwise).
    #[inline]
    pub(crate) fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// The victim index for [`ReplacementPolicy::Random`]: one xorshift
    /// draw — the same stream, consumed at the same rate, as the
    /// [`Selector::choose_by`] Random arm, so callers that select LRU and
    /// FIFO victims elsewhere (stamp scan, intrusive list) replay
    /// byte-identically to the `choose_by` path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub(crate) fn pick_random(&mut self, n: usize) -> usize {
        assert!(n != 0, "no replacement candidates");
        (self.next_random() % n as u64) as usize
    }

    /// Picks the victim among candidates described by
    /// `(last_touch, fill_time)` pairs. Returns the index of the chosen
    /// candidate. Slice-based convenience over [`Selector::choose_by`],
    /// kept for tests; the simulators use the allocation-free form.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    #[cfg(test)]
    pub(crate) fn choose(&mut self, candidates: &[(u64, u64)]) -> usize {
        self.choose_by(candidates.len(), |i| candidates[i])
    }

    /// Allocation-free variant of [`Selector::choose`]: `key(i)` yields
    /// the `(last_touch, fill_time)` pair of candidate `i < n`. This is
    /// the *reference* victim-selection semantics the tests pin down;
    /// the simulator hot paths reproduce it without the closure — a
    /// fused minimum-stamp scan for LRU/FIFO, the intrusive list of
    /// [`crate::assoc::AssocIndex`] for one-set geometries, and
    /// [`Selector::pick_random`] (the same RNG stream) for Random.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[cfg(test)]
    pub(crate) fn choose_by<F: FnMut(usize) -> (u64, u64)>(
        &mut self,
        n: usize,
        mut key: F,
    ) -> usize {
        assert!(n != 0, "no replacement candidates");
        match self.policy {
            ReplacementPolicy::Lru => (0..n).min_by_key(|&i| key(i).0).expect("n >= 1"),
            ReplacementPolicy::Fifo => (0..n).min_by_key(|&i| key(i).1).expect("n >= 1"),
            ReplacementPolicy::Random => self.pick_random(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_oldest_touch() {
        let mut s = Selector::new(ReplacementPolicy::Lru, 1);
        assert_eq!(s.choose(&[(10, 0), (3, 9), (7, 1)]), 1);
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let mut s = Selector::new(ReplacementPolicy::Fifo, 1);
        assert_eq!(s.choose(&[(10, 5), (3, 9), (7, 1)]), 2);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let mut s = Selector::new(ReplacementPolicy::Random, seed);
            (0..16)
                .map(|_| s.choose(&[(0, 0), (0, 0), (0, 0), (0, 0)]))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(42), pick(42));
        // Different seeds give a different sequence (overwhelmingly).
        assert_ne!(pick(42), pick(43));
        // All picks are in range.
        assert!(pick(7).iter().all(|&i| i < 4));
    }

    #[test]
    fn reset_restarts_the_random_stream() {
        let mut s = Selector::new(ReplacementPolicy::Random, 9);
        let first: Vec<usize> = (0..8).map(|_| s.choose(&[(0, 0); 4])).collect();
        s.reset();
        let again: Vec<usize> = (0..8).map(|_| s.choose(&[(0, 0); 4])).collect();
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "no replacement candidates")]
    fn empty_candidates_panics() {
        let mut s = Selector::new(ReplacementPolicy::Lru, 1);
        let _ = s.choose(&[]);
    }
}

//! Generic N-level cache hierarchies with per-level sidecars.
//!
//! [`crate::hierarchy::TwoLevelHierarchy`] models the paper's §3
//! *virtual-real* two-level design, with its virtual-alias control and
//! hole accounting. This module provides the general case it
//! specializes: a physically-addressed stack of any number of
//! [`Cache`] levels, with Inclusion enforced between levels (an
//! eviction at level *j* invalidates the block everywhere above, the
//! §3.2 property that makes snooping cheap), and with the structures
//! Jouppi's organization \[13\] bakes into one type — a victim buffer,
//! sequential stream buffers and a Kroft MSHR file — attachable as
//! *sidecars* to **any** level instead.
//!
//! Semantics per level, processor side first:
//!
//! 1. the cache array is probed (and filled on a read miss, as
//!    [`Cache::access`] does);
//! 2. on a miss, the victim buffer is probed — a hit swaps the block
//!    back (the fill of step 1 *is* the swap-back) and the access is
//!    serviced here, generating no next-level traffic;
//! 3. then the stream-buffer heads — a head hit services the access and
//!    advances the prefetch FIFO;
//! 4. a full miss allocates a stream (reads), presents the block to the
//!    MSHR file (bookkeeping only — occupancy never changes hit/miss
//!    behaviour), and falls through to the next level, as a read when
//!    this level allocated (the downstream traffic is the fill fetch)
//!    or as the original write when it did not (write-through).
//!
//! Any line a level's cache evicts drops into that level's victim
//! buffer when one is attached; blocks leaving a level entirely trigger
//! the Inclusion invalidation of all levels above it.
//!
//! With two levels, default policies and no sidecars, the stack
//! reproduces the [`TwoLevelHierarchy`] counters exactly under an
//! identity page mapping (`crates/sim/tests/stack_equivalence.rs`
//! holds the guard); with one level plus victim and stream sidecars it
//! reproduces [`crate::jouppi::JouppiCache`].
//!
//! [`TwoLevelHierarchy`]: crate::hierarchy::TwoLevelHierarchy
//!
//! # Example
//!
//! ```
//! use cac_core::{CacheGeometry, IndexSpec};
//! use cac_sim::stack::{Hierarchy, LevelBuilder};
//!
//! // Three levels: 8KB skewed-I-Poly L1 with a 4-line victim buffer,
//! // 256KB L2, 2MB L3 (both write-back).
//! let mut h = Hierarchy::builder()
//!     .level(
//!         LevelBuilder::new(CacheGeometry::new(8 * 1024, 32, 2)?)
//!             .index_spec(IndexSpec::ipoly_skewed())
//!             .victim_buffer(4),
//!     )
//!     .level(LevelBuilder::new(CacheGeometry::new(256 * 1024, 32, 2)?).write_back())
//!     .level(LevelBuilder::new(CacheGeometry::new(2 << 20, 32, 4)?).write_back())
//!     .build()?;
//! h.access(0x1234, false);
//! assert!(h.access(0x1234, false).hit);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::assoc::VictimQueue;
use crate::cache::{Cache, CacheBuilder, WritePolicy};
use crate::model::{extra, AccessOutcome, ComponentStats, MemoryModel, ModelStats, ServicePoint};
use crate::mshr::MshrFile;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexSpec};
use cac_trace::MemRef;
use std::collections::VecDeque;

/// Default MSHR fill latency presented to an attached [`MshrFile`]
/// (cycles); purely bookkeeping.
pub const DEFAULT_MISS_PENALTY: u64 = 20;

/// Declarative description of one hierarchy level: a cache plus
/// optional sidecars. Consumed by [`HierarchyBuilder::level`].
#[derive(Debug, Clone)]
pub struct LevelBuilder {
    cache: CacheBuilder,
    victim_lines: Option<usize>,
    stream: Option<(usize, usize)>,
    mshrs: Option<usize>,
    miss_penalty: u64,
}

impl LevelBuilder {
    /// Starts a level with the paper's L1 defaults: modulo indexing,
    /// LRU, write-through / no-write-allocate, no sidecars.
    pub fn new(geom: CacheGeometry) -> Self {
        LevelBuilder {
            cache: CacheBuilder::new(geom),
            victim_lines: None,
            stream: None,
            mshrs: None,
            miss_penalty: DEFAULT_MISS_PENALTY,
        }
    }

    /// Sets the placement scheme.
    #[must_use]
    pub fn index_spec(mut self, spec: IndexSpec) -> Self {
        self.cache = self.cache.index_spec(spec);
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.cache = self.cache.replacement(policy);
        self
    }

    /// Sets the write policy.
    #[must_use]
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.cache = self.cache.write_policy(policy);
        self
    }

    /// Shorthand for write-back / write-allocate (the paper's L2).
    #[must_use]
    pub fn write_back(self) -> Self {
        self.write_policy(WritePolicy::WriteBackAllocate)
    }

    /// Seeds the random-replacement stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cache = self.cache.seed(seed);
        self
    }

    /// Attaches a fully-associative LRU victim buffer of `lines` entries
    /// (Jouppi's configuration is 4).
    #[must_use]
    pub fn victim_buffer(mut self, lines: usize) -> Self {
        self.victim_lines = Some(lines);
        self
    }

    /// Attaches `buffers` sequential stream buffers of `depth` blocks
    /// each (Jouppi's configuration is 4 × 4).
    #[must_use]
    pub fn stream_buffers(mut self, buffers: usize, depth: usize) -> Self {
        self.stream = Some((buffers, depth));
        self
    }

    /// Attaches a Kroft MSHR file of `registers` entries (the paper's
    /// processor allows 8 outstanding misses). Bookkeeping only.
    #[must_use]
    pub fn mshrs(mut self, registers: usize) -> Self {
        self.mshrs = Some(registers);
        self
    }

    /// Fill latency reported to the MSHR file on a miss, in cycles.
    #[must_use]
    pub fn miss_penalty(mut self, cycles: u64) -> Self {
        self.miss_penalty = cycles;
        self
    }

    fn build(self) -> Result<Level, Error> {
        for (what, v) in [
            ("victim buffer lines", self.victim_lines),
            ("stream buffers", self.stream.map(|(n, _)| n)),
            ("stream buffer depth", self.stream.map(|(_, d)| d)),
            ("MSHR registers", self.mshrs),
        ] {
            if v == Some(0) {
                return Err(Error::OutOfRange {
                    what,
                    value: 0,
                    constraint: ">= 1",
                });
            }
        }
        Ok(Level {
            cache: self.cache.build()?,
            victim: self.victim_lines.map(VictimQueue::new),
            streams: self.stream.map(|(buffers, depth)| StreamSet {
                buffers: Vec::with_capacity(buffers),
                heads: Vec::with_capacity(buffers),
                capacity: buffers,
                depth,
            }),
            mshr: self.mshrs.map(MshrFile::new),
            miss_penalty: self.miss_penalty,
            victim_hits: 0,
            stream_hits: 0,
        })
    }
}

/// One sequential prefetch FIFO (Jouppi's head-only policy).
#[derive(Debug)]
struct StreamFifo {
    fifo: VecDeque<u64>,
    next: u64,
    last_used: u64,
}

/// A set of stream buffers attached to one level.
#[derive(Debug)]
struct StreamSet {
    buffers: Vec<StreamFifo>,
    /// Flat tag store over the buffer heads (`heads[i]` mirrors
    /// `buffers[i].fifo.front()`): the hit check scans one contiguous
    /// array, first match wins (two streams may converge on one head).
    heads: Vec<u64>,
    capacity: usize,
    depth: usize,
}

impl StreamSet {
    /// Head-only probe: a hit pops the head, tops the FIFO back up and
    /// refreshes the LRU stamp.
    fn take_head(&mut self, block: u64, clock: u64) -> bool {
        let Some(bi) = self.heads.iter().position(|&h| h == block) else {
            return false;
        };
        let b = &mut self.buffers[bi];
        b.fifo.pop_front();
        b.last_used = clock;
        while b.fifo.len() < self.depth {
            b.fifo.push_back(b.next);
            b.next += 1;
        }
        self.heads[bi] = *b.fifo.front().expect("stream topped up");
        true
    }

    /// (Re)allocates the LRU buffer to a fresh stream after `block`.
    fn allocate(&mut self, block: u64, clock: u64) {
        let mut fifo = VecDeque::with_capacity(self.depth);
        for i in 1..=self.depth as u64 {
            fifo.push_back(block + i);
        }
        let head = *fifo.front().expect("depth >= 1");
        let fresh = StreamFifo {
            fifo,
            next: block + self.depth as u64 + 1,
            last_used: clock,
        };
        if self.buffers.len() < self.capacity {
            self.buffers.push(fresh);
            self.heads.push(head);
        } else {
            let lru = self
                .buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_used)
                .map(|(i, _)| i)
                .expect("at least one buffer");
            self.buffers[lru] = fresh;
            self.heads[lru] = head;
        }
    }
}

/// One level: cache array plus attached sidecars.
#[derive(Debug)]
struct Level {
    cache: Cache,
    victim: Option<VictimQueue>,
    streams: Option<StreamSet>,
    mshr: Option<MshrFile>,
    miss_penalty: u64,
    victim_hits: u64,
    stream_hits: u64,
}

/// Builder for a [`Hierarchy`]; see the [module docs](self).
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    levels: Vec<LevelBuilder>,
    inclusion: bool,
}

impl HierarchyBuilder {
    /// Starts an empty builder with Inclusion enforcement on (the
    /// paper's §3.2 choice).
    pub fn new() -> Self {
        HierarchyBuilder {
            levels: Vec::new(),
            inclusion: true,
        }
    }

    /// Appends a level (processor side first).
    #[must_use]
    pub fn level(mut self, level: LevelBuilder) -> Self {
        self.levels.push(level);
        self
    }

    /// Enables or disables Inclusion enforcement between levels.
    #[must_use]
    pub fn inclusion(mut self, enforce: bool) -> Self {
        self.inclusion = enforce;
        self
    }

    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if there are no levels, if block sizes differ
    /// across levels, or if capacities shrink going away from the
    /// processor (Inclusion requires each level to cover the one
    /// above, §3.2); plus any per-level cache validation error.
    pub fn build(self) -> Result<Hierarchy, Error> {
        if self.levels.is_empty() {
            return Err(Error::config(
                "a hierarchy needs at least one level (the paper's §4 machine has two)",
            ));
        }
        for (i, pair) in self.levels.windows(2).enumerate() {
            let (a, b) = (pair[0].cache.geometry(), pair[1].cache.geometry());
            if a.block() != b.block() {
                return Err(Error::config(format!(
                    "level {} block size {} != level {} block size {}; all levels must \
                     share one line size (the paper's L1 and L2 both use 32-byte lines, §4)",
                    i + 1,
                    a.block(),
                    i + 2,
                    b.block()
                )));
            }
            if b.capacity() < a.capacity() {
                return Err(Error::config(format!(
                    "level {} capacity {} < level {} capacity {}; Inclusion requires each \
                     level to cover the one above it (§3.2)",
                    i + 2,
                    b.capacity(),
                    i + 1,
                    a.capacity()
                )));
            }
        }
        Ok(Hierarchy {
            levels: self
                .levels
                .into_iter()
                .map(LevelBuilder::build)
                .collect::<Result<_, _>>()?,
            inclusion: self.inclusion,
            clock: 0,
            demand: CacheStats::default(),
            inclusion_invalidations: 0,
            holes_created: 0,
        })
    }
}

/// A physically-addressed N-level cache stack with per-level sidecars;
/// see the [module docs](self) for semantics and an example.
#[derive(Debug)]
pub struct Hierarchy {
    levels: Vec<Level>,
    inclusion: bool,
    clock: u64,
    demand: CacheStats,
    inclusion_invalidations: u64,
    holes_created: u64,
}

impl Hierarchy {
    /// Starts a [`HierarchyBuilder`].
    pub fn builder() -> HierarchyBuilder {
        HierarchyBuilder::new()
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The cache array of level `i` (0 = closest to the processor).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_levels()`.
    pub fn level(&self, i: usize) -> &Cache {
        &self.levels[i].cache
    }

    /// The demand stream's counters (hit = serviced before memory).
    pub fn demand_stats(&self) -> CacheStats {
        self.demand
    }

    /// Upper-level lines invalidated to preserve Inclusion.
    pub fn inclusion_invalidations(&self) -> u64 {
        self.inclusion_invalidations
    }

    /// Inclusion invalidations that punched a hole at level 0.
    pub fn holes_created(&self) -> u64 {
        self.holes_created
    }

    /// Invalidates everything (caches and sidecars) and clears all
    /// counters.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.cache.flush();
            if let Some(v) = &mut level.victim {
                v.clear();
            }
            if let Some(s) = &mut level.streams {
                s.buffers.clear();
                s.heads.clear();
            }
            if let Some(m) = &mut level.mshr {
                m.reset();
            }
            level.victim_hits = 0;
            level.stream_hits = 0;
        }
        self.clock = 0;
        self.demand = CacheStats::default();
        self.inclusion_invalidations = 0;
        self.holes_created = 0;
    }

    /// Removes `block` from every level above `from` (cache array and
    /// victim buffer), counting Inclusion invalidations and holes.
    fn invalidate_above(&mut self, from: usize, block: u64) {
        for k in 0..from {
            if self.levels[k].cache.invalidate_block(block) {
                self.inclusion_invalidations += 1;
                if k == 0 {
                    self.holes_created += 1;
                }
            }
            if let Some(v) = &mut self.levels[k].victim {
                v.invalidate(block);
            }
        }
    }

    /// Routes a cache eviction at level `i`: into the level's victim
    /// buffer when attached. Returns the block that left the level
    /// entirely, if any.
    fn route_eviction(&mut self, i: usize, evicted: Option<u64>) -> Option<u64> {
        let block = evicted?;
        match &mut self.levels[i].victim {
            Some(v) => v.push(block),
            None => Some(block),
        }
    }

    /// Handles an eviction at level `i` including the Inclusion
    /// invalidation of the levels above it. Returns the block that left
    /// the level entirely, if any — for the last (memory-side) level
    /// that means the block left the whole organization.
    fn settle_eviction(&mut self, i: usize, evicted: Option<u64>) -> Option<u64> {
        let out = self.route_eviction(i, evicted);
        if let Some(block) = out {
            if self.inclusion && i > 0 {
                self.invalidate_above(i, block);
            }
        }
        out
    }

    /// Records a last-level departure in the outcome's eviction slot.
    fn note_departure(&mut self, i: usize, evicted: Option<u64>, left_org: &mut Option<u64>) {
        let out = self.settle_eviction(i, evicted);
        if i + 1 == self.levels.len() {
            *left_org = out.or(*left_org);
        }
    }

    /// Performs an access; `is_write` selects each level's write-policy
    /// path, exactly as [`Cache::access`] does. The outcome's `evicted`
    /// reports a block the *last* level pushed out — under Inclusion
    /// that is exactly a block leaving the organization entirely
    /// (upper-level evictions stay resident below).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let n = self.levels.len();
        let mut down_is_write = is_write;
        let mut served: Option<ServicePoint> = None;
        let mut left_org: Option<u64> = None;
        for i in 0..n {
            let block = self.levels[i].cache.geometry().block_addr(addr);
            let res = self.levels[i].cache.access(addr, down_is_write);
            if res.hit {
                served = Some(ServicePoint::Level(i as u8));
                self.note_departure(i, res.evicted, &mut left_org);
                if down_is_write {
                    let propagated = self.propagate_write(i, addr);
                    left_org = propagated.or(left_org);
                }
                break;
            }
            // Cache miss: probe the read sidecars *before* buffering this
            // access's own eviction, so a block cannot be dropped from
            // the victim buffer by the very access that wants it back.
            let mut sidecar = None;
            if !down_is_write {
                if let Some(v) = &mut self.levels[i].victim {
                    if v.take(block) {
                        // The fill `res` performed *is* the swap-back.
                        self.levels[i].victim_hits += 1;
                        sidecar = Some(ServicePoint::Victim(i as u8));
                    }
                }
                if sidecar.is_none() {
                    let clock = self.clock;
                    if let Some(s) = &mut self.levels[i].streams {
                        if s.take_head(block, clock) {
                            self.levels[i].stream_hits += 1;
                            sidecar = Some(ServicePoint::Stream(i as u8));
                        }
                    }
                }
            }
            self.note_departure(i, res.evicted, &mut left_org);
            if let Some(point) = sidecar {
                served = Some(point);
                break;
            }
            // Full miss at this level: allocate a stream (reads), note
            // the outstanding miss, and fall through to the next level —
            // as a read when this level allocated (the downstream
            // traffic is its fill fetch).
            if !down_is_write {
                let clock = self.clock;
                if let Some(s) = &mut self.levels[i].streams {
                    s.allocate(block, clock);
                }
            }
            let (clock, penalty) = (self.clock, self.levels[i].miss_penalty);
            if let Some(m) = &mut self.levels[i].mshr {
                m.request(block, clock, penalty);
            }
            down_is_write &= !res.filled;
        }
        let hit = served.is_some();
        if is_write {
            self.demand.record_write(hit);
        } else {
            self.demand.record_read(hit);
        }
        match served {
            Some(point) => AccessOutcome {
                evicted: left_org,
                ..AccessOutcome::hit_at(point)
            },
            None => AccessOutcome {
                filled: !is_write,
                evicted: left_org,
                ..AccessOutcome::miss()
            },
        }
    }

    /// Propagates a write serviced at level `i` through the levels below
    /// while the receiving level's policy is write-through. Returns any
    /// block the last level pushed out along the way.
    fn propagate_write(&mut self, i: usize, addr: u64) -> Option<u64> {
        let mut j = i;
        let mut left_org = None;
        while j + 1 < self.levels.len()
            && self.levels[j].cache.write_policy() == WritePolicy::WriteThroughNoAllocate
        {
            j += 1;
            let res = self.levels[j].cache.access(addr, true);
            self.note_departure(j, res.evicted, &mut left_org);
        }
        left_org
    }

    /// Performs a read access.
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, false)
    }

    /// Performs a write access.
    pub fn write(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, true)
    }
}

impl MemoryModel for Hierarchy {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        Hierarchy::access(self, r.addr, r.is_write)
    }

    fn stats(&self) -> ModelStats {
        let mut components = Vec::with_capacity(self.levels.len());
        let mut extras = vec![
            extra("inclusion-invalidations", self.inclusion_invalidations),
            extra("holes-created", self.holes_created),
        ];
        for (i, level) in self.levels.iter().enumerate() {
            let name = format!("l{}", i + 1);
            components.push(ComponentStats {
                name: name.clone(),
                stats: level.cache.stats(),
            });
            if level.victim.is_some() {
                extras.push(extra(format!("{name}-victim-hits"), level.victim_hits));
            }
            if level.streams.is_some() {
                extras.push(extra(format!("{name}-stream-hits"), level.stream_hits));
            }
            if let Some(m) = &level.mshr {
                let s = m.stats();
                extras.push(extra(format!("{name}-mshr-primary"), s.primary));
                extras.push(extra(format!("{name}-mshr-secondary"), s.secondary));
                extras.push(extra(format!("{name}-mshr-rejections"), s.rejections));
            }
        }
        ModelStats {
            demand: self.demand,
            components,
            extras,
        }
    }

    fn reset(&mut self) {
        Hierarchy::reset(self);
    }

    fn describe(&self) -> String {
        let levels: Vec<String> = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut d = format!(
                    "L{} {} ({})",
                    i + 1,
                    l.cache.geometry(),
                    l.cache.index_fn().label()
                );
                if let Some(v) = &l.victim {
                    d.push_str(&format!(" +victim[{}]", v.capacity()));
                }
                if let Some(s) = &l.streams {
                    d.push_str(&format!(" +stream[{}x{}]", s.capacity, s.depth));
                }
                if let Some(m) = &l.mshr {
                    d.push_str(&format!(" +mshr[{}]", m.capacity()));
                }
                d
            })
            .collect();
        format!("hierarchy: {}", levels.join(" / "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Hierarchy {
        Hierarchy::builder()
            .level(
                LevelBuilder::new(CacheGeometry::new(1024, 32, 1).unwrap())
                    .index_spec(IndexSpec::ipoly_skewed()),
            )
            .level(LevelBuilder::new(CacheGeometry::new(4096, 32, 1).unwrap()).write_back())
            .build()
            .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_stacks() {
        assert!(Hierarchy::builder().build().is_err());
        // Shrinking capacity.
        let bad = Hierarchy::builder()
            .level(LevelBuilder::new(CacheGeometry::new(8192, 32, 1).unwrap()))
            .level(LevelBuilder::new(CacheGeometry::new(4096, 32, 1).unwrap()))
            .build();
        assert!(bad.is_err());
        // Mismatched block sizes.
        let bad = Hierarchy::builder()
            .level(LevelBuilder::new(CacheGeometry::new(4096, 32, 1).unwrap()))
            .level(LevelBuilder::new(CacheGeometry::new(8192, 64, 1).unwrap()))
            .build();
        assert!(bad.is_err());
        // Zero-sized sidecars.
        let bad = Hierarchy::builder()
            .level(LevelBuilder::new(CacheGeometry::new(4096, 32, 1).unwrap()).victim_buffer(0))
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn basic_hit_flow_and_service_levels() {
        let mut h = two_level();
        let first = h.access(0x1000, false);
        assert!(!first.hit);
        assert_eq!(first.served_by, ServicePoint::Memory);
        assert_eq!(h.access(0x1000, false).served_by, ServicePoint::Level(0));
        // Push the block out of L1 only; it should then hit at L2.
        let evicter = 0x1000 + 1024 * 3; // likely conflicting eventually
        for i in 0..64u64 {
            h.access(evicter + i * 1024, false);
        }
        let again = h.access(0x1000, false);
        assert!(matches!(
            again.served_by,
            ServicePoint::Level(_) | ServicePoint::Memory
        ));
        let s = MemoryModel::stats(&h);
        assert_eq!(s.demand.accesses, 67);
        assert_eq!(s.components.len(), 2);
        assert_eq!(s.components[0].name, "l1");
    }

    #[test]
    fn inclusion_is_maintained() {
        let mut h = two_level();
        for i in 0..4096u64 {
            h.access(i * 32 * 3, false);
        }
        assert!(h.inclusion_invalidations() > 0);
        assert_eq!(h.inclusion_invalidations(), h.holes_created());
        // Every L1-resident block must be in L2.
        let l2_blocks: std::collections::HashSet<u64> = h.level(1).resident_blocks().collect();
        for b in h.level(0).resident_blocks() {
            assert!(l2_blocks.contains(&b), "L1 block {b:#x} missing from L2");
        }
    }

    #[test]
    fn three_level_stack_services_at_the_right_depth() {
        let mut h = Hierarchy::builder()
            .level(LevelBuilder::new(CacheGeometry::new(512, 32, 1).unwrap()))
            .level(LevelBuilder::new(CacheGeometry::new(2048, 32, 1).unwrap()).write_back())
            .level(LevelBuilder::new(CacheGeometry::new(8192, 32, 1).unwrap()).write_back())
            .build()
            .unwrap();
        // Fill well past L1 and L2 capacity.
        for i in 0..256u64 {
            h.access(i * 32, false);
        }
        // A recent block should be in L1; an older one may be deeper.
        let mut seen_deeper = false;
        for i in 0..256u64 {
            let out = h.access(i * 32, false);
            if matches!(
                out.served_by,
                ServicePoint::Level(1) | ServicePoint::Level(2)
            ) {
                seen_deeper = true;
            }
        }
        assert!(seen_deeper, "no access was serviced below L1");
        let s = MemoryModel::stats(&h);
        assert_eq!(s.components.len(), 3);
        assert!(s.demand.hits > 0);
    }

    #[test]
    fn victim_sidecar_catches_conflicts_like_a_victim_cache() {
        let mut h = Hierarchy::builder()
            .level(LevelBuilder::new(CacheGeometry::new(8 * 1024, 32, 1).unwrap()).victim_buffer(4))
            .build()
            .unwrap();
        let a = 0u64;
        let b = 8 * 1024; // same direct-mapped set
        h.access(a, false);
        h.access(b, false);
        let out = h.access(a, false);
        assert_eq!(out.served_by, ServicePoint::Victim(0));
        assert!(out.hit);
        let s = MemoryModel::stats(&h);
        assert_eq!(s.extra("l1-victim-hits"), Some(1));
        assert_eq!(s.demand.misses, 2);
    }

    #[test]
    fn stream_sidecar_rescues_sequential_misses() {
        let mut h = Hierarchy::builder()
            .level(
                LevelBuilder::new(CacheGeometry::new(8 * 1024, 32, 1).unwrap())
                    .stream_buffers(4, 4),
            )
            .build()
            .unwrap();
        for i in 0..1024u64 {
            h.access(i * 32, false);
        }
        let s = MemoryModel::stats(&h);
        assert_eq!(s.demand.misses, 1, "{:?}", s.demand);
        assert_eq!(s.extra("l1-stream-hits"), Some(1023));
    }

    #[test]
    fn writes_propagate_through_write_through_levels() {
        let mut h = two_level();
        h.access(0x40, false); // resident in both levels
        let l2_writes_before = h.level(1).stats().writes;
        let out = h.access(0x40, true); // L1 write-through hit
        assert_eq!(out.served_by, ServicePoint::Level(0));
        assert_eq!(h.level(1).stats().writes, l2_writes_before + 1);
        // A write miss at L1 (no-allocate) lands at L2 as a write.
        let miss = h.access(0x9000, true);
        assert!(!h.level(0).contains(0x9000));
        assert!(h.level(1).contains(0x9000));
        assert!(!miss.hit || h.level(1).stats().writes > l2_writes_before);
    }

    #[test]
    fn mshr_sidecar_is_bookkeeping_only() {
        let mk = |mshrs: Option<usize>| {
            let mut lb = LevelBuilder::new(CacheGeometry::new(1024, 32, 1).unwrap());
            if let Some(n) = mshrs {
                lb = lb.mshrs(n);
            }
            Hierarchy::builder()
                .level(lb)
                .level(LevelBuilder::new(CacheGeometry::new(4096, 32, 1).unwrap()).write_back())
                .build()
                .unwrap()
        };
        let mut with = mk(Some(8));
        let mut without = mk(None);
        let mut x = 0x9e37u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (1 << 18);
            let w = x.is_multiple_of(5);
            with.access(addr, w);
            without.access(addr, w);
        }
        assert_eq!(with.demand_stats(), without.demand_stats());
        assert_eq!(with.level(0).stats(), without.level(0).stats());
        assert_eq!(with.level(1).stats(), without.level(1).stats());
        let s = MemoryModel::stats(&with);
        assert!(s.extra("l1-mshr-primary").unwrap() > 0);
        // reset() clears the MSHR counters along with everything else.
        with.reset();
        let s = MemoryModel::stats(&with);
        assert_eq!(s.extra("l1-mshr-primary"), Some(0));
        assert_eq!(s.extra("l1-mshr-secondary"), Some(0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = two_level();
        for i in 0..512u64 {
            h.access(i * 32, i % 3 == 0);
        }
        h.reset();
        assert_eq!(h.demand_stats(), CacheStats::default());
        assert_eq!(h.level(0).resident_lines(), 0);
        assert_eq!(h.level(1).resident_lines(), 0);
        assert_eq!(h.inclusion_invalidations(), 0);
    }
}

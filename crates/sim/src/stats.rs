//! Access and miss counters shared by every cache organization.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Running counters for one cache (or one level of a hierarchy).
///
/// All organizations in this crate update these uniformly so that the
/// harness binaries can print comparable tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Valid lines evicted to make room for a fill.
    pub evictions: u64,
    /// Lines invalidated externally (inclusion, aliases, coherence).
    pub invalidations: u64,
    /// Dirty lines written back (write-back caches only).
    pub writebacks: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overall miss ratio, `misses / accesses` (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Overall hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Load (read) miss ratio — the quantity the paper's Tables 2–3
    /// report.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Records a read outcome.
    #[inline]
    pub fn record_read(&mut self, hit: bool) {
        self.accesses += 1;
        self.reads += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.read_misses += 1;
        }
    }

    /// Records a write outcome.
    #[inline]
    pub fn record_write(&mut self, hit: bool) {
        self.accesses += 1;
        self.writes += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.write_misses += 1;
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            read_misses: self.read_misses + rhs.read_misses,
            write_misses: self.write_misses + rhs.write_misses,
            evictions: self.evictions + rhs.evictions,
            invalidations: self.invalidations + rhs.invalidations,
            writebacks: self.writebacks + rhs.writebacks,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

/// Field-wise difference; used by the batched-replay APIs to report the
/// counters attributable to one trace (`after - before`).
///
/// # Panics
///
/// Panics in debug builds if any counter of `rhs` exceeds the
/// corresponding counter of `self` (the subtraction underflows).
impl Sub for CacheStats {
    type Output = CacheStats;
    fn sub(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses - rhs.accesses,
            hits: self.hits - rhs.hits,
            misses: self.misses - rhs.misses,
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            read_misses: self.read_misses - rhs.read_misses,
            write_misses: self.write_misses - rhs.write_misses,
            evictions: self.evictions - rhs.evictions,
            invalidations: self.invalidations - rhs.invalidations,
            writebacks: self.writebacks - rhs.writebacks,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses (miss ratio {:.2}%)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_stats() {
        let s = CacheStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.read_miss_ratio(), 0.0);
    }

    #[test]
    fn record_read_and_write() {
        let mut s = CacheStats::new();
        s.record_read(true);
        s.record_read(false);
        s.record_write(false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.read_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn addition_sums_fieldwise() {
        let mut a = CacheStats::new();
        a.record_read(false);
        a.evictions = 2;
        let mut b = CacheStats::new();
        b.record_write(true);
        b.invalidations = 3;
        let c = a + b;
        assert_eq!(c.accesses, 2);
        assert_eq!(c.evictions, 2);
        assert_eq!(c.invalidations, 3);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_contains_ratio() {
        let mut s = CacheStats::new();
        s.record_read(false);
        s.record_read(true);
        assert!(s.to_string().contains("50.00%"));
    }
}

//! The parametric cache model.
//!
//! One [`Cache`] type covers every single-level organization the paper's
//! evaluation uses: direct-mapped, set-associative and skewed caches are
//! all "a set of ways, each with its own index function" — conventional
//! caches just use the same function in every way. Fully-associative
//! caches are the degenerate single-set geometry.
//!
//! # Hot-path architecture
//!
//! The access loop is built for trace-replay throughput:
//!
//! * **LUT-compiled placement.** The [`IndexSpec`] is compiled into a
//!   [`cac_core::IndexTable`] at construction, so `set_index` on the
//!   access path is a single bounds-checked table load — no dynamic
//!   dispatch, no per-way hash evaluation (the paper's own argument:
//!   the I-Poly hash is a constant-time XOR tree, §3).
//! * **Struct-of-arrays storage with packed metadata.** Lines live in
//!   flat way-major arrays indexed by `way * sets + set`: a tag array
//!   with an invalid-tag sentinel, and **one** packed `u64` metadata
//!   word per line (bit 0 = dirty, the upper bits = the replacement
//!   stamp the configured policy actually consults — last-touch time
//!   for LRU, fill time for FIFO). An access touches two arrays, not
//!   four.
//! * **Slot-precise probes.** [`Cache::probe_slot`] yields `(way, set)`,
//!   and victim selection folds the winning `(way, set)` out of its
//!   single scan, so the hit path and the fill path never recompute an
//!   index a probe already derived.
//! * **O(1) fully-associative engine.** When the geometry degenerates
//!   to one set, probes and victim selection run through
//!   [`crate::assoc::AssocIndex`] — an open-addressing tag map plus an
//!   intrusive LRU/FIFO list — instead of scanning every way, with
//!   behaviour (including the random-replacement RNG stream)
//!   byte-identical to the scan it replaces.
//! * **Specialized probe kernels.** [`Cache::run_refs`] and
//!   [`Cache::run_refs_slice`] dispatch once per chunk to monomorphized
//!   kernels for ways ∈ {1, 2, 4} × replacement policy (direct-mapped
//!   probes compile to a single load/compare) that accumulate counters
//!   in registers; other shapes fall back to the generic loop with
//!   identical counters.

use crate::assoc::AssocIndex;
use crate::model::{AccessOutcome, MemoryModel, ModelStats, ServicePoint};
use crate::replacement::{ReplacementPolicy, Selector};
use crate::stats::CacheStats;
use cac_core::{CacheGeometry, Error, IndexFunction, IndexSpec, IndexTable};
use cac_trace::{MemRef, TraceOp};
use std::sync::Arc;

/// Write handling. The paper's L1 is write-through / no-write-allocate
/// (§4); write-back / write-allocate is provided for the L2 and for
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Writes propagate to the next level; write misses do not allocate.
    #[default]
    WriteThroughNoAllocate,
    /// Writes dirty the line; write misses allocate.
    WriteBackAllocate,
}

/// Tag-array sentinel for an invalid line. Block addresses are byte
/// addresses shifted right by the offset bits, and [`CacheGeometry`]
/// enforces blocks of at least 2 bytes, so this value cannot collide
/// with a real block address.
const INVALID_TAG: u64 = u64::MAX;

/// Dirty flag in the packed per-line metadata word; the bits above it
/// hold the replacement stamp (`clock << META_STAMP_SHIFT`).
const META_DIRTY: u64 = 1;

/// Shift isolating the stamp in the packed metadata word.
const META_STAMP_SHIFT: u32 = 1;

/// Replacement-policy codes for kernel monomorphization.
const POLICY_LRU: u8 = 0;
const POLICY_FIFO: u8 = 1;
const POLICY_RANDOM: u8 = 2;

/// References per internal chunk of the iterator-driven replay APIs:
/// big enough to amortize the kernel dispatch, small enough to stay in
/// the host L1/L2.
const KERNEL_CHUNK: usize = 4096;

/// Result of a single access — the shared [`AccessOutcome`], kept
/// under its historical name for existing callers.
pub type Access = AccessOutcome;

/// A set-associative (possibly skewed) cache.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
/// use cac_sim::cache::Cache;
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let mut c = Cache::build(geom, IndexSpec::ipoly_skewed())?;
/// assert!(!c.read(0x1000).hit); // cold miss
/// assert!(c.read(0x1000).hit);  // now resident
/// assert!(c.read(0x1010).hit);  // same 32-byte block
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    /// The placement function as built (kept for introspection and for
    /// the rare schemes the LUT compiler cannot tabulate).
    index: Arc<dyn IndexFunction>,
    /// LUT-compiled placement driving every access-path index lookup.
    table: IndexTable,
    sets: usize,
    ways: usize,
    /// Way-major tag array (`way * sets + set`); `INVALID_TAG` = empty.
    tags: Vec<u64>,
    /// Packed per-line metadata, same indexing as `tags`: bit 0 = dirty,
    /// upper bits = the stamp the replacement policy consults.
    meta: Vec<u64>,
    /// O(1) probe/victim engine, present exactly when `sets == 1`.
    assoc: Option<AssocIndex>,
    selector: Selector,
    write_policy: WritePolicy,
    clock: u64,
    stats: CacheStats,
}

/// Builder for non-default cache configurations.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
/// use cac_sim::cache::{Cache, WritePolicy};
/// use cac_sim::replacement::ReplacementPolicy;
///
/// let geom = CacheGeometry::new(256 * 1024, 32, 2)?;
/// let l2 = Cache::builder(geom)
///     .index_spec(IndexSpec::modulo())
///     .replacement(ReplacementPolicy::Lru)
///     .write_policy(WritePolicy::WriteBackAllocate)
///     .build()?;
/// assert_eq!(l2.geometry().num_sets(), 4096);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheBuilder {
    geom: CacheGeometry,
    spec: IndexSpec,
    replacement: ReplacementPolicy,
    write_policy: WritePolicy,
    seed: u64,
}

impl CacheBuilder {
    /// The geometry this builder was started with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Starts a builder with the paper's defaults: modulo indexing, LRU,
    /// write-through/no-write-allocate.
    pub fn new(geom: CacheGeometry) -> Self {
        CacheBuilder {
            geom,
            spec: IndexSpec::modulo(),
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            seed: 0x5eed_cace,
        }
    }

    /// Sets the placement scheme.
    pub fn index_spec(mut self, spec: IndexSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Sets the write policy.
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Seeds the random-replacement stream (ignored by LRU/FIFO).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexSpec::build`] validation errors.
    pub fn build(self) -> Result<Cache, Error> {
        let index = self.spec.build(self.geom)?;
        Ok(Cache::from_parts(
            self.geom,
            index,
            self.replacement,
            self.write_policy,
            self.seed,
        ))
    }
}

impl Cache {
    /// Builds a cache with an index scheme and otherwise default policies
    /// (LRU, write-through/no-write-allocate — the paper's L1).
    ///
    /// # Errors
    ///
    /// Propagates [`IndexSpec::build`] validation errors.
    pub fn build(geom: CacheGeometry, spec: IndexSpec) -> Result<Self, Error> {
        CacheBuilder::new(geom).index_spec(spec).build()
    }

    /// Starts a [`CacheBuilder`].
    pub fn builder(geom: CacheGeometry) -> CacheBuilder {
        CacheBuilder::new(geom)
    }

    /// Builds a cache around an existing index function (for custom
    /// placements not expressible as an [`IndexSpec`]). The function is
    /// LUT-compiled here, exactly as the builder path does.
    pub fn from_parts(
        geom: CacheGeometry,
        index: Arc<dyn IndexFunction>,
        replacement: ReplacementPolicy,
        write_policy: WritePolicy,
        seed: u64,
    ) -> Self {
        let sets = geom.num_sets() as usize;
        let ways = geom.ways() as usize;
        let lines = sets * ways;
        let table = IndexTable::compile(index.clone());
        Cache {
            geom,
            index,
            table,
            sets,
            ways,
            tags: vec![INVALID_TAG; lines],
            meta: vec![0; lines],
            assoc: (sets == 1).then(|| AssocIndex::new(ways)),
            selector: Selector::new(replacement, seed),
            write_policy,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The placement function.
    pub fn index_fn(&self) -> &Arc<dyn IndexFunction> {
        &self.index
    }

    /// The LUT-compiled placement the access path actually consults.
    pub fn index_table(&self) -> &IndexTable {
        &self.table
    }

    /// The write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// `true` when probes and victim selection run through the O(1)
    /// fully-associative engine (the geometry has a single set).
    pub fn uses_assoc_engine(&self) -> bool {
        self.assoc.is_some()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics but keeps cache contents (for warm-up phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Invalidates everything and clears statistics, returning the
    /// cache to its as-built state (the random-replacement stream
    /// restarts from its seed too, so a flushed cache replays exactly
    /// like a freshly constructed one — the sweep engine reuses models
    /// across sweep items on this guarantee).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.meta.fill(0);
        if let Some(a) = &mut self.assoc {
            a.clear();
        }
        self.stats = CacheStats::new();
        self.clock = 0;
        self.selector.reset();
    }

    /// Flat storage slot of `(way, set)`.
    #[inline]
    fn slot(&self, way: u32, set: u32) -> usize {
        way as usize * self.sets + set as usize
    }

    /// Non-mutating lookup: the way holding `addr`'s block, if resident.
    pub fn probe(&self, addr: u64) -> Option<u32> {
        let block = self.geom.block_addr(addr);
        self.probe_block(block)
    }

    /// Non-mutating lookup by block address.
    pub fn probe_block(&self, block: u64) -> Option<u32> {
        self.probe_slot(block).map(|(way, _)| way)
    }

    /// Non-mutating lookup by block address, yielding both the way and
    /// the set so callers never recompute the index. O(1) for
    /// fully-associative geometries, one tag compare per way otherwise.
    #[inline]
    pub fn probe_slot(&self, block: u64) -> Option<(u32, u32)> {
        if let Some(a) = &self.assoc {
            return a.get(block).map(|way| (way, 0));
        }
        for w in 0..self.ways as u32 {
            let set = self.table.set_index(block, w);
            if self.tags[self.slot(w, set)] == block {
                return Some((w, set));
            }
        }
        None
    }

    /// `true` if the block containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(addr).is_some()
    }

    /// Performs a read access.
    pub fn read(&mut self, addr: u64) -> Access {
        self.access(addr, false)
    }

    /// Performs a write access.
    pub fn write(&mut self, addr: u64) -> Access {
        self.access(addr, true)
    }

    /// Performs an access; `is_write` selects the write path of the
    /// configured [`WritePolicy`].
    ///
    /// Dispatches to a probe body monomorphized for the common way
    /// counts (direct-mapped probes are a single load/compare); the
    /// fully-associative engine and other shapes take the generic path.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Access {
        if self.assoc.is_some() {
            return self.access_generic(addr, is_write);
        }
        match self.ways {
            1 => self.access_ways::<1>(addr, is_write),
            2 => self.access_ways::<2>(addr, is_write),
            4 => self.access_ways::<4>(addr, is_write),
            _ => self.access_generic(addr, is_write),
        }
    }

    /// [`Cache::access`] with the way count baked in: the probe is
    /// unrolled and the fill path reuses the per-way sets the probe
    /// already derived.
    #[inline]
    fn access_ways<const WAYS: usize>(&mut self, addr: u64, is_write: bool) -> Access {
        debug_assert_eq!(self.ways, WAYS);
        let block = self.geom.block_addr(addr);
        self.clock += 1;
        let mut sets = [0u32; WAYS];
        let hit = self.probe_ways::<WAYS>(block, &mut sets);
        if hit != WAYS {
            let slot = hit * self.sets + sets[hit] as usize;
            if self.selector.policy() == ReplacementPolicy::Lru {
                self.meta[slot] = (self.clock << META_STAMP_SHIFT) | (self.meta[slot] & META_DIRTY);
            }
            if is_write && self.write_policy == WritePolicy::WriteBackAllocate {
                self.meta[slot] |= META_DIRTY;
            }
            if is_write {
                self.stats.record_write(true);
            } else {
                self.stats.record_read(true);
            }
            return Access {
                hit: true,
                served_by: ServicePoint::Level(0),
                way: Some(hit as u32),
                evicted: None,
                filled: false,
            };
        }
        // Miss.
        if is_write {
            self.stats.record_write(false);
        } else {
            self.stats.record_read(false);
        }
        let allocate = !is_write || self.write_policy == WritePolicy::WriteBackAllocate;
        if !allocate {
            return Access::miss();
        }
        let dirty = is_write && self.write_policy == WritePolicy::WriteBackAllocate;
        let (way, evicted) = self.fill_from_sets::<WAYS>(block, dirty, &sets);
        Access {
            hit: false,
            served_by: ServicePoint::Memory,
            way: Some(way),
            evicted,
            filled: true,
        }
    }

    /// The generic access body: dynamic way count, and the path every
    /// one-set (fully-associative-engine) cache takes.
    fn access_generic(&mut self, addr: u64, is_write: bool) -> Access {
        let block = self.geom.block_addr(addr);
        self.clock += 1;
        if let Some((w, set)) = self.probe_slot(block) {
            let slot = self.slot(w, set);
            if self.selector.policy() == ReplacementPolicy::Lru {
                // Under the O(1) engine the intrusive list IS the
                // recency order; nothing reads the packed stamp, so
                // refreshing it would be a dead store.
                match &mut self.assoc {
                    Some(a) => a.touch(w),
                    None => {
                        self.meta[slot] =
                            (self.clock << META_STAMP_SHIFT) | (self.meta[slot] & META_DIRTY);
                    }
                }
            }
            if is_write && self.write_policy == WritePolicy::WriteBackAllocate {
                self.meta[slot] |= META_DIRTY;
            }
            if is_write {
                self.stats.record_write(true);
            } else {
                self.stats.record_read(true);
            }
            return Access {
                hit: true,
                served_by: ServicePoint::Level(0),
                way: Some(w),
                evicted: None,
                filled: false,
            };
        }
        // Miss.
        if is_write {
            self.stats.record_write(false);
        } else {
            self.stats.record_read(false);
        }
        let allocate = !is_write || self.write_policy == WritePolicy::WriteBackAllocate;
        if !allocate {
            return Access::miss();
        }
        let dirty = is_write && self.write_policy == WritePolicy::WriteBackAllocate;
        let (way, evicted) = self.fill_line(block, dirty);
        Access {
            hit: false,
            served_by: ServicePoint::Memory,
            way: Some(way),
            evicted,
            filled: true,
        }
    }

    /// Replays a full instruction trace, performing the memory references
    /// and skipping everything else. Returns the counters attributable to
    /// this trace (`stats after - stats before`); totals keep
    /// accumulating in [`Cache::stats`] as with per-op calls, and the
    /// counters are identical to what the equivalent
    /// `for op { access(..) }` loop would produce.
    ///
    /// For traces too large to hold in memory, stream them instead with
    /// [`crate::replay::run_cache`].
    ///
    /// # Example
    ///
    /// ```
    /// use cac_core::{CacheGeometry, IndexSpec};
    /// use cac_sim::cache::Cache;
    /// use cac_trace::spec::SpecBenchmark;
    ///
    /// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    /// let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed())?;
    /// let delta = cache.run_trace(SpecBenchmark::Swim.generator(1).take(10_000));
    /// assert_eq!(delta.accesses, delta.hits + delta.misses);
    /// assert_eq!(cache.stats(), delta); // first trace on a cold cache
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_trace<I>(&mut self, ops: I) -> CacheStats
    where
        I: IntoIterator<Item = TraceOp>,
    {
        self.run_refs(ops.into_iter().filter_map(|op| op.mem_ref()))
    }

    /// Replays a bare memory-reference trace; see [`Cache::run_trace`].
    ///
    /// Internally the iterator is drained through a reused chunk buffer
    /// so each chunk replays on the specialized kernel path of
    /// [`Cache::run_refs_slice`].
    ///
    /// # Example
    ///
    /// ```
    /// use cac_core::{CacheGeometry, IndexSpec};
    /// use cac_sim::cache::Cache;
    /// use cac_trace::stride::VectorStride;
    ///
    /// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    /// let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed())?;
    /// // Figure 1's pathological stride: I-Poly sees only compulsory misses.
    /// let run = cache.run_refs(VectorStride::paper_figure1(512, 16));
    /// assert_eq!(run.misses, 64);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_refs<I>(&mut self, refs: I) -> CacheStats
    where
        I: IntoIterator<Item = MemRef>,
    {
        let before = self.stats;
        let mut iter = refs.into_iter();
        let mut chunk: Vec<MemRef> = Vec::with_capacity(KERNEL_CHUNK);
        loop {
            chunk.extend(iter.by_ref().take(KERNEL_CHUNK));
            if chunk.is_empty() {
                break;
            }
            self.replay_slice(&chunk);
            chunk.clear();
        }
        self.stats - before
    }

    /// Replays a reference slice and returns the counters attributable
    /// to it, exactly as the equivalent per-reference
    /// [`Cache::access`] loop would produce.
    ///
    /// This is the kernel entry point: the slice is dispatched **once**
    /// to a probe kernel monomorphized for the cache's shape — ways ∈
    /// {1, 2, 4} × replacement policy, plus the O(1) fully-associative
    /// engine — with the generic loop as the fallback for other shapes.
    pub fn run_refs_slice(&mut self, refs: &[MemRef]) -> CacheStats {
        let before = self.stats;
        self.replay_slice(refs);
        self.stats - before
    }

    /// Dispatches one slice to the matching monomorphized kernel.
    fn replay_slice(&mut self, refs: &[MemRef]) {
        let policy = self.selector.policy();
        if self.assoc.is_some() {
            return match policy {
                ReplacementPolicy::Lru => self.run_kernel_assoc::<POLICY_LRU>(refs),
                ReplacementPolicy::Fifo => self.run_kernel_assoc::<POLICY_FIFO>(refs),
                ReplacementPolicy::Random => self.run_kernel_assoc::<POLICY_RANDOM>(refs),
            };
        }
        match (self.ways, policy) {
            (1, ReplacementPolicy::Lru) => self.run_kernel::<1, POLICY_LRU>(refs),
            (1, ReplacementPolicy::Fifo) => self.run_kernel::<1, POLICY_FIFO>(refs),
            (1, ReplacementPolicy::Random) => self.run_kernel::<1, POLICY_RANDOM>(refs),
            (2, ReplacementPolicy::Lru) => self.run_kernel::<2, POLICY_LRU>(refs),
            (2, ReplacementPolicy::Fifo) => self.run_kernel::<2, POLICY_FIFO>(refs),
            (2, ReplacementPolicy::Random) => self.run_kernel::<2, POLICY_RANDOM>(refs),
            (4, ReplacementPolicy::Lru) => self.run_kernel::<4, POLICY_LRU>(refs),
            (4, ReplacementPolicy::Fifo) => self.run_kernel::<4, POLICY_FIFO>(refs),
            (4, ReplacementPolicy::Random) => self.run_kernel::<4, POLICY_RANDOM>(refs),
            _ => {
                for r in refs {
                    self.access(r.addr, r.is_write);
                }
            }
        }
    }

    /// The set-associative probe kernel: the per-reference body of
    /// [`Cache::access`] with the way count and replacement policy
    /// baked in at compile time and hit/miss counters accumulated in
    /// registers.
    fn run_kernel<const WAYS: usize, const POLICY: u8>(&mut self, refs: &[MemRef]) {
        debug_assert_eq!(self.ways, WAYS);
        let wb = self.write_policy == WritePolicy::WriteBackAllocate;
        let mut k = KernelCounts::default();
        'refs: for &r in refs {
            let block = self.geom.block_addr(r.addr);
            self.clock += 1;
            // Probe, remembering each way's set for the fill path.
            let mut sets = [0u32; WAYS];
            let hit = self.probe_ways::<WAYS>(block, &mut sets);
            if hit != WAYS {
                let slot = hit * self.sets + sets[hit] as usize;
                if POLICY == POLICY_LRU {
                    self.meta[slot] =
                        (self.clock << META_STAMP_SHIFT) | (self.meta[slot] & META_DIRTY);
                }
                if r.is_write {
                    if wb {
                        self.meta[slot] |= META_DIRTY;
                    }
                    k.writes += 1;
                } else {
                    k.reads += 1;
                }
                continue 'refs;
            }
            // Miss.
            if r.is_write {
                k.writes += 1;
                k.write_misses += 1;
                if !wb {
                    continue 'refs; // no-write-allocate
                }
            } else {
                k.reads += 1;
                k.read_misses += 1;
            }
            self.fill_from_sets::<WAYS>(block, r.is_write && wb, &sets);
        }
        k.fold_into(&mut self.stats);
    }

    /// The probe body of the monomorphized paths: records each way's
    /// set index in `sets` and returns the hitting way, or `WAYS` on a
    /// miss (entries of `sets` past the hit are untouched).
    #[inline]
    fn probe_ways<const WAYS: usize>(&self, block: u64, sets: &mut [u32; WAYS]) -> usize {
        debug_assert_eq!(self.ways, WAYS);
        for (w, way_set) in sets.iter_mut().enumerate() {
            let set = self.table.set_index(block, w as u32);
            *way_set = set;
            if self.tags[w * self.sets + set as usize] == block {
                return w;
            }
        }
        WAYS
    }

    /// The fill path of [`Cache::access_ways`] and the probe kernels,
    /// reusing the per-way sets the probe already derived: first
    /// invalid slot, else the minimum-stamp (or random) victim folded
    /// out of one scan. Returns the way filled and any evicted block.
    #[inline]
    fn fill_from_sets<const WAYS: usize>(
        &mut self,
        block: u64,
        dirty: bool,
        sets: &[u32; WAYS],
    ) -> (u32, Option<u64>) {
        let mut invalid = WAYS;
        let mut best = (u64::MAX, 0usize);
        for (w, &set) in sets.iter().enumerate() {
            let slot = w * self.sets + set as usize;
            if self.tags[slot] == INVALID_TAG {
                invalid = w;
                break;
            }
            let stamp = self.meta[slot] >> META_STAMP_SHIFT;
            if stamp < best.0 {
                best = (stamp, w);
            }
        }
        let (way, evicted) = if invalid != WAYS {
            (invalid, None)
        } else {
            let w = if self.selector.policy() == ReplacementPolicy::Random {
                self.selector.pick_random(WAYS)
            } else {
                best.1
            };
            let slot = w * self.sets + sets[w] as usize;
            let victim = self.tags[slot];
            debug_assert_ne!(victim, INVALID_TAG, "victim slot valid");
            self.stats.evictions += 1;
            if self.meta[slot] & META_DIRTY != 0 {
                self.stats.writebacks += 1;
            }
            (w, Some(victim))
        };
        let slot = way * self.sets + sets[way] as usize;
        self.tags[slot] = block;
        self.meta[slot] = (self.clock << META_STAMP_SHIFT) | u64::from(dirty);
        (way as u32, evicted)
    }

    /// The fully-associative kernel: O(1) probes through the
    /// [`AssocIndex`] engine, policy baked in at compile time.
    fn run_kernel_assoc<const POLICY: u8>(&mut self, refs: &[MemRef]) {
        let wb = self.write_policy == WritePolicy::WriteBackAllocate;
        let mut k = KernelCounts::default();
        for &r in refs {
            let block = self.geom.block_addr(r.addr);
            self.clock += 1;
            let hit = self.assoc.as_ref().expect("assoc engine").get(block);
            if let Some(w) = hit {
                let slot = w as usize;
                if POLICY == POLICY_LRU {
                    // The intrusive list is the recency order; the
                    // packed stamp is never read under the engine.
                    self.assoc.as_mut().expect("assoc engine").touch(w);
                }
                if r.is_write {
                    if wb {
                        self.meta[slot] |= META_DIRTY;
                    }
                    k.writes += 1;
                } else {
                    k.reads += 1;
                }
                continue;
            }
            if r.is_write {
                k.writes += 1;
                k.write_misses += 1;
                if !wb {
                    continue;
                }
            } else {
                k.reads += 1;
                k.read_misses += 1;
            }
            self.fill_line_assoc(block, r.is_write && wb);
        }
        k.fold_into(&mut self.stats);
    }

    /// Brings `block` into the cache (as by a miss fill), returning the
    /// way used and any evicted block address. Does not touch access
    /// statistics (eviction/writeback counters are updated).
    pub fn fill_block(&mut self, block: u64) -> (u32, Option<u64>) {
        self.clock += 1;
        if let Some((w, _)) = self.probe_slot(block) {
            return (w, None);
        }
        self.fill_line(block, false)
    }

    fn fill_line(&mut self, block: u64, dirty: bool) -> (u32, Option<u64>) {
        if self.assoc.is_some() {
            return self.fill_line_assoc(block, dirty);
        }
        // One pass over the candidate ways: take the first invalid slot,
        // otherwise fold the minimum-stamp victim — *with its set* — out
        // of the same scan, so nothing is re-derived after the choice.
        // Stamps are unique (one line is stamped per tick), so "first
        // minimum in way order" is the unique minimum.
        let mut invalid: Option<(u32, u32)> = None;
        let mut best = (u64::MAX, 0u32, 0u32);
        for w in 0..self.ways as u32 {
            let set = self.table.set_index(block, w);
            let slot = self.slot(w, set);
            if self.tags[slot] == INVALID_TAG {
                invalid = Some((w, set));
                break;
            }
            let stamp = self.meta[slot] >> META_STAMP_SHIFT;
            if stamp < best.0 {
                best = (stamp, w, set);
            }
        }
        let ((way, set), evicted) = match invalid {
            Some(ws) => (ws, None),
            None => {
                let (w, set) = if self.selector.policy() == ReplacementPolicy::Random {
                    let w = self.selector.pick_random(self.ways) as u32;
                    (w, self.table.set_index(block, w))
                } else {
                    (best.1, best.2)
                };
                let slot = self.slot(w, set);
                let victim = self.tags[slot];
                debug_assert_ne!(victim, INVALID_TAG, "victim slot valid");
                self.stats.evictions += 1;
                if self.meta[slot] & META_DIRTY != 0 {
                    self.stats.writebacks += 1;
                }
                ((w, set), Some(victim))
            }
        };
        let slot = self.slot(way, set);
        self.tags[slot] = block;
        self.meta[slot] = (self.clock << META_STAMP_SHIFT) | u64::from(dirty);
        (way, evicted)
    }

    /// [`Cache::fill_line`] through the O(1) engine. Slot numbers equal
    /// way numbers (one set), and freed slots are reused lowest-first,
    /// so the slot layout — and therefore every random-replacement
    /// victim — matches the generic scan exactly.
    fn fill_line_assoc(&mut self, block: u64, dirty: bool) -> (u32, Option<u64>) {
        let full = self.assoc.as_ref().expect("assoc engine").is_full();
        let evicted = if full {
            let w = match self.selector.policy() {
                ReplacementPolicy::Random => self.selector.pick_random(self.ways) as u32,
                _ => self.assoc.as_ref().expect("assoc engine").victim_slot(),
            };
            let slot = w as usize;
            let victim = self.tags[slot];
            debug_assert_ne!(victim, INVALID_TAG, "victim slot valid");
            self.stats.evictions += 1;
            if self.meta[slot] & META_DIRTY != 0 {
                self.stats.writebacks += 1;
            }
            self.assoc.as_mut().expect("assoc engine").remove_slot(w);
            Some(victim)
        } else {
            None
        };
        let way = self.assoc.as_mut().expect("assoc engine").insert(block);
        let slot = way as usize;
        self.tags[slot] = block;
        self.meta[slot] = (self.clock << META_STAMP_SHIFT) | u64::from(dirty);
        (way, evicted)
    }

    /// Invalidates the line holding `block`, if resident. Returns `true`
    /// if a line was removed. Dirty lines are counted as writebacks.
    pub fn invalidate_block(&mut self, block: u64) -> bool {
        if let Some((w, set)) = self.probe_slot(block) {
            let slot = self.slot(w, set);
            self.tags[slot] = INVALID_TAG;
            if let Some(a) = &mut self.assoc {
                a.remove_slot(w);
            }
            self.stats.invalidations += 1;
            if self.meta[slot] & META_DIRTY != 0 {
                self.stats.writebacks += 1;
                self.meta[slot] &= !META_DIRTY;
            }
            true
        } else {
            false
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Iterates over the block addresses of all resident lines.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied().filter(|&t| t != INVALID_TAG)
    }
}

/// Per-chunk counters the probe kernels accumulate in registers and
/// fold into [`CacheStats`] once per slice.
#[derive(Debug, Default, Clone, Copy)]
struct KernelCounts {
    reads: u64,
    writes: u64,
    read_misses: u64,
    write_misses: u64,
}

impl KernelCounts {
    #[inline]
    fn fold_into(self, stats: &mut CacheStats) {
        let accesses = self.reads + self.writes;
        let misses = self.read_misses + self.write_misses;
        stats.accesses += accesses;
        stats.reads += self.reads;
        stats.writes += self.writes;
        stats.read_misses += self.read_misses;
        stats.write_misses += self.write_misses;
        stats.misses += misses;
        stats.hits += accesses - misses;
    }
}

impl MemoryModel for Cache {
    fn access(&mut self, r: MemRef) -> AccessOutcome {
        Cache::access(self, r.addr, r.is_write)
    }

    fn stats(&self) -> ModelStats {
        ModelStats::single("cache", self.stats)
    }

    fn reset(&mut self) {
        self.flush();
    }

    fn describe(&self) -> String {
        format!("{} cache, {} placement", self.geom, self.index.label())
    }

    fn run_refs(&mut self, refs: &[MemRef]) -> ModelStats {
        // One virtual dispatch per slice; the kernel dispatch inside is
        // monomorphic.
        ModelStats::single("cache", self.run_refs_slice(refs))
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn paper_geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        let a = c.read(0x1000);
        assert!(!a.hit);
        assert!(a.filled);
        assert!(c.read(0x1000).hit);
        assert!(c.read(0x101f).hit); // same block
        assert!(!c.read(0x1020).hit); // next block
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn two_way_holds_two_conflicting_blocks() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        // Same set: block addresses 128 apart (128 sets).
        let a = 0u64;
        let b = 128 * 32;
        let d = 2 * 128 * 32;
        c.read(a);
        c.read(b);
        assert!(c.read(a).hit);
        assert!(c.read(b).hit);
        // Third conflicting block evicts the LRU (a was touched before b).
        c.read(d);
        assert!(c.contains(b));
        assert!(c.contains(d));
        assert!(!c.contains(a));
    }

    #[test]
    fn lru_order_respected() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        let a = 0u64;
        let b = 128 * 32;
        let d = 2 * 128 * 32;
        c.read(a);
        c.read(b);
        c.read(a); // a is now MRU
        c.read(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn write_through_no_allocate_semantics() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        let a = c.write(0x4000);
        assert!(!a.hit);
        assert!(!a.filled, "write miss must not allocate");
        assert!(!c.contains(0x4000));
        // A read brings it in; a subsequent write hits and does not dirty.
        c.read(0x4000);
        assert!(c.write(0x4000).hit);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_back_allocate_semantics() {
        let geom = CacheGeometry::new(64, 32, 1).unwrap(); // 2 sets, tiny
        let mut c = Cache::builder(geom)
            .write_policy(WritePolicy::WriteBackAllocate)
            .build()
            .unwrap();
        assert!(c.write(0).filled, "write miss allocates");
        // Evicting the dirty line produces a writeback: block 0 and block
        // 2 map to set 0 of the 2-set direct-mapped cache.
        let evict = c.read(2 * 32);
        assert_eq!(evict.evicted, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn skewed_cache_stores_and_finds_blocks() {
        let mut c = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        let blocks: Vec<u64> = (0..100).map(|i| i * 997 * 32).collect();
        for &a in &blocks {
            c.read(a);
        }
        let resident = blocks.iter().filter(|&&a| c.contains(a)).count();
        assert!(resident >= 90, "only {resident} of 100 resident");
    }

    #[test]
    fn invalidate_creates_room() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        c.read(0x2000);
        assert!(c.invalidate_block(paper_geom().block_addr(0x2000)));
        assert!(!c.contains(0x2000));
        assert!(!c.invalidate_block(paper_geom().block_addr(0x2000)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn fill_block_is_idempotent_for_resident_blocks() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        let (w1, e1) = c.fill_block(42);
        assert!(e1.is_none());
        let (w2, e2) = c.fill_block(42);
        assert_eq!(w1, w2);
        assert!(e2.is_none());
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        for i in 0..10_000u64 {
            c.read(i * 32);
        }
        assert!(c.resident_lines() <= 256);
        assert_eq!(c.resident_lines(), 256); // fully warm
    }

    #[test]
    fn fully_associative_geometry_works() {
        let geom = CacheGeometry::fully_associative(1024, 32).unwrap();
        let mut c = Cache::build(geom, IndexSpec::modulo()).unwrap();
        assert!(c.uses_assoc_engine());
        // 32 lines; fill 32 distinct blocks, all resident.
        for i in 0..32u64 {
            c.read(i * 32);
        }
        assert_eq!(c.resident_lines(), 32);
        assert!((0..32u64).all(|i| c.contains(i * 32)));
        // One more evicts exactly the LRU (block 0).
        c.read(32 * 32);
        assert!(!c.contains(0));
        assert!(c.contains(32 * 32));
    }

    #[test]
    fn fully_associative_lru_tracks_recency_through_the_engine() {
        let geom = CacheGeometry::fully_associative(256, 32).unwrap(); // 8 lines
        let mut c = Cache::build(geom, IndexSpec::modulo()).unwrap();
        for i in 0..8u64 {
            c.read(i * 32);
        }
        c.read(0); // block 0 becomes MRU
        c.read(8 * 32); // evicts block 1, the LRU
        assert!(c.contains(0));
        assert!(!c.contains(32));
        // Invalidation frees the lowest slot for the next fill.
        let victim_way = c.probe_block(c.geom.block_addr(2 * 32)).unwrap();
        assert!(c.invalidate_block(2));
        let out = c.read(9 * 32);
        assert_eq!(out.way, Some(victim_way), "freed way reused first");
        assert_eq!(out.evicted, None, "fill used the invalid slot");
    }

    #[test]
    fn flush_and_reset() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        c.read(0x100);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(0x100), "reset_stats keeps contents");
        c.flush();
        assert!(!c.contains(0x100));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn pathological_stride_conventional_vs_ipoly() {
        // The lib.rs doctest scenario, verified tightly here.
        let mut conv = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        let mut poly = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        for _ in 0..10 {
            for i in 0..64u64 {
                conv.read(i * 4096);
                poly.read(i * 4096);
            }
        }
        assert!(conv.stats().miss_ratio() > 0.9);
        assert_eq!(poly.stats().misses, 64);
    }

    #[test]
    fn resident_blocks_enumerates_contents() {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        c.read(0);
        c.read(32);
        let mut blocks: Vec<u64> = c.resident_blocks().collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1]);
    }

    #[test]
    fn probe_slot_agrees_with_index_function() {
        let mut c = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        for i in 0..200u64 {
            c.read(i * 997);
        }
        for i in 0..200u64 {
            let block = paper_geom().block_addr(i * 997);
            if let Some((w, set)) = c.probe_slot(block) {
                assert_eq!(set, c.index_fn().set_index(block, w));
                assert_eq!(c.probe_block(block), Some(w));
            }
        }
    }

    fn hashed_refs(n: u64) -> Vec<cac_trace::MemRef> {
        (0..n)
            .map(|i| cac_trace::MemRef {
                pc: 0x1000 + i,
                addr: (i.wrapping_mul(0x9E37_79B9) >> 5) & 0xF_FFFF,
                is_write: i % 7 == 0,
            })
            .collect()
    }

    #[test]
    fn run_refs_matches_per_op_loop_exactly() {
        let refs = hashed_refs(5000);
        for spec in [
            IndexSpec::modulo(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime(),
        ] {
            let mut batched = Cache::build(paper_geom(), spec.clone()).unwrap();
            let mut manual = Cache::build(paper_geom(), spec.clone()).unwrap();
            let delta = batched.run_refs(refs.iter().copied());
            for r in &refs {
                manual.access(r.addr, r.is_write);
            }
            assert_eq!(batched.stats(), manual.stats(), "{spec}");
            assert_eq!(delta, manual.stats(), "{spec} delta");
            // Contents agree too, not just counters.
            let mut a: Vec<u64> = batched.resident_blocks().collect();
            let mut b: Vec<u64> = manual.resident_blocks().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{spec}");
        }
    }

    #[test]
    fn kernels_match_per_op_loop_across_shapes() {
        // Every (ways, policy, write-policy) kernel the dispatcher can
        // pick — plus a non-kernel shape (8 ways) exercising the
        // fallback — against the per-op access loop.
        let refs = hashed_refs(6000);
        for ways in [1u32, 2, 4, 8] {
            for policy in [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random,
            ] {
                for wp in [
                    WritePolicy::WriteThroughNoAllocate,
                    WritePolicy::WriteBackAllocate,
                ] {
                    let geom = CacheGeometry::new(8 * 1024, 32, ways).unwrap();
                    let build = || {
                        Cache::builder(geom)
                            .index_spec(IndexSpec::ipoly_skewed())
                            .replacement(policy)
                            .write_policy(wp)
                            .build()
                            .unwrap()
                    };
                    let mut batched = build();
                    let mut manual = build();
                    let delta = batched.run_refs_slice(&refs);
                    for r in &refs {
                        manual.access(r.addr, r.is_write);
                    }
                    let tag = format!("{ways} ways, {policy:?}, {wp:?}");
                    assert_eq!(batched.stats(), manual.stats(), "{tag}");
                    assert_eq!(delta, manual.stats(), "{tag}");
                    let mut a: Vec<u64> = batched.resident_blocks().collect();
                    let mut b: Vec<u64> = manual.resident_blocks().collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{tag}");
                }
            }
        }
    }

    #[test]
    fn assoc_engine_matches_per_op_loop() {
        let refs = hashed_refs(4000);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let geom = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
            let build = || Cache::builder(geom).replacement(policy).build().unwrap();
            let mut batched = build();
            let mut manual = build();
            let delta = batched.run_refs_slice(&refs);
            for r in &refs {
                manual.access(r.addr, r.is_write);
            }
            assert_eq!(batched.stats(), manual.stats(), "{policy:?}");
            assert_eq!(delta, manual.stats(), "{policy:?}");
            let mut a: Vec<u64> = batched.resident_blocks().collect();
            let mut b: Vec<u64> = manual.resident_blocks().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{policy:?}");
        }
    }

    #[test]
    fn run_trace_skips_non_memory_ops_and_returns_delta() {
        use cac_trace::{OpClass, TraceOp};
        let mut c = Cache::build(paper_geom(), IndexSpec::ipoly()).unwrap();
        c.read(0x40); // pre-existing traffic: delta must exclude it
        let ops = vec![
            TraceOp::compute(0x400, OpClass::IntAlu, 1, [None, None]),
            TraceOp::load(0x404, 0x80, 2, None),
            TraceOp::branch(0x408, true, 0x400, Some(1)),
            TraceOp::store(0x40c, 0x80, 2, None),
        ];
        let delta = c.run_trace(ops);
        assert_eq!(delta.accesses, 2);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn index_table_is_compiled_for_paper_schemes() {
        for spec in [
            IndexSpec::modulo(),
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly_skewed(),
        ] {
            let c = Cache::build(paper_geom(), spec).unwrap();
            assert!(c.index_table().is_compiled());
        }
        // The prime baseline inspects every address bit and keeps the
        // computed path — behaviour, not speed, is what must match.
        let c = Cache::build(paper_geom(), IndexSpec::prime()).unwrap();
        assert!(!c.index_table().is_compiled());
    }
}

//! Trace-driven out-of-order superscalar processor model — the evaluation
//! platform of §4 of the conflict-avoiding-cache paper.
//!
//! The model implements the paper's configuration:
//!
//! * 4-way fetch/dispatch/issue/commit, 32-entry reorder buffer,
//!   64 + 64 physical registers;
//! * the functional units and latencies of Table 1 (one simple integer,
//!   one complex integer, two effective-address units, one simple FP, one
//!   FP multiplier, one unpipelined FP divide/sqrt unit);
//! * a 2K-entry branch history table of 2-bit saturating counters;
//! * a lockup-free L1 data cache (8 MSHRs), write-through /
//!   no-write-allocate, 2-cycle hits, 20-cycle miss penalty, 64-bit bus to
//!   an infinite L2 (4 cycles of bus occupancy per 32-byte line), two
//!   memory ports;
//! * ARB-style memory dependence speculation with store-buffer
//!   forwarding;
//! * optionally, the §3.4 memory address predictor (1K-entry untagged),
//!   and the XOR-in-critical-path latency penalty of Figure 2.
//!
//! Being trace-driven, the model cannot execute wrong-path instructions;
//! a mispredicted branch therefore stalls fetch until the branch resolves,
//! the standard trace-driven approximation (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use cac_core::IndexSpec;
//! use cac_cpu::{CpuConfig, Processor};
//! use cac_trace::spec::SpecBenchmark;
//!
//! let config = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())?;
//! let mut cpu = Processor::new(config)?;
//! let stats = cpu.run(SpecBenchmark::Mgrid.generator(1), 20_000);
//! assert!(stats.ipc() > 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod config;
pub mod dcache;
pub mod pipeline;
pub mod stats;

pub use bpred::BranchPredictor;
pub use config::{CpuConfig, TranslationModel};
pub use dcache::DataCache;
pub use pipeline::Processor;
pub use stats::CpuStats;

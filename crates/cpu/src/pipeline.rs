//! The out-of-order pipeline: dispatch → issue → execute → commit.
//!
//! The model is a cycle-driven scoreboard over a reorder buffer:
//!
//! * **Dispatch** (4/cycle): takes instructions from the trace while ROB
//!   space and physical registers allow. Branches are predicted here; a
//!   misprediction stalls dispatch until the branch resolves (trace-driven
//!   recovery model).
//! * **Issue** (4/cycle, oldest-first): an instruction issues when its
//!   source producers have completed and its functional unit (Table 1)
//!   and, for memory ops, an effective-address unit and memory port are
//!   free. Loads access the lockup-free data cache; stores compute their
//!   address and expose it to the ARB check.
//! * **Memory dependence speculation**: loads issue past stores with
//!   unknown addresses. When a store's address resolves and a younger
//!   load to the same word has already issued, the load is replayed
//!   (completion pushed past the store) and counted as a violation.
//!   Store-buffer forwarding satisfies loads whose producing store is
//!   already resolved.
//! * **Commit** (4/cycle, in order): stores write through to the cache at
//!   commit, as §3.4 prescribes.

use crate::bpred::BranchPredictor;
use crate::config::CpuConfig;
use crate::dcache::{DataCache, LoadResponse};
use crate::stats::CpuStats;
use cac_core::Error;
use cac_trace::record::{OpClass, TraceOp};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Issued,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    op: TraceOp,
    idx: u64,
    state: State,
    completion: u64,
    issued_at: u64,
    /// Dynamic indices of in-flight producers of each source operand.
    src_producers: [Option<u64>; 2],
    mispredicted: bool,
    forwarded: bool,
    /// `addr & !7` for memory ops (ARB / forwarding granularity).
    word: u64,
}

/// The processor model. Create with a [`CpuConfig`], drive with
/// [`Processor::run`].
#[derive(Debug)]
pub struct Processor {
    config: CpuConfig,
    bpred: BranchPredictor,
    dcache: DataCache,
    rob: VecDeque<Slot>,
    head_idx: u64,
    next_idx: u64,
    /// Latest in-flight writer of each architectural register.
    reg_producer: [Option<u64>; 64],
    cycle: u64,
    /// Cycle at which dispatch may resume after a misprediction
    /// (`u64::MAX` while the offending branch has not issued yet).
    fetch_resume: u64,
    pending_branch: Option<u64>,
    fu_simple_int: u64,
    fu_complex_int: u64,
    fu_ea: [u64; 2],
    fu_fp_add: u64,
    fu_fp_mul: u64,
    fu_fp_div: u64,
    free_int_regs: u32,
    free_fp_regs: u32,
    stats: CpuStats,
}

impl Processor {
    /// Builds the processor.
    ///
    /// # Errors
    ///
    /// Propagates cache/placement validation errors; the physical register
    /// files must be at least as large as the 32-entry architectural
    /// files.
    pub fn new(config: CpuConfig) -> Result<Self, Error> {
        for (what, v) in [
            ("int physical registers", config.int_phys_regs),
            ("fp physical registers", config.fp_phys_regs),
        ] {
            if v < 32 {
                return Err(Error::OutOfRange {
                    what,
                    value: u64::from(v),
                    constraint: ">= 32 (architectural state)",
                });
            }
        }
        let dcache = DataCache::new(&config)?;
        let bpred = BranchPredictor::new(config.bht_entries);
        let free_int_regs = config.int_phys_regs - 32;
        let free_fp_regs = config.fp_phys_regs - 32;
        Ok(Processor {
            config,
            bpred,
            dcache,
            rob: VecDeque::new(),
            head_idx: 0,
            next_idx: 0,
            reg_producer: [None; 64],
            cycle: 0,
            fetch_resume: 0,
            pending_branch: None,
            fu_simple_int: 0,
            fu_complex_int: 0,
            fu_ea: [0; 2],
            fu_fp_add: 0,
            fu_fp_mul: 0,
            fu_fp_div: 0,
            free_int_regs,
            free_fp_regs,
            stats: CpuStats::default(),
        })
    }

    /// Runs the pipeline over `trace` until at least `max_instructions`
    /// commit (or the trace ends). Because commit retires up to
    /// `commit_width` instructions per cycle, the final count may exceed
    /// the target by up to `commit_width - 1`. Returns the accumulated
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to make forward progress (an internal
    /// invariant violation), after a generous cycle bound.
    pub fn run<I: Iterator<Item = TraceOp>>(
        &mut self,
        mut trace: I,
        max_instructions: u64,
    ) -> CpuStats {
        let target = self.stats.instructions + max_instructions;
        let cycle_bound = self.cycle + 400 * max_instructions + 100_000;
        let mut trace_done = false;
        while self.stats.instructions < target {
            self.commit();
            self.issue();
            trace_done = trace_done || !self.dispatch(&mut trace);
            if trace_done && self.rob.is_empty() {
                break;
            }
            self.cycle += 1;
            assert!(
                self.cycle < cycle_bound,
                "pipeline stopped making progress at cycle {}",
                self.cycle
            );
        }
        self.snapshot_stats();
        self.stats
    }

    fn snapshot_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.dcache = self.dcache.stats();
        self.stats.predictor = self.dcache.predictor_stats();
        self.stats.tlb = self.dcache.tlb_stats();
        self.stats.branch_mispredictions = self.bpred.mispredictions();
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> CpuStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s.dcache = self.dcache.stats();
        s.predictor = self.dcache.predictor_stats();
        s.tlb = self.dcache.tlb_stats();
        s.branch_mispredictions = self.bpred.mispredictions();
        s
    }

    /// The processor configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    fn commit(&mut self) {
        let mut committed = 0;
        while committed < self.config.commit_width {
            let Some(front) = self.rob.front() else { break };
            if front.state != State::Issued || front.completion > self.cycle {
                break;
            }
            let slot = self.rob.pop_front().expect("front exists");
            self.head_idx += 1;
            committed += 1;
            self.stats.instructions += 1;
            match slot.op.class {
                OpClass::Load => self.stats.loads += 1,
                OpClass::Store => {
                    self.stats.stores += 1;
                    // Write-through at commit.
                    self.dcache.store(slot.op.addr.unwrap_or(0));
                }
                OpClass::Branch => self.stats.branches += 1,
                _ => {}
            }
            if slot.forwarded {
                self.stats.forwarded_loads += 1;
            }
            if let Some(dst) = slot.op.dst {
                if dst >= 32 {
                    self.free_fp_regs += 1;
                } else {
                    self.free_int_regs += 1;
                }
                if self.reg_producer[dst as usize] == Some(slot.idx) {
                    self.reg_producer[dst as usize] = None;
                }
            }
        }
    }

    /// `true` if the producer of an operand has completed by `cycle`.
    fn producer_done(&self, producer: Option<u64>) -> bool {
        match producer {
            None => true,
            Some(pidx) => {
                if pidx < self.head_idx {
                    return true; // committed
                }
                let pos = (pidx - self.head_idx) as usize;
                match self.rob.get(pos) {
                    None => true,
                    Some(p) => p.state == State::Issued && p.completion <= self.cycle,
                }
            }
        }
    }

    fn issue(&mut self) {
        let mut issued = 0;
        let mut ports_used = 0;
        for pos in 0..self.rob.len() {
            if issued == self.config.issue_width {
                break;
            }
            let slot = self.rob[pos];
            if slot.state != State::Waiting {
                continue;
            }
            if !self.producer_done(slot.src_producers[0])
                || !self.producer_done(slot.src_producers[1])
            {
                continue;
            }
            let completion = match slot.op.class {
                OpClass::IntAlu | OpClass::Branch => {
                    if self.fu_simple_int > self.cycle {
                        continue;
                    }
                    self.fu_simple_int = self.cycle + 1;
                    self.cycle + 1
                }
                OpClass::IntMul => {
                    if self.fu_complex_int > self.cycle {
                        continue;
                    }
                    self.fu_complex_int = self.cycle + 1; // pipelined
                    self.cycle + 9
                }
                OpClass::IntDiv => {
                    if self.fu_complex_int > self.cycle {
                        continue;
                    }
                    self.fu_complex_int = self.cycle + 67; // unpipelined
                    self.cycle + 67
                }
                OpClass::FpAdd => {
                    if self.fu_fp_add > self.cycle {
                        continue;
                    }
                    self.fu_fp_add = self.cycle + 1;
                    self.cycle + 4
                }
                OpClass::FpMul => {
                    if self.fu_fp_mul > self.cycle {
                        continue;
                    }
                    self.fu_fp_mul = self.cycle + 1;
                    self.cycle + 4
                }
                OpClass::FpDiv => {
                    if self.fu_fp_div > self.cycle {
                        continue;
                    }
                    self.fu_fp_div = self.cycle + 16;
                    self.cycle + 16
                }
                OpClass::FpSqrt => {
                    if self.fu_fp_div > self.cycle {
                        continue;
                    }
                    self.fu_fp_div = self.cycle + 35;
                    self.cycle + 35
                }
                OpClass::Load => {
                    if ports_used == self.config.mem_ports {
                        continue;
                    }
                    let Some(ea) = self.fu_ea.iter().position(|&f| f <= self.cycle) else {
                        continue;
                    };
                    // Store-buffer forwarding: an older store to the same
                    // word whose address is resolved.
                    let mut forwarded = false;
                    let mut bypass_ok = true;
                    for p2 in (0..pos).rev() {
                        let older = &self.rob[p2];
                        if older.op.class == OpClass::Store
                            && older.state == State::Issued
                            && older.completion <= self.cycle
                            && older.word == slot.word
                        {
                            forwarded = true;
                            break;
                        }
                        // Unresolved store addresses are speculatively
                        // bypassed (ARB): note and continue.
                        if older.op.class == OpClass::Store && older.state == State::Waiting {
                            bypass_ok = true;
                        }
                    }
                    let _ = bypass_ok;
                    let addr_ready = self.cycle + 1; // EA unit
                    let completion = if forwarded {
                        addr_ready + 1
                    } else {
                        match self
                            .dcache
                            .load(slot.op.pc, slot.op.addr.unwrap_or(0), addr_ready)
                        {
                            LoadResponse::Ready { at, .. } => at,
                            LoadResponse::Blocked => continue, // retry next cycle
                        }
                    };
                    self.fu_ea[ea] = self.cycle + 1;
                    ports_used += 1;
                    let s = &mut self.rob[pos];
                    s.state = State::Issued;
                    s.issued_at = self.cycle;
                    s.completion = completion;
                    s.forwarded = forwarded;
                    issued += 1;
                    continue;
                }
                OpClass::Store => {
                    if ports_used == self.config.mem_ports {
                        continue;
                    }
                    let Some(ea) = self.fu_ea.iter().position(|&f| f <= self.cycle) else {
                        continue;
                    };
                    self.fu_ea[ea] = self.cycle + 1;
                    ports_used += 1;
                    let completion = self.cycle + 1; // address resolved
                                                     // ARB: younger loads to the same word that already
                                                     // issued must replay.
                    for p2 in pos + 1..self.rob.len() {
                        let replay_to = completion + 2;
                        let younger = &mut self.rob[p2];
                        if younger.op.class == OpClass::Load
                            && younger.state == State::Issued
                            && younger.word == slot.word
                            && younger.issued_at < completion
                        {
                            younger.completion = younger.completion.max(replay_to);
                            younger.forwarded = true;
                            self.stats.memory_violations += 1;
                        }
                    }
                    let s = &mut self.rob[pos];
                    s.state = State::Issued;
                    s.issued_at = self.cycle;
                    s.completion = completion;
                    issued += 1;
                    continue;
                }
            };
            // Non-memory op issued.
            if slot.op.class == OpClass::Branch {
                self.bpred.update(slot.op.pc, slot.op.taken);
                if slot.mispredicted && self.pending_branch == Some(slot.idx) {
                    self.fetch_resume = completion + 1;
                    self.pending_branch = None;
                }
            }
            let s = &mut self.rob[pos];
            s.state = State::Issued;
            s.issued_at = self.cycle;
            s.completion = completion;
            issued += 1;
        }
    }

    /// Dispatches up to `fetch_width` instructions. Returns `false` when
    /// the trace is exhausted.
    fn dispatch<I: Iterator<Item = TraceOp>>(&mut self, trace: &mut I) -> bool {
        if self.cycle < self.fetch_resume {
            self.stats.fetch_stall_cycles += 1;
            return true;
        }
        let mut dispatched = 0;
        while dispatched < self.config.fetch_width {
            if self.rob.len() == self.config.rob_entries {
                self.stats.rob_stall_cycles += 1;
                return true;
            }
            if self.cycle < self.fetch_resume {
                return true; // mispredicted branch just dispatched
            }
            let Some(op) = trace.next() else {
                return false;
            };
            // Rename: claim a physical register for the destination.
            if let Some(dst) = op.dst {
                let pool = if dst >= 32 {
                    &mut self.free_fp_regs
                } else {
                    &mut self.free_int_regs
                };
                if *pool == 0 {
                    // No free register: in a real machine the op would sit
                    // in the fetch queue; retrying next cycle is
                    // equivalent at this fidelity. The op must not be
                    // lost, so stash it by pushing into the ROB anyway is
                    // wrong — instead we model the (rare, given ROB <=
                    // free regs in the paper's configuration) case as a
                    // single-cycle stall by ending dispatch. The op is
                    // re-fetched because `trace` is only advanced here.
                    // Since the iterator cannot be rewound, treat this as
                    // unreachable for valid configurations.
                    debug_assert!(
                        false,
                        "physical registers exhausted; configuration has fewer phys regs than ROB entries"
                    );
                    return true;
                }
                *pool -= 1;
            }
            let src_producers = [
                op.srcs[0]
                    .filter(|&r| r != 0)
                    .and_then(|r| self.reg_producer[r as usize]),
                op.srcs[1]
                    .filter(|&r| r != 0)
                    .and_then(|r| self.reg_producer[r as usize]),
            ];
            let idx = self.next_idx;
            self.next_idx += 1;
            if let Some(dst) = op.dst {
                if dst != 0 {
                    self.reg_producer[dst as usize] = Some(idx);
                }
            }
            let mut mispredicted = false;
            if op.is_branch() {
                let predicted = self.bpred.predict_and_track(op.pc, op.taken);
                if predicted != op.taken {
                    mispredicted = true;
                    self.fetch_resume = u64::MAX;
                    self.pending_branch = Some(idx);
                }
            }
            self.rob.push_back(Slot {
                op,
                idx,
                state: State::Waiting,
                completion: 0,
                issued_at: 0,
                src_producers,
                mispredicted,
                forwarded: false,
                word: op.addr.map_or(0, |a| a & !7),
            });
            dispatched += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_core::IndexSpec;
    use cac_trace::kernels::{ArrayWalk, LoopKernel};
    use cac_trace::record::TraceOp;

    fn cpu(spec: IndexSpec) -> Processor {
        Processor::new(CpuConfig::paper_baseline(spec).unwrap()).unwrap()
    }

    /// A trace of independent single-cycle integer ops.
    fn indep_ints(n: usize) -> Vec<TraceOp> {
        (0..n)
            .map(|i| {
                TraceOp::compute(
                    0x400 + (i as u64 % 16) * 4,
                    OpClass::IntAlu,
                    0,
                    [None, None],
                )
            })
            .collect()
    }

    #[test]
    fn independent_int_ops_bound_by_fu_width() {
        // One simple-integer unit: IPC must approach 1.0, not 4.0.
        let mut p = cpu(IndexSpec::modulo());
        let s = p.run(indep_ints(5000).into_iter(), 5000);
        assert_eq!(s.instructions, 5000);
        assert!(s.ipc() <= 1.05, "ipc {}", s.ipc());
        assert!(s.ipc() > 0.8, "ipc {}", s.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        // Each op reads the previous result: IPC ~1 (1-cycle latency);
        // now with FP adds (4-cycle latency) IPC ~0.25.
        let ops: Vec<TraceOp> = (0..2000)
            .map(|i| TraceOp::compute(0x400 + (i % 8) * 4, OpClass::FpAdd, 33, [Some(33), None]))
            .collect();
        let mut p = cpu(IndexSpec::modulo());
        let s = p.run(ops.into_iter(), 2000);
        assert!(s.ipc() < 0.3, "ipc {}", s.ipc());
        assert!(s.ipc() > 0.2, "ipc {}", s.ipc());
    }

    #[test]
    fn cache_misses_throttle_loads() {
        // Loads marching through memory: every 4th access a new block
        // (8-byte elements), 20-cycle penalty, vs all-hits to one block.
        let streaming: Vec<TraceOp> = (0..3000)
            .map(|i| TraceOp::load(0x400, i * 8, 2, None))
            .collect();
        let hot: Vec<TraceOp> = (0..3000)
            .map(|_| TraceOp::load(0x400, 0x100, 2, None))
            .collect();
        let mut p1 = cpu(IndexSpec::modulo());
        let s1 = p1.run(streaming.into_iter(), 3000);
        let mut p2 = cpu(IndexSpec::modulo());
        let s2 = p2.run(hot.into_iter(), 3000);
        assert!(s1.ipc() < s2.ipc());
        assert!(s1.dcache.misses > 500);
        assert_eq!(s2.dcache.misses, 1);
    }

    #[test]
    fn mispredictions_cost_fetch_stalls() {
        let mut taken = false;
        let alternating: Vec<TraceOp> = (0..2000)
            .map(|_| {
                taken = !taken;
                TraceOp::branch(0x500, taken, 0x400, None)
            })
            .collect();
        let mut p = cpu(IndexSpec::modulo());
        let s = p.run(alternating.into_iter(), 2000);
        assert!(s.branch_accuracy() < 0.7);
        assert!(s.fetch_stall_cycles > 500);
        let steady: Vec<TraceOp> = (0..2000)
            .map(|_| TraceOp::branch(0x500, true, 0x400, None))
            .collect();
        let mut p2 = cpu(IndexSpec::modulo());
        let s2 = p2.run(steady.into_iter(), 2000);
        assert!(s2.ipc() > s.ipc());
    }

    #[test]
    fn store_load_forwarding_and_violations() {
        // store to X, load from X, repeatedly: loads should forward (or
        // replay), never read stale timing for free.
        let mut ops = Vec::new();
        for i in 0..500u64 {
            ops.push(TraceOp::store(0x600, 0x9000, 2, None));
            ops.push(TraceOp::load(0x604 + (i % 2) * 8, 0x9000, 3, None));
        }
        let mut p = cpu(IndexSpec::modulo());
        let s = p.run(ops.into_iter(), 1000);
        assert_eq!(s.instructions, 1000);
        assert!(s.forwarded_loads + s.memory_violations > 100);
    }

    #[test]
    fn rob_limits_inflight_window() {
        // Long-latency FP divides at the ROB head block commit; the
        // window fills and dispatch stalls.
        let ops: Vec<TraceOp> = (0..400)
            .map(|i| {
                if i % 8 == 0 {
                    TraceOp::compute(0x700, OpClass::FpDiv, 34, [Some(34), None])
                } else {
                    TraceOp::compute(0x704 + (i % 8) * 4, OpClass::IntAlu, 0, [None, None])
                }
            })
            .collect();
        let mut p = cpu(IndexSpec::modulo());
        let s = p.run(ops.into_iter(), 400);
        assert!(s.rob_stall_cycles > 10);
    }

    #[test]
    fn ipoly_beats_modulo_on_conflict_workload() {
        // The headline effect, end to end: a conflict-heavy loop nest on
        // the full processor model.
        let mut k = LoopKernel::template("conflict");
        k.loads = (0..4)
            .map(|i| ArrayWalk::sequential(0x0100_0000 + i * 0x1000, 16, 8))
            .collect();
        k.int_ops = 3;
        let run = |spec: IndexSpec| {
            let mut p = cpu(spec);
            p.run(k.generator(5), 40_000)
        };
        let conv = run(IndexSpec::modulo());
        let poly = run(IndexSpec::ipoly_skewed());
        assert!(
            poly.load_miss_ratio_pct() < conv.load_miss_ratio_pct() / 3.0,
            "conv {:.1}% vs ipoly {:.1}%",
            conv.load_miss_ratio_pct(),
            poly.load_miss_ratio_pct()
        );
        assert!(
            poly.ipc() > conv.ipc() * 1.1,
            "conv IPC {:.3} vs ipoly IPC {:.3}",
            conv.ipc(),
            poly.ipc()
        );
    }

    /// A register-serialized load chain over a small strided ring: each
    /// load's address register is the previous load's destination, so the
    /// cache-access latency sits squarely on the critical path — while
    /// the address *sequence* is a constant stride the §3.4 predictor can
    /// learn. This is precisely the scenario where the XOR delay hurts
    /// and address prediction recovers it.
    fn serial_strided_loads(n: usize) -> Vec<TraceOp> {
        (0..n)
            .map(|i| TraceOp::load(0x400, 0x1000 + (i as u64 % 64) * 8, 2, Some(2)))
            .collect()
    }

    #[test]
    fn xor_critical_path_penalty_reduces_ipc() {
        let base = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap();
        let mut p1 = Processor::new(base.clone()).unwrap();
        let s1 = p1.run(serial_strided_loads(10_000).into_iter(), 10_000);
        let mut p2 = Processor::new(base.with_xor_in_critical_path()).unwrap();
        let s2 = p2.run(serial_strided_loads(10_000).into_iter(), 10_000);
        // Serial chain: ~(1 + 2) cycles/load without the penalty,
        // ~(1 + 3) with it.
        assert!(
            s2.ipc() < s1.ipc() * 0.85,
            "in-CP {:.3} should trail no-CP {:.3}",
            s2.ipc(),
            s1.ipc()
        );
    }

    #[test]
    fn address_prediction_recovers_xor_penalty() {
        let cp = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_xor_in_critical_path();
        let mut no_pred = Processor::new(cp.clone()).unwrap();
        let s_no = no_pred.run(serial_strided_loads(10_000).into_iter(), 10_000);
        let mut with_pred = Processor::new(cp.with_address_prediction()).unwrap();
        let s_yes = with_pred.run(serial_strided_loads(10_000).into_iter(), 10_000);
        // Correct predictions overlap the access with the address
        // computation: effective hit time drops from 3 to 1.
        assert!(
            s_yes.ipc() > s_no.ipc() * 1.2,
            "pred {:.3} vs no-pred {:.3}",
            s_yes.ipc(),
            s_no.ipc()
        );
        assert!(s_yes.predictor.unwrap().usable_rate() > 0.5);
    }

    #[test]
    fn run_is_resumable() {
        let mut p = cpu(IndexSpec::modulo());
        let ops = indep_ints(2000);
        let s1 = p.run(ops.clone().into_iter().take(1000), 1000);
        let s2 = p.run(ops.into_iter().skip(1000), 1000);
        assert_eq!(s1.instructions, 1000);
        assert_eq!(s2.instructions, 2000);
        assert!(s2.cycles >= s1.cycles);
    }

    #[test]
    fn rejects_undersized_register_files() {
        let mut c = CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap();
        c.int_phys_regs = 16;
        assert!(Processor::new(c).is_err());
    }
}

//! Processor configuration (§4 and Table 1 of the paper).

use cac_core::latency::CriticalPath;
use cac_core::{CacheGeometry, Error, IndexSpec};

/// How the L1 index is formed relative to address translation — the
/// design space of §3.1.
///
/// The paper's evaluation assumes the virtual-real hierarchy (option 3):
/// the L1 is indexed with virtual-address bits and translation is off the
/// load's critical path. Option 1 instead translates first and indexes
/// physically, paying a pipeline stage on every load plus page-walk
/// stalls on TLB misses — the trade this enum lets experiments quantify.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslationModel {
    /// §3.1 option 3 (the paper's choice): virtually-indexed L1; no
    /// translation latency on loads.
    VirtuallyIndexed,
    /// §3.1 option 1: translation precedes indexing. Every load pays one
    /// extra pipeline stage; TLB misses add the page-walk penalty. The
    /// XOR tree operates on the physical address during the translation
    /// stage, so it is *never* on the critical path in this organization.
    PhysicallyIndexed {
        /// Total TLB entries (power of two).
        tlb_entries: u32,
        /// TLB associativity (power of two, ≤ entries).
        tlb_ways: u32,
        /// Page size in bytes (power of two).
        page_size: u64,
        /// Page-walk penalty in cycles per TLB miss.
        tlb_miss_penalty: u32,
        /// Seed for the randomized virtual→physical mapping.
        mapper_seed: u64,
    },
}

impl TranslationModel {
    /// The paper's option-1 configuration used by the comparison harness:
    /// a 64-entry 4-way 4KB-page TLB with a 30-cycle walk.
    pub fn physically_indexed() -> Self {
        TranslationModel::PhysicallyIndexed {
            tlb_entries: 64,
            tlb_ways: 4,
            page_size: 4096,
            tlb_miss_penalty: 30,
            mapper_seed: 0xcac,
        }
    }
}

/// Full configuration of the out-of-order processor model.
///
/// [`CpuConfig::paper_baseline`] reproduces the paper's setup; individual
/// fields can be adjusted for ablations.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Instructions fetched/dispatched per cycle (paper: 4).
    pub fetch_width: u32,
    /// Instructions issued per cycle (paper: 4-way superscalar).
    pub issue_width: u32,
    /// Instructions committed per cycle (paper: 4).
    pub commit_width: u32,
    /// Reorder-buffer entries (paper: 32).
    pub rob_entries: usize,
    /// Physical integer registers (paper: 64).
    pub int_phys_regs: u32,
    /// Physical floating-point registers (paper: 64).
    pub fp_phys_regs: u32,
    /// Branch-history-table entries, 2-bit counters (paper: 2K).
    pub bht_entries: usize,
    /// Memory ports (paper: 2).
    pub mem_ports: u32,
    /// MSHRs — outstanding misses to distinct lines (paper: 8).
    pub mshrs: usize,
    /// L1 data-cache geometry (paper: 8KB or 16KB, 2-way, 32B lines).
    pub cache_geometry: CacheGeometry,
    /// L1 placement function.
    pub index_spec: IndexSpec,
    /// Cache hit time in cycles (paper: 2).
    pub hit_latency: u32,
    /// Miss penalty in cycles (paper: 20; the L2 is infinite).
    pub miss_penalty: u32,
    /// Bus occupancy per line transfer (paper: 32B line over a 64-bit bus
    /// = 4 cycles).
    pub bus_cycles_per_line: u64,
    /// Where the index XOR tree sits relative to the critical path.
    pub critical_path: CriticalPath,
    /// Enable the §3.4 memory address predictor.
    pub address_prediction: bool,
    /// Predictor table entries (paper: 1K, untagged, direct-mapped).
    pub predictor_entries: usize,
    /// Where address translation sits relative to L1 indexing (§3.1).
    pub translation: TranslationModel,
}

impl CpuConfig {
    /// The paper's baseline processor with an 8KB 2-way L1 and the given
    /// placement function. XOR assumed off the critical path and no
    /// address prediction; toggle those fields for the other table
    /// columns.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_baseline(index_spec: IndexSpec) -> Result<Self, Error> {
        Ok(CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 32,
            int_phys_regs: 64,
            fp_phys_regs: 64,
            bht_entries: 2048,
            mem_ports: 2,
            mshrs: 8,
            cache_geometry: CacheGeometry::new(8 * 1024, 32, 2)?,
            index_spec,
            hit_latency: 2,
            miss_penalty: 20,
            bus_cycles_per_line: 4,
            critical_path: CriticalPath::XorHidden,
            address_prediction: false,
            predictor_entries: 1024,
            translation: TranslationModel::VirtuallyIndexed,
        })
    }

    /// Same configuration with a 16KB cache (the paper's Table 2 column 2).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_16kb(index_spec: IndexSpec) -> Result<Self, Error> {
        let mut c = Self::paper_baseline(index_spec)?;
        c.cache_geometry = CacheGeometry::new(16 * 1024, 32, 2)?;
        Ok(c)
    }

    /// Returns the configuration with the XOR tree placed on the critical
    /// path (one extra cycle on unpredicted cache accesses).
    pub fn with_xor_in_critical_path(mut self) -> Self {
        self.critical_path = CriticalPath::XorExposed;
        self
    }

    /// Returns the configuration with address prediction enabled.
    pub fn with_address_prediction(mut self) -> Self {
        self.address_prediction = true;
        self
    }

    /// Returns the configuration with §3.1 option-1 translation: the L1
    /// is physically indexed behind a TLB, and the XOR tree is hidden in
    /// the translation stage ([`CriticalPath::XorHidden`] is forced,
    /// because translation gives the hash a full stage of slack).
    pub fn with_physical_indexing(mut self, translation: TranslationModel) -> Self {
        self.translation = translation;
        self.critical_path = CriticalPath::XorHidden;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_table1_text() {
        let c = CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_entries, 32);
        assert_eq!(c.int_phys_regs, 64);
        assert_eq!(c.fp_phys_regs, 64);
        assert_eq!(c.bht_entries, 2048);
        assert_eq!(c.mem_ports, 2);
        assert_eq!(c.mshrs, 8);
        assert_eq!(c.cache_geometry.capacity(), 8 * 1024);
        assert_eq!(c.cache_geometry.ways(), 2);
        assert_eq!(c.cache_geometry.block(), 32);
        assert_eq!(c.hit_latency, 2);
        assert_eq!(c.miss_penalty, 20);
        assert_eq!(c.bus_cycles_per_line, 4);
        assert!(!c.address_prediction);
        assert_eq!(c.critical_path, CriticalPath::XorHidden);
        assert_eq!(c.translation, TranslationModel::VirtuallyIndexed);
    }

    #[test]
    fn physical_indexing_forces_xor_off_critical_path() {
        let c = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_xor_in_critical_path()
            .with_physical_indexing(TranslationModel::physically_indexed());
        assert_eq!(c.critical_path, CriticalPath::XorHidden);
        let TranslationModel::PhysicallyIndexed {
            tlb_entries,
            tlb_ways,
            page_size,
            tlb_miss_penalty,
            ..
        } = c.translation
        else {
            panic!("expected physical indexing");
        };
        assert_eq!(tlb_entries, 64);
        assert_eq!(tlb_ways, 4);
        assert_eq!(page_size, 4096);
        assert_eq!(tlb_miss_penalty, 30);
    }

    #[test]
    fn builders_toggle_fields() {
        let c = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_xor_in_critical_path()
            .with_address_prediction();
        assert_eq!(c.critical_path, CriticalPath::XorExposed);
        assert!(c.address_prediction);
        let c16 = CpuConfig::paper_16kb(IndexSpec::modulo()).unwrap();
        assert_eq!(c16.cache_geometry.capacity(), 16 * 1024);
        assert_eq!(c16.cache_geometry.num_sets(), 256);
    }
}

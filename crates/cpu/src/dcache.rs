//! The lockup-free L1 data cache of the processor model.
//!
//! Wraps the functional cache simulator with the timing machinery of §4:
//! MSHRs for outstanding misses, bus occupancy for line fills (64-bit bus,
//! 4 cycles per 32-byte line), the [`HitLatencyModel`] of §3.4 (XOR
//! placement on/off the critical path) and, optionally, the memory address
//! predictor.

use cac_core::latency::HitLatencyModel;
use cac_core::predictor::Outcome;
use cac_core::{AddressPredictor, Error};
use cac_sim::cache::Cache;
use cac_sim::mshr::{MshrFile, MshrOutcome};
use cac_sim::stats::CacheStats;
use cac_sim::tlb::{Tlb, TlbStats};
use cac_sim::vm::PageMapper;

use crate::config::{CpuConfig, TranslationModel};

/// TLB + page table for a physically-indexed L1 (§3.1 option 1).
#[derive(Debug)]
struct Translation {
    tlb: Tlb,
    mapper: PageMapper,
}

/// Result of presenting a load to the data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadResponse {
    /// The data is available at the given cycle.
    Ready {
        /// Absolute cycle at which the destination register is written.
        at: u64,
        /// `true` if the access hit in the cache.
        hit: bool,
    },
    /// All MSHRs are busy; retry on a later cycle.
    Blocked,
}

/// Timing + functional model of the paper's L1 data cache.
#[derive(Debug)]
pub struct DataCache {
    cache: Cache,
    mshrs: MshrFile,
    latency: HitLatencyModel,
    predictor: Option<AddressPredictor>,
    miss_penalty: u64,
    bus_cycles_per_line: u64,
    bus_free_at: u64,
    translation: Option<Translation>,
}

impl DataCache {
    /// Builds the data cache from a processor configuration.
    ///
    /// # Errors
    ///
    /// Propagates placement-validation errors.
    pub fn new(config: &CpuConfig) -> Result<Self, Error> {
        let translation = match &config.translation {
            TranslationModel::VirtuallyIndexed => None,
            TranslationModel::PhysicallyIndexed {
                tlb_entries,
                tlb_ways,
                page_size,
                tlb_miss_penalty,
                mapper_seed,
            } => Some(Translation {
                tlb: Tlb::new(*tlb_entries, *tlb_ways, *page_size, *tlb_miss_penalty)?,
                mapper: PageMapper::randomized(*page_size, 1 << 30, *mapper_seed),
            }),
        };
        Ok(DataCache {
            cache: Cache::build(config.cache_geometry, config.index_spec.clone())?,
            mshrs: MshrFile::new(config.mshrs),
            latency: HitLatencyModel::new(config.hit_latency, config.critical_path),
            predictor: if config.address_prediction {
                Some(AddressPredictor::new(config.predictor_entries)?)
            } else {
                None
            },
            miss_penalty: u64::from(config.miss_penalty),
            bus_cycles_per_line: config.bus_cycles_per_line,
            bus_free_at: 0,
            translation,
        })
    }

    /// Presents a load whose effective address becomes available at cycle
    /// `addr_ready`. Returns when the data is ready, or [`LoadResponse::Blocked`]
    /// if no MSHR can take the miss.
    pub fn load(&mut self, pc: u64, addr: u64, addr_ready: u64) -> LoadResponse {
        let outcome = match self.predictor.as_mut() {
            Some(p) => p.observe(pc, addr),
            None => Outcome::NotConfident,
        };
        // §3.1 option 1: translate before indexing. The cache sees the
        // physical address; every load pays one pipeline stage for the
        // translation, plus the page walk on a TLB miss.
        let (addr, translation_delay) = match self.translation.as_mut() {
            None => (addr, 0),
            Some(t) => {
                let (pa, tlb_hit) = t.tlb.translate(addr, &mut t.mapper);
                (pa, 1 + u64::from(t.tlb.latency(tlb_hit)))
            }
        };
        let addr_ready = addr_ready + translation_delay;
        let access = self.cache.read(addr);
        let hit_latency = if self.predictor.is_some() {
            self.latency.hit_latency(outcome)
        } else {
            self.latency.hit_latency_unpredicted()
        };
        let block = self.cache.geometry().block_addr(addr);
        if access.hit {
            // A functional hit may still be waiting on an in-flight fill
            // (hit-under-miss to the same line): it completes with the
            // fill, not before.
            self.mshrs.retire(addr_ready);
            let at = match self.mshrs.pending(block) {
                Some(fill_done) => fill_done.max(addr_ready + u64::from(hit_latency)),
                None => addr_ready + u64::from(hit_latency),
            };
            return LoadResponse::Ready { at, hit: true };
        }
        // Miss: needs an MSHR and the bus.
        match self.mshrs.request(block, addr_ready, self.miss_penalty) {
            MshrOutcome::Merged { ready_at } => LoadResponse::Ready {
                at: ready_at.max(addr_ready + u64::from(hit_latency)),
                hit: false,
            },
            MshrOutcome::Allocated { ready_at } => {
                // The fill occupies the 64-bit bus for 4 cycles; fills
                // serialize on the bus.
                let fill_done = ready_at.max(self.bus_free_at + self.bus_cycles_per_line);
                self.bus_free_at = fill_done;
                LoadResponse::Ready {
                    at: fill_done,
                    hit: false,
                }
            }
            MshrOutcome::Full => {
                // Undo nothing: the functional fill already happened, which
                // slightly favours the blocked retry; acceptable at this
                // fidelity.
                LoadResponse::Blocked
            }
        }
    }

    /// Commits a store (write-through / no-write-allocate): updates the
    /// functional state and statistics. Store timing is absorbed by the
    /// store buffer (§3.4: stores are issued to memory at commit and the
    /// XOR is off their critical path).
    pub fn store(&mut self, addr: u64) {
        // Stores translate too (the TLB access is off their critical path,
        // absorbed in the store buffer — §3.4), so the physically-indexed
        // cache stays coherent with loads.
        let addr = match self.translation.as_mut() {
            None => addr,
            Some(t) => t.tlb.translate(addr, &mut t.mapper).0,
        };
        let _ = self.cache.write(addr);
    }

    /// Functional cache statistics (the paper's "load miss ratio" is
    /// [`CacheStats::read_miss_ratio`]).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Address-predictor statistics, if prediction is enabled.
    pub fn predictor_stats(&self) -> Option<cac_core::predictor::PredictorStats> {
        self.predictor.as_ref().map(|p| p.stats())
    }

    /// TLB statistics, if the cache is physically indexed (§3.1 option 1).
    pub fn tlb_stats(&self) -> Option<TlbStats> {
        self.translation.as_ref().map(|t| t.tlb.stats())
    }

    /// The underlying functional cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_core::IndexSpec;

    fn dc(pred: bool, cp_exposed: bool) -> DataCache {
        let mut config = CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap();
        config.address_prediction = pred;
        if cp_exposed {
            config = config.with_xor_in_critical_path();
        }
        DataCache::new(&config).unwrap()
    }

    #[test]
    fn hit_latency_is_two_cycles() {
        let mut d = dc(false, false);
        d.load(0x400, 0x1000, 10); // miss, fills
        match d.load(0x400, 0x1000, 100) {
            LoadResponse::Ready { at, hit } => {
                assert!(hit);
                assert_eq!(at, 102);
            }
            LoadResponse::Blocked => panic!("unexpected block"),
        }
    }

    #[test]
    fn miss_pays_penalty_and_bus() {
        let mut d = dc(false, false);
        match d.load(0x400, 0x1000, 10) {
            LoadResponse::Ready { at, hit } => {
                assert!(!hit);
                assert!(at >= 30, "miss returned at {at}");
            }
            LoadResponse::Blocked => panic!("unexpected block"),
        }
    }

    #[test]
    fn secondary_miss_merges() {
        let mut d = dc(false, false);
        let first = d.load(0x400, 0x1000, 10);
        let second = d.load(0x404, 0x1008, 12); // same line
        let (LoadResponse::Ready { at: a, .. }, LoadResponse::Ready { at: b, .. }) =
            (first, second)
        else {
            panic!("blocked");
        };
        assert_eq!(a, b, "secondary miss completes with the primary fill");
    }

    #[test]
    fn mshr_exhaustion_blocks() {
        let mut d = dc(false, false);
        for i in 0..8u64 {
            assert!(matches!(
                d.load(0x400, 0x10000 + i * 32, 5),
                LoadResponse::Ready { .. }
            ));
        }
        assert_eq!(d.load(0x400, 0x90000, 6), LoadResponse::Blocked);
    }

    #[test]
    fn xor_in_critical_path_adds_cycle() {
        let mut d = dc(false, true);
        d.load(0x400, 0x1000, 10);
        match d.load(0x400, 0x1000, 100) {
            LoadResponse::Ready { at, .. } => assert_eq!(at, 103),
            LoadResponse::Blocked => panic!(),
        }
    }

    #[test]
    fn correct_prediction_shaves_a_cycle() {
        let mut d = dc(true, true);
        // Train the predictor on a constant address.
        for t in 0..6u64 {
            d.load(0x400, 0x1000, 10 * t + 10);
        }
        match d.load(0x400, 0x1000, 100) {
            LoadResponse::Ready { at, .. } => assert_eq!(at, 101), // 2 - 1
            LoadResponse::Blocked => panic!(),
        }
        assert!(d.predictor_stats().unwrap().confident_correct > 0);
    }

    #[test]
    fn store_updates_functional_state_only() {
        let mut d = dc(false, false);
        d.store(0x2000);
        // no-write-allocate: still a miss on the next load
        match d.load(0x400, 0x2000, 50) {
            LoadResponse::Ready { hit, .. } => assert!(!hit),
            LoadResponse::Blocked => panic!(),
        }
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn physical_indexing_charges_translation_stage() {
        use crate::config::TranslationModel;
        let config = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_physical_indexing(TranslationModel::physically_indexed());
        let mut d = DataCache::new(&config).unwrap();
        // First touch: TLB miss (30) + translation stage (1) + cache miss.
        match d.load(0x400, 0x1000, 10) {
            LoadResponse::Ready { at, hit } => {
                assert!(!hit);
                assert!(at >= 10 + 31 + 20, "first touch at {at}");
            }
            LoadResponse::Blocked => panic!(),
        }
        // Warm TLB + warm cache: 1 (stage) + 2 (hit).
        match d.load(0x400, 0x1000, 100) {
            LoadResponse::Ready { at, hit } => {
                assert!(hit);
                assert_eq!(at, 103);
            }
            LoadResponse::Blocked => panic!(),
        }
        let tlb = d.tlb_stats().expect("physically indexed");
        assert_eq!(tlb.accesses, 2);
        assert_eq!(tlb.misses, 1);
    }

    #[test]
    fn physical_indexing_keeps_loads_and_stores_coherent() {
        use crate::config::TranslationModel;
        let config = CpuConfig::paper_baseline(IndexSpec::modulo())
            .unwrap()
            .with_physical_indexing(TranslationModel::physically_indexed());
        let mut d = DataCache::new(&config).unwrap();
        d.load(0x400, 0x3000, 0); // fill the line via its physical address
        d.store(0x3008); // write-through hit on the same physical line
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().write_misses, 0, "store must see the load's fill");
    }

    #[test]
    fn virtually_indexed_cache_has_no_tlb() {
        let d = dc(false, false);
        assert!(d.tlb_stats().is_none());
    }

    #[test]
    fn bus_serializes_back_to_back_fills() {
        let mut d = dc(false, false);
        let mut readies = Vec::new();
        for i in 0..4u64 {
            if let LoadResponse::Ready { at, .. } = d.load(0x400, 0x50000 + i * 64, 0) {
                readies.push(at);
            }
        }
        // Fills cannot complete closer together than the bus occupancy.
        for w in readies.windows(2) {
            assert!(w[1] >= w[0] + 4, "{readies:?}");
        }
    }
}

//! Branch prediction: a table of 2-bit saturating counters (§4: "a branch
//! history table with 2K entries and 2-bit saturating counters").

/// Bimodal branch predictor.
///
/// # Example
///
/// ```
/// use cac_cpu::BranchPredictor;
///
/// let mut b = BranchPredictor::new(2048);
/// // Counters initialise weakly not-taken; training flips them.
/// b.update(0x400, true);
/// b.update(0x400, true);
/// assert!(b.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BHT entries must be a power of two"
        );
        BranchPredictor {
            counters: vec![1; entries], // weakly not-taken
            mask: (entries - 1) as u64,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.slot(pc)] >= 2
    }

    /// Predicts and records the outcome in the accuracy statistics; call
    /// once per dynamic branch.
    pub fn predict_and_track(&mut self, pc: u64, actual: bool) -> bool {
        let p = self.predict(pc);
        self.predictions += 1;
        if p != actual {
            self.mispredictions += 1;
        }
        p
    }

    /// Trains the counter with the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let c = &mut self.counters[slot];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Dynamic branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_learns() {
        let mut b = BranchPredictor::new(64);
        for _ in 0..4 {
            b.predict_and_track(0x100, true);
            b.update(0x100, true);
        }
        assert!(b.predict(0x100));
        // Early mispredictions only.
        assert!(b.accuracy() > 0.4);
        for _ in 0..100 {
            b.predict_and_track(0x100, true);
            b.update(0x100, true);
        }
        assert!(b.accuracy() > 0.9);
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut b = BranchPredictor::new(64);
        let mut taken = false;
        for _ in 0..200 {
            b.predict_and_track(0x200, taken);
            b.update(0x200, taken);
            taken = !taken;
        }
        assert!(b.accuracy() < 0.6);
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut b = BranchPredictor::new(64);
        for _ in 0..4 {
            b.update(0x10, true); // saturate to 3
        }
        b.update(0x10, false); // 2: still predicts taken
        assert!(b.predict(0x10));
        b.update(0x10, false); // 1: flips
        assert!(!b.predict(0x10));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut b = BranchPredictor::new(64);
        for _ in 0..4 {
            b.update(0x0, true);
            b.update(0x4, false);
        }
        assert!(b.predict(0x0));
        assert!(!b.predict(0x4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = BranchPredictor::new(100);
    }
}

//! Aggregate statistics of a simulation run.

use cac_core::predictor::PredictorStats;
use cac_sim::stats::CacheStats;
use cac_sim::tlb::TlbStats;
use std::fmt;

/// Counters produced by [`crate::Processor::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Branch mispredictions (resolved).
    pub branch_mispredictions: u64,
    /// Memory-dependence violations detected (ARB replays).
    pub memory_violations: u64,
    /// Loads satisfied by store-buffer forwarding.
    pub forwarded_loads: u64,
    /// Cycles dispatch was stalled with a full ROB.
    pub rob_stall_cycles: u64,
    /// Cycles fetch was stalled recovering from a misprediction.
    pub fetch_stall_cycles: u64,
    /// L1 data-cache counters.
    pub dcache: CacheStats,
    /// Address-predictor counters (when prediction is enabled).
    pub predictor: Option<PredictorStats>,
    /// TLB counters (when the L1 is physically indexed, §3.1 option 1).
    pub tlb: Option<TlbStats>,
}

impl CpuStats {
    /// Instructions committed per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Load miss ratio (%) — the metric of the paper's Tables 2–3.
    pub fn load_miss_ratio_pct(&self) -> f64 {
        self.dcache.read_miss_ratio() * 100.0
    }

    /// Branch prediction accuracy in `[0, 1]`.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.branch_mispredictions as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPC {:.3} ({} instr / {} cycles), load miss {:.2}%, branch acc {:.1}%",
            self.ipc(),
            self.instructions,
            self.cycles,
            self.load_miss_ratio_pct(),
            self.branch_accuracy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = CpuStats {
            instructions: 300,
            cycles: 200,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.branches = 100;
        s.branch_mispredictions = 10;
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(CpuStats::default().ipc(), 0.0);
        assert_eq!(CpuStats::default().branch_accuracy(), 1.0);
    }

    #[test]
    fn display_mentions_ipc() {
        let s = CpuStats {
            instructions: 100,
            cycles: 100,
            ..Default::default()
        };
        assert!(s.to_string().contains("IPC 1.000"));
    }
}

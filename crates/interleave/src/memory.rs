//! The banked-memory model.
//!
//! A deliberately minimal — but cycle-faithful — model of the memory
//! systems studied by Rau \[18\]\[19\]: an in-order request stream (as issued
//! by a vector unit or a stream of loads), `2^b` banks each busy for
//! `busy_time` cycles per access, and an optional FIFO buffer of pending
//! requests per bank. One request can be issued per cycle; a request to a
//! bank whose buffer is full stalls issue until a slot frees.
//!
//! Two facts make this simple model sufficient for the reproduction:
//! peak bandwidth is one access per cycle as long as requests spread over
//! at least `busy_time` banks, and any selection function that maps a
//! stride onto few banks serialises the stream at `1/busy_time` — which is
//! precisely the contrast the stride experiments measure.

use crate::sweep::Word;
use cac_core::{CacheGeometry, Error, IndexFunction, IndexSpec};
use std::collections::VecDeque;
use std::sync::Arc;

/// Static configuration of a banked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    banks: u32,
    word: u64,
    busy_time: u32,
    buffer_depth: u32,
}

impl BankConfig {
    /// Default per-bank buffer depth (Rau's buffered configuration).
    pub const DEFAULT_BUFFER_DEPTH: u32 = 8;

    /// Creates a configuration: `banks` memory banks of `word`-byte words,
    /// each busy for `busy_time` cycles per access, with the default
    /// buffer depth.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] unless `banks` and `word` are
    /// powers of two, and [`Error::OutOfRange`] if `busy_time` is zero.
    pub fn new(banks: u32, word: u64, busy_time: u32) -> Result<Self, Error> {
        if banks == 0 || !banks.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "banks",
                value: u64::from(banks),
            });
        }
        if word == 0 || !word.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "word size",
                value: word,
            });
        }
        if busy_time == 0 {
            return Err(Error::OutOfRange {
                what: "bank busy time",
                value: 0,
                constraint: ">= 1",
            });
        }
        Ok(BankConfig {
            banks,
            word,
            busy_time,
            buffer_depth: Self::DEFAULT_BUFFER_DEPTH,
        })
    }

    /// Same configuration with a different per-bank buffer depth
    /// (`0` = unbuffered: issue stalls whenever the target bank is busy).
    pub fn with_buffer_depth(mut self, depth: u32) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Word size in bytes (bank interleaving granularity).
    pub fn word(&self) -> u64 {
        self.word
    }

    /// Cycles a bank is busy per access.
    pub fn busy_time(&self) -> u32 {
        self.busy_time
    }

    /// Per-bank buffer depth.
    pub fn buffer_depth(&self) -> u32 {
        self.buffer_depth
    }

    /// The equivalent cache geometry used to instantiate a bank-selection
    /// function: one "set" per bank, one way, `word`-byte blocks.
    ///
    /// This is what lets every placement scheme in [`cac_core::index`]
    /// double as a bank-selection function — the unification the paper
    /// exploits in the other direction (memory schemes reused as cache
    /// indices).
    pub fn selector_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(u64::from(self.banks) * self.word, self.word, 1)
            .expect("banks and word validated as powers of two")
    }
}

/// Measurements accumulated by an [`InterleavedMemory`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterleaveStats {
    /// Requests issued.
    pub requests: u64,
    /// Cycle at which the last request completed (total busy span).
    pub finish_cycle: u64,
    /// Sum over requests of (service completion − arrival at issue).
    pub total_latency: u64,
    /// Cycles the issue stage spent stalled on a full bank buffer.
    pub issue_stalls: u64,
    /// Requests per bank (balance diagnostic).
    pub per_bank: Vec<u64>,
}

impl InterleaveStats {
    /// Effective bandwidth in accesses per cycle, relative to the peak of
    /// 1.0 (one issue per cycle): `requests / finish_cycle`.
    pub fn bandwidth(&self) -> f64 {
        if self.finish_cycle == 0 {
            return 0.0;
        }
        self.requests as f64 / self.finish_cycle as f64
    }

    /// Mean request latency in cycles (service completion − arrival).
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.total_latency as f64 / self.requests as f64
    }

    /// Ratio of the busiest bank's request count to the ideal uniform
    /// share — 1.0 is perfectly balanced, `banks` is fully serialised.
    pub fn imbalance(&self) -> f64 {
        let max = self.per_bank.iter().copied().max().unwrap_or(0);
        if self.requests == 0 || self.per_bank.is_empty() {
            return 1.0;
        }
        let ideal = self.requests as f64 / self.per_bank.len() as f64;
        max as f64 / ideal
    }
}

/// A banked memory with a pluggable bank-selection function.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct InterleavedMemory {
    config: BankConfig,
    selector: Arc<dyn IndexFunction>,
    /// Completion times of requests currently held by each bank
    /// (front = oldest). Length ≤ buffer_depth + 1 (one in service).
    in_flight: Vec<VecDeque<u64>>,
    /// Cycle at which each bank finishes its current service.
    bank_free: Vec<u64>,
    /// Next cycle at which the issue stage may issue.
    issue_cycle: u64,
    stats: InterleaveStats,
}

impl InterleavedMemory {
    /// Builds a memory whose bank-selection function is `spec`
    /// instantiated over [`BankConfig::selector_geometry`].
    ///
    /// # Errors
    ///
    /// Propagates placement-construction failures from
    /// [`IndexSpec::build`].
    pub fn build(config: BankConfig, spec: IndexSpec) -> Result<Self, Error> {
        let selector = spec.build(config.selector_geometry())?;
        Ok(Self::with_selector(config, selector))
    }

    /// Builds a memory from an already-constructed selection function.
    pub fn with_selector(config: BankConfig, selector: Arc<dyn IndexFunction>) -> Self {
        let banks = config.banks() as usize;
        InterleavedMemory {
            config,
            selector,
            in_flight: vec![VecDeque::new(); banks],
            bank_free: vec![0; banks],
            issue_cycle: 0,
            stats: InterleaveStats {
                per_bank: vec![0; banks],
                ..InterleaveStats::default()
            },
        }
    }

    /// The configuration this memory was built with.
    pub fn config(&self) -> BankConfig {
        self.config
    }

    /// The bank a byte address maps to.
    pub fn bank_of(&self, addr: u64) -> u32 {
        let word_addr = addr / self.config.word;
        self.selector.set_index(word_addr, 0)
    }

    /// Issues one access to `addr` and returns the bank it was routed to.
    ///
    /// Models in-order issue of one request per cycle: if the target
    /// bank's buffer is full the issue stage stalls (advancing the clock)
    /// until the oldest pending request completes.
    pub fn access(&mut self, addr: u64) -> u32 {
        let bank = self.bank_of(addr) as usize;
        let arrival = self.issue_cycle;

        // Retire completed requests from this bank's buffer.
        let fifo = &mut self.in_flight[bank];
        while fifo.front().is_some_and(|&done| done <= arrival) {
            fifo.pop_front();
        }

        // Stall issue while the buffer (plus the slot in service) is full.
        let capacity = self.config.buffer_depth as usize + 1;
        let mut now = arrival;
        if fifo.len() >= capacity {
            let unblock = fifo[fifo.len() - capacity];
            self.stats.issue_stalls += unblock - now;
            now = unblock;
            while fifo.front().is_some_and(|&done| done <= now) {
                fifo.pop_front();
            }
        }

        // Serve FIFO after the bank frees up.
        let start = now.max(self.bank_free[bank]);
        let done = start + u64::from(self.config.busy_time);
        self.bank_free[bank] = done;
        self.in_flight[bank].push_back(done);

        self.stats.requests += 1;
        self.stats.per_bank[bank] += 1;
        self.stats.total_latency += done - arrival;
        self.stats.finish_cycle = self.stats.finish_cycle.max(done);
        self.issue_cycle = now + 1;
        self.selector.set_index(addr / self.config.word, 0)
    }

    /// Issues a whole word-address stream; convenience for experiments.
    pub fn access_words<I: IntoIterator<Item = Word>>(&mut self, words: I) {
        for w in words {
            self.access(w.byte_addr(self.config.word));
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &InterleaveStats {
        &self.stats
    }

    /// Label of the bank-selection function (paper-style, e.g. `a1-Hp`).
    pub fn selector_label(&self) -> String {
        self.selector.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BankConfig {
        BankConfig::new(16, 8, 6).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(BankConfig::new(0, 8, 6).is_err());
        assert!(BankConfig::new(12, 8, 6).is_err());
        assert!(BankConfig::new(16, 0, 6).is_err());
        assert!(BankConfig::new(16, 9, 6).is_err());
        assert!(BankConfig::new(16, 8, 0).is_err());
        assert!(BankConfig::new(16, 8, 6).is_ok());
    }

    #[test]
    fn selector_geometry_has_one_set_per_bank() {
        let g = config().selector_geometry();
        assert_eq!(g.num_sets(), 16);
        assert_eq!(g.offset_bits(), 3);
        assert_eq!(g.ways(), 1);
    }

    #[test]
    fn stride_one_reaches_peak_bandwidth() {
        // 16 banks, busy 6: consecutive words rotate over all banks, so
        // each bank is revisited every 16 cycles > 6 — no stalls at all.
        let mut m = InterleavedMemory::build(config(), IndexSpec::modulo()).unwrap();
        for i in 0..1024u64 {
            m.access(i * 8);
        }
        let bw = m.stats().bandwidth();
        assert!(bw > 0.98, "stride-1 bandwidth {bw}");
        assert_eq!(m.stats().issue_stalls, 0);
    }

    #[test]
    fn bank_stride_serialises_modulo_selection() {
        // Stride = #banks: every access targets bank 0; steady-state
        // bandwidth is 1/busy_time.
        let mut m = InterleavedMemory::build(config(), IndexSpec::modulo()).unwrap();
        for i in 0..1024u64 {
            m.access(i * 16 * 8);
        }
        let bw = m.stats().bandwidth();
        assert!((bw - 1.0 / 6.0).abs() < 0.01, "serialised bandwidth {bw}");
        assert_eq!(m.stats().per_bank[0], 1024);
        assert!((m.stats().imbalance() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ipoly_selection_spreads_bank_stride() {
        let mut m = InterleavedMemory::build(config(), IndexSpec::ipoly()).unwrap();
        for i in 0..1024u64 {
            m.access(i * 16 * 8);
        }
        assert!(m.stats().bandwidth() > 0.9);
        assert!(m.stats().imbalance() < 1.5);
    }

    #[test]
    fn unbuffered_memory_still_conserves_requests() {
        let cfg = config().with_buffer_depth(0);
        let mut m = InterleavedMemory::build(cfg, IndexSpec::modulo()).unwrap();
        for i in 0..100u64 {
            m.access(i * 16 * 8);
        }
        assert_eq!(m.stats().requests, 100);
        assert_eq!(m.stats().per_bank.iter().sum::<u64>(), 100);
        // Unbuffered single-bank traffic: one access per busy period.
        assert!((m.stats().bandwidth() - 1.0 / 6.0).abs() < 0.01);
    }

    #[test]
    fn buffering_hides_short_bursts() {
        // A burst of 4 to one bank then 12 elsewhere: buffers absorb the
        // burst without collapsing overall bandwidth.
        let mut m = InterleavedMemory::build(config(), IndexSpec::modulo()).unwrap();
        for round in 0..64u64 {
            for i in 0..4u64 {
                m.access((round * 1024 + i * 16) * 8 * 16);
            }
            for i in 0..12u64 {
                m.access((i + 1) * 8 + round * 16 * 8);
            }
        }
        assert!(m.stats().bandwidth() > 0.5);
    }

    #[test]
    fn latency_includes_queueing() {
        let mut m = InterleavedMemory::build(config(), IndexSpec::modulo()).unwrap();
        // Two back-to-back requests to the same bank: second waits.
        m.access(0);
        m.access(16 * 8 * 8); // same bank 0 under modulo (128 words)
        assert_eq!(m.stats().total_latency, 6 + (6 + 6 - 1));
    }

    #[test]
    fn stats_start_empty() {
        let m = InterleavedMemory::build(config(), IndexSpec::modulo()).unwrap();
        assert_eq!(m.stats().requests, 0);
        assert_eq!(m.stats().bandwidth(), 0.0);
        assert_eq!(m.stats().avg_latency(), 0.0);
        assert_eq!(m.stats().imbalance(), 1.0);
    }

    #[test]
    fn selector_label_is_exposed() {
        let m = InterleavedMemory::build(config(), IndexSpec::ipoly()).unwrap();
        assert_eq!(m.selector_label(), "a1-Hp");
    }
}

//! The classic interleaved-memory experiment: bandwidth as a function of
//! vector stride.
//!
//! Rau's pseudo-random-interleaving paper \[19\] evaluates bank-selection
//! functions by streaming a strided vector through the memory and
//! recording sustained bandwidth per stride. The punchline — and the
//! property the cache paper imports — is that polynomial selection keeps
//! bandwidth near peak for **every** stride, while modulo selection
//! collapses on strides sharing factors with the bank count.

use crate::memory::{BankConfig, InterleavedMemory};
use cac_core::{Error, IndexSpec};

/// A word index into memory (bank interleaving granularity).
///
/// Strides in these experiments are expressed in words, matching the
/// vector-machine setting of the original studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Word(pub u64);

impl Word {
    /// The byte address of this word for a given word size.
    pub fn byte_addr(self, word_size: u64) -> u64 {
        self.0 * word_size
    }
}

/// Result of one stride measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StrideBandwidth {
    /// The stride, in words.
    pub stride: u64,
    /// Sustained bandwidth in accesses/cycle (peak = 1.0).
    pub bandwidth: f64,
    /// Mean request latency in cycles.
    pub avg_latency: f64,
    /// Busiest-bank load relative to uniform (1.0 = balanced).
    pub imbalance: f64,
}

/// Streams `accesses` vector elements at every stride in `1..=max_stride`
/// through a fresh memory per stride and reports bandwidth for each.
///
/// # Errors
///
/// Propagates selector-construction failures from [`IndexSpec::build`].
///
/// # Example
///
/// ```
/// use cac_core::IndexSpec;
/// use cac_interleave::{stride_sweep, BankConfig};
///
/// let cfg = BankConfig::new(16, 8, 6)?;
/// let results = stride_sweep(cfg, IndexSpec::ipoly(), 64, 512)?;
/// assert_eq!(results.len(), 64);
/// // Rau's guarantee: every power-of-two stride runs at near-peak
/// // bandwidth (modulo selection collapses on all of them).
/// for k in 0..6 {
///     assert!(results[(1 << k) - 1].bandwidth > 0.9);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn stride_sweep(
    config: BankConfig,
    spec: IndexSpec,
    max_stride: u64,
    accesses: u64,
) -> Result<Vec<StrideBandwidth>, Error> {
    let mut out = Vec::with_capacity(max_stride as usize);
    for stride in 1..=max_stride {
        let mut memory = InterleavedMemory::build(config, spec.clone())?;
        memory.access_words((0..accesses).map(|i| Word(i * stride)));
        let stats = memory.stats();
        out.push(StrideBandwidth {
            stride,
            bandwidth: stats.bandwidth(),
            avg_latency: stats.avg_latency(),
            imbalance: stats.imbalance(),
        });
    }
    Ok(out)
}

/// Streams `accesses` uniformly random word addresses through a fresh
/// memory and reports its statistics — Rau's *random-traffic reference
/// point*: every reasonable selection function behaves identically here,
/// so the stride sweep isolates exactly the structured-traffic
/// differences.
///
/// Deterministic in `seed` (an internal xorshift stream).
///
/// # Errors
///
/// Propagates selector-construction failures from [`IndexSpec::build`].
///
/// # Example
///
/// ```
/// use cac_core::IndexSpec;
/// use cac_interleave::{random_sweep, BankConfig};
///
/// let cfg = BankConfig::new(16, 8, 6)?;
/// let modulo = random_sweep(cfg, IndexSpec::modulo(), 4096, 1)?;
/// let ipoly = random_sweep(cfg, IndexSpec::ipoly(), 4096, 1)?;
/// // On random traffic the selection function is irrelevant.
/// assert!((modulo.bandwidth() - ipoly.bandwidth()).abs() < 0.05);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_sweep(
    config: BankConfig,
    spec: IndexSpec,
    accesses: u64,
    seed: u64,
) -> Result<crate::memory::InterleaveStats, Error> {
    let mut memory = InterleavedMemory::build(config, spec)?;
    let mut x = seed | 1;
    for _ in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        memory.access(Word(x % (1 << 24)).byte_addr(config.word()));
    }
    Ok(memory.stats().clone())
}

/// Summary of a sweep: worst-case and mean bandwidth, and the number of
/// strides below a degradation threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSummary {
    /// Lowest bandwidth over all strides.
    pub min_bandwidth: f64,
    /// Arithmetic-mean bandwidth over all strides.
    pub mean_bandwidth: f64,
    /// Number of strides with bandwidth below the threshold.
    pub degraded: usize,
    /// The threshold used.
    pub threshold: f64,
}

/// Summarises sweep results against a bandwidth `threshold`.
pub fn summarize(results: &[StrideBandwidth], threshold: f64) -> SweepSummary {
    let min = results
        .iter()
        .map(|r| r.bandwidth)
        .fold(f64::INFINITY, f64::min);
    let mean = if results.is_empty() {
        0.0
    } else {
        results.iter().map(|r| r.bandwidth).sum::<f64>() / results.len() as f64
    };
    SweepSummary {
        min_bandwidth: if min.is_finite() { min } else { 0.0 },
        mean_bandwidth: mean,
        degraded: results.iter().filter(|r| r.bandwidth < threshold).count(),
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BankConfig {
        BankConfig::new(16, 8, 6).unwrap()
    }

    #[test]
    fn word_byte_addresses() {
        assert_eq!(Word(0).byte_addr(8), 0);
        assert_eq!(Word(7).byte_addr(8), 56);
        assert_eq!(Word(7).byte_addr(4), 28);
    }

    #[test]
    fn modulo_collapses_on_even_strides() {
        let results = stride_sweep(config(), IndexSpec::modulo(), 32, 512).unwrap();
        let s16 = &results[15]; // stride 16
        assert!(s16.bandwidth < 0.2, "stride 16 bw {}", s16.bandwidth);
        let s8 = &results[7]; // stride 8: two banks
        assert!(s8.bandwidth < 0.4, "stride 8 bw {}", s8.bandwidth);
        let s1 = &results[0];
        assert!(s1.bandwidth > 0.95);
    }

    #[test]
    fn ipoly_beats_modulo_across_the_sweep() {
        // 16 banks / degree-4 polynomial: I-Poly is guaranteed on
        // power-of-two strides and pseudo-random elsewhere; a handful of
        // 2^k±1 resonances remain (strides 31/33/62 here), far fewer and
        // shallower than the 8 power-of-two collapses of modulo selection.
        let ipoly = stride_sweep(config(), IndexSpec::ipoly(), 64, 512).unwrap();
        let modulo = stride_sweep(config(), IndexSpec::modulo(), 64, 512).unwrap();
        let si = summarize(&ipoly, 0.5);
        let sm = summarize(&modulo, 0.5);
        assert!(si.degraded <= 3, "{si:?}");
        assert_eq!(sm.degraded, 8, "{sm:?}");
        assert!(si.mean_bandwidth > sm.mean_bandwidth);
        assert!(si.mean_bandwidth > 0.9);
        // The guarantee itself: power-of-two strides all near peak.
        for k in 0..6 {
            assert!(ipoly[(1usize << k) - 1].bandwidth > 0.9, "stride 2^{k}");
        }
    }

    #[test]
    fn more_banks_remove_residual_resonances() {
        // With 32 banks (degree-5 polynomial) no stride in 1..=64 falls
        // below half of peak — the Cydra-5 configuration regime.
        let cfg = BankConfig::new(32, 8, 6).unwrap();
        let results = stride_sweep(cfg, IndexSpec::ipoly(), 64, 512).unwrap();
        assert_eq!(summarize(&results, 0.5).degraded, 0);
    }

    #[test]
    fn summary_of_empty_sweep() {
        let s = summarize(&[], 0.5);
        assert_eq!(s.degraded, 0);
        assert_eq!(s.mean_bandwidth, 0.0);
        assert_eq!(s.min_bandwidth, 0.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = stride_sweep(config(), IndexSpec::rand_table(), 16, 256).unwrap();
        let b = stride_sweep(config(), IndexSpec::rand_table(), 16, 256).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_traffic_is_selector_independent() {
        // Rau's reference point: on uniform random traffic every balanced
        // selector sustains the same bandwidth (bounded below peak by
        // queueing on randomly-coinciding banks).
        let bws: Vec<f64> = [
            IndexSpec::modulo(),
            IndexSpec::ipoly(),
            IndexSpec::add_skew(),
            IndexSpec::rand_table(),
        ]
        .into_iter()
        .map(|s| random_sweep(config(), s, 8192, 3).unwrap().bandwidth())
        .collect();
        let (min, max) = bws.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &b| {
            (lo.min(b), hi.max(b))
        });
        assert!(max - min < 0.05, "{bws:?}");
        assert!(min > 0.6, "{bws:?}");
    }

    #[test]
    fn random_sweep_is_deterministic_in_seed() {
        let a = random_sweep(config(), IndexSpec::ipoly(), 2048, 9).unwrap();
        let b = random_sweep(config(), IndexSpec::ipoly(), 2048, 9).unwrap();
        let c = random_sweep(config(), IndexSpec::ipoly(), 2048, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Interleaved (banked) memory simulator.
//!
//! The conflict-avoiding cache paper (§2.1) grounds its I-Poly placement
//! function in the *interleaved-memory* literature: polynomial-modulus
//! bank selection was introduced by Rau for the Cydra 5 ("The Cydra 5
//! stride-insensitive memory system" \[18\]) and analysed in "Pseudo-randomly
//! interleaved memories" (ISCA 1991) \[19\]. The paper's claim that I-Poly
//! indexing has *provably* good behaviour on strided sequences is
//! inherited from that setting. This crate rebuilds it, so the claim can
//! be checked in its original habitat:
//!
//! * [`memory::InterleavedMemory`] — a parametric banked memory: `2^b`
//!   banks, a bank-busy time, optional per-bank request buffering, and a
//!   pluggable bank-selection function (any [`cac_core::IndexSpec`] —
//!   the same placement machinery the cache uses).
//! * [`memory::InterleaveStats`] — bandwidth, latency, stall and
//!   bank-balance measurements.
//! * [`sweep`] — the classic vector experiment: issue a `K`-element
//!   strided access stream for every stride in a range and record the
//!   effective bandwidth per stride.
//!
//! The headline reproduction (bench binary `interleave_bandwidth` in
//! `cac-bench`) shows the Cydra-5 result: modulo interleaving collapses
//! to `1/busy_time` bandwidth on power-of-two strides, prime-modulus
//! (Lawrie–Vora) fixes those but needs non-trivial hardware and still has
//! resonant strides, while I-Poly selection sustains near-peak bandwidth
//! on *every* stride.
//!
//! # Example
//!
//! ```
//! use cac_core::IndexSpec;
//! use cac_interleave::{BankConfig, InterleavedMemory};
//!
//! // 16 banks, 8-byte words, banks busy for 6 cycles per access.
//! let config = BankConfig::new(16, 8, 6)?;
//! let mut modulo = InterleavedMemory::build(config, IndexSpec::modulo())?;
//! let mut ipoly = InterleavedMemory::build(config, IndexSpec::ipoly())?;
//!
//! // Stride 16 words: every request hits bank 0 under modulo selection.
//! for i in 0..256u64 {
//!     modulo.access(i * 16 * 8);
//!     ipoly.access(i * 16 * 8);
//! }
//! assert!(modulo.stats().bandwidth() < 0.2);  // serialised on one bank
//! assert!(ipoly.stats().bandwidth() > 0.9);   // spread across banks
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod sweep;

pub use memory::{BankConfig, InterleaveStats, InterleavedMemory};
pub use sweep::{random_sweep, stride_sweep, summarize, StrideBandwidth, SweepSummary, Word};

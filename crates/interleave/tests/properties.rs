//! Property-based tests for the banked-memory model.

use cac_core::IndexSpec;
use cac_interleave::{stride_sweep, summarize, BankConfig, InterleavedMemory};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = BankConfig> {
    // 2..64 banks, 4/8/16-byte words, busy 1..16, buffer 0..8.
    (1u32..7, 2u32..5, 1u32..16, 0u32..8).prop_map(|(b, w, busy, depth)| {
        BankConfig::new(1 << b, 1 << w, busy)
            .expect("powers of two by construction")
            .with_buffer_depth(depth)
    })
}

fn selectors() -> impl Strategy<Value = IndexSpec> {
    prop_oneof![
        Just(IndexSpec::modulo()),
        Just(IndexSpec::ipoly()),
        Just(IndexSpec::prime()),
        Just(IndexSpec::add_skew()),
        Just(IndexSpec::rand_table()),
    ]
}

proptest! {
    #[test]
    fn requests_are_conserved(
        cfg in configs(),
        spec in selectors(),
        addrs in proptest::collection::vec(any::<u32>(), 1..300),
    ) {
        let mut m = InterleavedMemory::build(cfg, spec).unwrap();
        for &a in &addrs {
            let bank = m.access(u64::from(a));
            prop_assert!(bank < cfg.banks());
        }
        let stats = m.stats();
        prop_assert_eq!(stats.requests, addrs.len() as u64);
        prop_assert_eq!(stats.per_bank.iter().sum::<u64>(), addrs.len() as u64);
    }

    #[test]
    fn bandwidth_bounded_by_peak_and_serial_floor(
        cfg in configs(),
        spec in selectors(),
        stride in 1u64..200,
    ) {
        let accesses = 256u64;
        let mut m = InterleavedMemory::build(cfg, spec).unwrap();
        for i in 0..accesses {
            m.access(i * stride * cfg.word());
        }
        let bw = m.stats().bandwidth();
        // Peak is 1 access/cycle; the floor is fully serialised service
        // on one bank (allow slack for the pipeline ramp).
        prop_assert!(bw <= 1.0 + 1e-9);
        let serial_floor = accesses as f64
            / ((accesses * u64::from(cfg.busy_time())) as f64 + accesses as f64);
        prop_assert!(bw >= serial_floor - 1e-9, "bw {bw} < serial floor {serial_floor}");
    }

    #[test]
    fn latency_at_least_service_time(
        cfg in configs(),
        spec in selectors(),
        addrs in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        let mut m = InterleavedMemory::build(cfg, spec).unwrap();
        for &a in &addrs {
            m.access(u64::from(a) * cfg.word());
        }
        prop_assert!(m.stats().avg_latency() >= f64::from(cfg.busy_time()) - 1e-9);
    }

    #[test]
    fn imbalance_between_one_and_bank_count(
        cfg in configs(),
        spec in selectors(),
        stride in 1u64..64,
    ) {
        let mut m = InterleavedMemory::build(cfg, spec).unwrap();
        for i in 0..256u64 {
            m.access(i * stride * cfg.word());
        }
        let imb = m.stats().imbalance();
        prop_assert!(imb >= 1.0 - 1e-9);
        prop_assert!(imb <= f64::from(cfg.banks()) + 1e-9);
    }

    #[test]
    fn sweep_summary_consistent(
        spec in selectors(),
        max_stride in 1u64..24,
    ) {
        let cfg = BankConfig::new(8, 8, 4).unwrap();
        let results = stride_sweep(cfg, spec, max_stride, 128).unwrap();
        prop_assert_eq!(results.len(), max_stride as usize);
        let summary = summarize(&results, 0.5);
        prop_assert!(summary.min_bandwidth <= summary.mean_bandwidth + 1e-12);
        prop_assert!(summary.degraded <= results.len());
    }

    #[test]
    fn ipoly_never_serialises_power_of_two_strides(k in 0u32..10) {
        // The paper's fundamental result, in its original habitat: strides
        // 2^k are conflict-free under polynomial selection, so bandwidth
        // stays near peak (banks=16 > busy=6 guarantee headroom).
        let cfg = BankConfig::new(16, 8, 6).unwrap();
        let mut m = InterleavedMemory::build(cfg, IndexSpec::ipoly()).unwrap();
        for i in 0..512u64 {
            m.access(i * (1u64 << k) * 8);
        }
        let bw = m.stats().bandwidth();
        prop_assert!(bw > 0.9, "stride 2^{k} bandwidth {bw}");
    }
}

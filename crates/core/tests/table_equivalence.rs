//! Property tests: LUT-compiled placement ([`IndexTable`]) is
//! behaviourally identical to the direct [`IndexFunction`] it was built
//! from — for every scheme, across geometries, over the whole address
//! space (including addresses far beyond any table's coverage).

use cac_core::index::IndexTable;
use cac_core::{CacheGeometry, IndexSpec};
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = CacheGeometry> {
    // capacity 1KB..64KB, block 16/32/64, ways 1/2/4 — all valid combos.
    (10u32..17, 4u32..7, 0u32..3).prop_map(|(cap_log, blk_log, way_log)| {
        CacheGeometry::new(1u64 << cap_log, 1u64 << blk_log, 1 << way_log)
            .expect("combination is valid by construction")
    })
}

fn specs() -> impl Strategy<Value = IndexSpec> {
    prop_oneof![
        Just(IndexSpec::modulo()),
        Just(IndexSpec::xor()),
        Just(IndexSpec::xor_skewed()),
        Just(IndexSpec::ipoly()),
        Just(IndexSpec::ipoly_skewed()),
        Just(IndexSpec::prime()),
        Just(IndexSpec::prime_skewed()),
        Just(IndexSpec::add_skew()),
        Just(IndexSpec::add_skew_skewed()),
        any::<u64>().prop_map(|seed| IndexSpec::RandTable { skewed: true, seed }),
        any::<u64>().prop_map(|seed| IndexSpec::XorMatrix { skewed: true, seed }),
    ]
}

proptest! {
    #[test]
    fn table_agrees_with_function_everywhere(
        geom in geometries(), spec in specs(), addrs in proptest::collection::vec(any::<u64>(), 1..64)
    ) {
        let f = spec.build(geom).unwrap();
        let t = IndexTable::compile(f.clone());
        prop_assert_eq!(t.num_sets(), f.num_sets());
        prop_assert_eq!(t.ways(), f.ways());
        for addr in addrs {
            let ba = geom.block_addr(addr);
            for way in 0..geom.ways() {
                prop_assert_eq!(
                    t.set_index(ba, way),
                    f.set_index(ba, way),
                    "{} at {:#x} way {}", spec, ba, way
                );
            }
        }
    }

    #[test]
    fn table_agrees_near_its_coverage_boundary(geom in geometries(), spec in specs()) {
        // Exhaustive agreement around the table edge: the last covered
        // block addresses and the first uncovered ones, where a wrong
        // mask or fallback decision would show.
        let f = spec.build(geom).unwrap();
        let t = IndexTable::compile(f.clone());
        let bits = t.table_bits().max(1);
        let edge = 1u64 << bits.min(40);
        for delta in 0..64u64 {
            for ba in [delta, edge - 1 - delta % edge, edge + delta, 3 * edge + delta] {
                for way in 0..geom.ways() {
                    prop_assert_eq!(
                        t.set_index(ba, way),
                        f.set_index(ba, way),
                        "{} at {:#x} way {}", spec, ba, way
                    );
                }
            }
        }
    }

    #[test]
    fn build_table_matches_compile(geom in geometries(), spec in specs(), addr in any::<u64>()) {
        let via_spec = spec.build_table(geom).unwrap();
        let via_compile = IndexTable::compile(spec.build(geom).unwrap());
        let ba = geom.block_addr(addr);
        for way in 0..geom.ways() {
            prop_assert_eq!(via_spec.set_index(ba, way), via_compile.set_index(ba, way));
        }
    }
}

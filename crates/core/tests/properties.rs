//! Property-based tests for placement functions, the hole model and the
//! address predictor.

use cac_core::holes::HoleModel;
use cac_core::predictor::Outcome;
use cac_core::{AddressPredictor, CacheGeometry, IndexSpec};
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = CacheGeometry> {
    // capacity 1KB..64KB, block 16/32/64, ways 1/2/4 — all valid combos.
    (10u32..17, 4u32..7, 0u32..3).prop_map(|(cap_log, blk_log, way_log)| {
        CacheGeometry::new(1u64 << cap_log, 1u64 << blk_log, 1 << way_log)
            .expect("combination is valid by construction")
    })
}

fn specs() -> impl Strategy<Value = IndexSpec> {
    prop_oneof![
        Just(IndexSpec::modulo()),
        Just(IndexSpec::xor()),
        Just(IndexSpec::xor_skewed()),
        Just(IndexSpec::ipoly()),
        Just(IndexSpec::ipoly_skewed()),
        Just(IndexSpec::prime()),
        Just(IndexSpec::prime_skewed()),
        Just(IndexSpec::add_skew()),
        Just(IndexSpec::add_skew_skewed()),
        any::<u64>().prop_map(|seed| IndexSpec::RandTable { skewed: true, seed }),
        any::<u64>().prop_map(|seed| IndexSpec::XorMatrix { skewed: true, seed }),
    ]
}

proptest! {
    #[test]
    fn every_index_is_in_range(geom in geometries(), spec in specs(), addr in any::<u64>()) {
        let f = spec.build(geom).unwrap();
        for way in 0..geom.ways() {
            prop_assert!(f.set_index(geom.block_addr(addr), way) < geom.num_sets());
        }
    }

    #[test]
    fn placement_is_deterministic(geom in geometries(), spec in specs(), addr in any::<u64>()) {
        let f = spec.build(geom).unwrap();
        let g = spec.build(geom).unwrap();
        for way in 0..geom.ways() {
            let ba = geom.block_addr(addr);
            prop_assert_eq!(f.set_index(ba, way), g.set_index(ba, way));
            prop_assert_eq!(f.set_index(ba, way), f.set_index(ba, way));
        }
    }

    #[test]
    fn offset_bits_never_affect_placement(
        geom in geometries(), spec in specs(), addr in any::<u64>(), off in any::<u8>()
    ) {
        let f = spec.build(geom).unwrap();
        let a = geom.block_base(addr);
        let b = a + u64::from(off) % geom.block();
        for way in 0..geom.ways() {
            prop_assert_eq!(
                f.set_index(geom.block_addr(a), way),
                f.set_index(geom.block_addr(b), way)
            );
        }
    }

    #[test]
    fn ipoly_covers_all_sets(geom in geometries()) {
        // Linear-surjective: scanning 4 * sets consecutive blocks touches
        // every set at least once for the I-Poly functions.
        let f = IndexSpec::ipoly_skewed().build(geom).unwrap();
        let sets = geom.num_sets() as usize;
        let mut seen = vec![false; sets];
        for ba in 0..(4 * sets as u64) {
            seen[f.set_index(ba, 0) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&x| x), "{}", geom);
    }

    #[test]
    fn linear_schemes_cover_all_sets(geom in geometries(), seed in any::<u64>()) {
        // Balanced-by-construction schemes must reach every set within one
        // full scan of the index field (the low `m` block-address bits act
        // bijectively for any fixed tag).
        for spec in [
            IndexSpec::add_skew_skewed(),
            IndexSpec::RandTable { skewed: false, seed },
            IndexSpec::XorMatrix { skewed: false, seed },
        ] {
            let f = spec.build(geom).unwrap();
            let sets = geom.num_sets() as usize;
            let mut seen = vec![false; sets];
            for ba in 0..sets as u64 {
                seen[f.set_index(ba, 0) as usize] = true;
            }
            prop_assert!(seen.iter().all(|&x| x), "{} under {}", geom, spec);
        }
    }

    #[test]
    fn prime_scheme_wastes_at_most_the_gap_to_the_prime(geom in geometries()) {
        use cac_core::index::{IndexFunction, PrimeModIndex};
        let f = PrimeModIndex::new(geom, false);
        // Bertrand's postulate: a prime lies in (n/2, n], so at most half
        // the sets are wasted, and indices never reach the wasted region.
        prop_assert!(f.wasted_sets() < geom.num_sets().div_ceil(2).max(1));
        for ba in 0..1024u64 {
            prop_assert!(f.set_index(ba, 0) < f.prime().max(1));
        }
    }

    #[test]
    fn hole_probability_in_unit_interval(m1 in 1u32..20, extra in 0u32..20) {
        let m = HoleModel::from_index_bits(m1, m1 + extra).unwrap();
        let p = m.p_hole_per_l2_miss();
        prop_assert!((0.0..1.0).contains(&p));
        // P_H is monotonically decreasing in m2.
        let bigger = HoleModel::from_index_bits(m1, m1 + extra + 1).unwrap();
        prop_assert!(bigger.p_hole_per_l2_miss() < p || p == 0.0);
    }

    #[test]
    fn predictor_locks_onto_any_affine_stream(
        base in any::<u32>(), stride in -4096i64..4096, pc in any::<u32>()
    ) {
        let mut p = AddressPredictor::new(256).unwrap();
        let base = u64::from(base);
        let mut last = Outcome::NotConfident;
        for i in 0..8 {
            let addr = base.wrapping_add_signed(stride * i);
            last = p.observe(u64::from(pc), addr);
        }
        prop_assert_eq!(last, Outcome::ConfidentCorrect);
    }

    #[test]
    fn predictor_stats_are_consistent(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut p = AddressPredictor::new(64).unwrap();
        for (i, &a) in addrs.iter().enumerate() {
            p.observe((i as u64 % 32) * 4, u64::from(a));
        }
        let s = p.stats();
        prop_assert_eq!(s.observations, addrs.len() as u64);
        prop_assert!(s.confident_correct <= s.confident);
        prop_assert!(s.confident_correct <= s.raw_correct);
        prop_assert!(s.usable_rate() <= 1.0);
    }
}

//! Analytical model of *holes* (§3.3, equations (vii)–(ix)).
//!
//! In a two-level virtual-real hierarchy the L1 index is a pseudo-random
//! function of the virtual address while the L2 index is a (different)
//! pseudo-random function of the physical address, so the two indices are
//! uncorrelated. When L2 replaces a line, Inclusion demands invalidating
//! any L1 copy — creating a *hole* at L1 that a conventionally-indexed
//! hierarchy would not have. This module computes the paper's probability
//! model for that effect; `cac-sim`'s two-level hierarchy measures it.

use crate::error::Error;
use crate::geometry::CacheGeometry;

/// Hole-probability model for a direct-mapped L1/L2 pair with
/// uncorrelated pseudo-random index functions.
///
/// `m1` and `m2` are the number of index bits at L1 and L2 (equivalently
/// `log2` of the line counts under the paper's direct-mapped assumption).
///
/// # Example — the paper's worked example
///
/// ```
/// use cac_core::holes::HoleModel;
///
/// // 8KB L1, 256KB L2, 32-byte lines.
/// let model = HoleModel::from_line_counts(256, 8192)?;
/// assert!((model.p_hole_per_l2_miss() - 0.031).abs() < 0.001);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoleModel {
    m1: u32,
    m2: u32,
}

impl HoleModel {
    /// Builds the model from index-bit counts `m1` (L1) and `m2` (L2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if `m1 > m2` (L1 larger than L2
    /// violates the premise of the model) or if either exceeds 60 (the
    /// arithmetic would lose all precision in `f64`).
    pub fn from_index_bits(m1: u32, m2: u32) -> Result<Self, Error> {
        if m1 > m2 {
            return Err(Error::OutOfRange {
                what: "L1 index bits",
                value: u64::from(m1),
                constraint: "<= L2 index bits",
            });
        }
        if m2 > 60 {
            return Err(Error::OutOfRange {
                what: "L2 index bits",
                value: u64::from(m2),
                constraint: "<= 60",
            });
        }
        Ok(HoleModel { m1, m2 })
    }

    /// Builds the model from the total line counts of the two caches
    /// (must be powers of two).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] for non-power-of-two counts, plus
    /// the range checks of [`HoleModel::from_index_bits`].
    pub fn from_line_counts(l1_lines: u64, l2_lines: u64) -> Result<Self, Error> {
        for (what, v) in [("L1 lines", l1_lines), ("L2 lines", l2_lines)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(Error::NotPowerOfTwo { what, value: v });
            }
        }
        Self::from_index_bits(l1_lines.trailing_zeros(), l2_lines.trailing_zeros())
    }

    /// Builds the model from cache geometries, using total line counts
    /// (the direct-mapped-equivalent index the paper's derivation assumes).
    ///
    /// # Errors
    ///
    /// Propagates the checks of [`HoleModel::from_line_counts`].
    pub fn from_geometries(l1: CacheGeometry, l2: CacheGeometry) -> Result<Self, Error> {
        Self::from_line_counts(u64::from(l1.num_blocks()), u64::from(l2.num_blocks()))
    }

    /// Equation (vii): probability that a line replaced at L2 is also
    /// present in L1, `P_r = 2^(m1 − m2)`.
    pub fn p_replaced_line_in_l1(&self) -> f64 {
        (self.m1 as f64 - self.m2 as f64).exp2()
    }

    /// Equation (viii): probability that invalidating the L1 copy creates
    /// a hole (the victim's L1 slot is not coincidentally the slot being
    /// refilled), `P_d = (2^m1 − 1)/2^m1`.
    pub fn p_distinct_slot(&self) -> f64 {
        let n = (self.m1 as f64).exp2();
        (n - 1.0) / n
    }

    /// Equation (ix): net probability that an L2 miss creates a hole at
    /// L1, `P_H = P_d · P_r = (2^m1 − 1)/2^m2`.
    pub fn p_hole_per_l2_miss(&self) -> f64 {
        self.p_distinct_slot() * self.p_replaced_line_in_l1()
    }

    /// The paper's estimate of the *extra* L1 miss ratio caused by holes:
    /// `P_H × (L2 miss ratio)`. The paper notes this approximation is
    /// accurate for L2:L1 size ratios of 16 or more.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `l2_miss_ratio` is outside `[0, 1]`.
    pub fn expected_extra_l1_miss_ratio(&self, l2_miss_ratio: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&l2_miss_ratio));
        self.p_hole_per_l2_miss() * l2_miss_ratio
    }

    /// L1 index bits `m1`.
    pub fn m1(&self) -> u32 {
        self.m1
    }

    /// L2 index bits `m2`.
    pub fn m2(&self) -> u32 {
        self.m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // 8KB/256KB with 32-byte lines: m1 = 8, m2 = 13, P_H ≈ 0.0311.
        let m = HoleModel::from_line_counts(256, 8192).unwrap();
        assert_eq!(m.m1(), 8);
        assert_eq!(m.m2(), 13);
        assert!((m.p_hole_per_l2_miss() - 255.0 / 8192.0).abs() < 1e-12);
        assert!((m.p_hole_per_l2_miss() - 0.031).abs() < 1e-3);
    }

    #[test]
    fn component_probabilities() {
        let m = HoleModel::from_index_bits(8, 13).unwrap();
        assert!((m.p_replaced_line_in_l1() - 1.0 / 32.0).abs() < 1e-12);
        assert!((m.p_distinct_slot() - 255.0 / 256.0).abs() < 1e-12);
        let product = m.p_replaced_line_in_l1() * m.p_distinct_slot();
        assert!((m.p_hole_per_l2_miss() - product).abs() < 1e-15);
    }

    #[test]
    fn from_geometries_matches_line_counts() {
        let l1 = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        let l2 = CacheGeometry::new(256 * 1024, 32, 1).unwrap();
        let a = HoleModel::from_geometries(l1, l2).unwrap();
        let b = HoleModel::from_line_counts(256, 8192).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_l2_means_fewer_holes() {
        // The paper's 1MB-L2 simulation saw <0.1% of misses create holes
        // on average; the model gives an upper-bound flavour of that trend.
        let small = HoleModel::from_line_counts(256, 8192).unwrap();
        let big = HoleModel::from_line_counts(256, 32768).unwrap();
        assert!(big.p_hole_per_l2_miss() < small.p_hole_per_l2_miss());
        assert!(big.p_hole_per_l2_miss() < 0.01);
    }

    #[test]
    fn equal_sizes_upper_bound() {
        let m = HoleModel::from_index_bits(8, 8).unwrap();
        assert!(m.p_hole_per_l2_miss() < 1.0);
        assert!((m.p_hole_per_l2_miss() - 255.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn extra_miss_ratio_scales_with_l2_misses() {
        let m = HoleModel::from_index_bits(8, 13).unwrap();
        assert_eq!(m.expected_extra_l1_miss_ratio(0.0), 0.0);
        let x = m.expected_extra_l1_miss_ratio(0.10);
        assert!((x - 0.1 * m.p_hole_per_l2_miss()).abs() < 1e-15);
    }

    #[test]
    fn validation() {
        assert!(HoleModel::from_index_bits(14, 8).is_err());
        assert!(HoleModel::from_index_bits(8, 61).is_err());
        assert!(HoleModel::from_line_counts(100, 8192).is_err());
        assert!(HoleModel::from_line_counts(0, 8192).is_err());
    }
}

//! General XOR-scheme placement — Frailong, Jalby & Lenfant [5].
//!
//! The most general *linear* placement over GF(2): the set index is
//! `M_w · a`, where `a` is the vector of low block-address bits and `M_w`
//! an `m × v` bit-matrix (one per way when skewed). Every other linear
//! scheme in this module tree — conventional modulo, two-field XOR, and
//! I-Poly itself — is a special case of this map; the paper's §2.1 credits
//! Frailong *et al.* with introducing the family for parallel memories.
//!
//! The matrices generated here have the form `[I_m | R_w]`: the identity on
//! the conventional index field plus a random mixing block over the
//! tag-side bits. This guarantees balance (for any fixed tag the map is a
//! bijection on the sets) while the random `R_w` decorrelates tag bits.
//! What the construction does *not* give is I-Poly's provable
//! stride-insensitivity — with probability `2^-m` a pair of tags collides,
//! and nothing rules out a regular stride hitting such a pair. The
//! [`XorMatrixIndex::matrix`] accessor exposes the map so tests and
//! experiments can check rank conditions with [`cac_gf2::BitMatrix`].

use crate::error::Error;
use crate::geometry::CacheGeometry;
use crate::index::prng::SplitMix64;
use crate::index::{IndexFunction, PAPER_ADDRESS_BITS};
use cac_gf2::BitMatrix;

/// General GF(2) linear placement: `set = M_w · block_addr_bits`.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, XorMatrixIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = XorMatrixIndex::random(geom, true, 42)?;
/// assert!(f.set_index(0xdead_beef, 1) < 128);
/// // The map is exposed as an explicit matrix for analysis:
/// assert_eq!(f.matrix(0).rank(), 7); // surjective by construction
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct XorMatrixIndex {
    /// One matrix per way (all ways share matrix 0 when not skewed).
    matrices: Vec<BitMatrix>,
    input_bits: u32,
    input_mask: u64,
    sets: u32,
    ways: u32,
    skewed: bool,
}

impl XorMatrixIndex {
    /// Builds a placement from explicit matrices (one per way if skewed,
    /// exactly one otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadPolynomial`] (the shared "bad linear map"
    /// error) if the matrix count is wrong, shapes disagree with the
    /// geometry, or any matrix is not surjective (rank < `m` — some sets
    /// would be unreachable).
    pub fn from_matrices(
        geom: CacheGeometry,
        matrices: Vec<BitMatrix>,
        skewed: bool,
    ) -> Result<Self, Error> {
        let m = geom.index_bits();
        let expected = if skewed { geom.ways() as usize } else { 1 };
        if matrices.len() != expected {
            return Err(Error::BadPolynomial {
                reason: format!(
                    "expected {expected} matrices for {} ways (skewed = {skewed}), got {}",
                    geom.ways(),
                    matrices.len()
                ),
            });
        }
        let input_bits = matrices[0].num_cols();
        for (i, mat) in matrices.iter().enumerate() {
            if mat.num_rows() != m {
                return Err(Error::BadPolynomial {
                    reason: format!(
                        "matrix {i} has {} rows, geometry needs {m} index bits",
                        mat.num_rows()
                    ),
                });
            }
            if mat.num_cols() != input_bits {
                return Err(Error::BadPolynomial {
                    reason: format!(
                        "matrix {i} has {} columns, matrix 0 has {input_bits}",
                        mat.num_cols()
                    ),
                });
            }
            if mat.rank() < m {
                return Err(Error::BadPolynomial {
                    reason: format!(
                        "matrix {i} has rank {} < {m}: some sets are unreachable",
                        mat.rank()
                    ),
                });
            }
        }
        let input_mask = if input_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << input_bits) - 1
        };
        Ok(XorMatrixIndex {
            matrices,
            input_bits,
            input_mask,
            sets: geom.num_sets(),
            ways: geom.ways(),
            skewed,
        })
    }

    /// Builds a placement with random `[I_m | R_w]` matrices over the
    /// paper-default address budget ([`PAPER_ADDRESS_BITS`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if the budget leaves no tag-side bits
    /// (`address_bits <= offset + m`) — the scheme would degenerate to
    /// conventional placement.
    pub fn random(geom: CacheGeometry, skewed: bool, seed: u64) -> Result<Self, Error> {
        Self::random_with_address_bits(geom, skewed, seed, PAPER_ADDRESS_BITS)
    }

    /// Builds a placement with random `[I_m | R_w]` matrices over an
    /// explicit low-address-bit budget.
    ///
    /// # Errors
    ///
    /// See [`XorMatrixIndex::random`].
    pub fn random_with_address_bits(
        geom: CacheGeometry,
        skewed: bool,
        seed: u64,
        address_bits: u32,
    ) -> Result<Self, Error> {
        let m = geom.index_bits();
        let spent = geom.offset_bits() + m;
        if address_bits <= spent {
            return Err(Error::OutOfRange {
                what: "address bits",
                value: u64::from(address_bits),
                constraint: "> offset bits + index bits",
            });
        }
        let input_bits = (address_bits - geom.offset_bits()).min(64);
        let tag_bits = input_bits - m;
        let mut rng = SplitMix64::new(seed);
        let num_matrices = if skewed { geom.ways() as usize } else { 1 };
        let matrices = (0..num_matrices)
            .map(|_| {
                let rows = (0..m)
                    .map(|r| {
                        // Identity on the index field plus random tag-side
                        // mixing bits.
                        let mix = if tag_bits >= 64 {
                            rng.next_u64()
                        } else {
                            rng.next_u64() & ((1u64 << tag_bits) - 1)
                        };
                        (1u64 << r) | (mix << m)
                    })
                    .collect();
                BitMatrix::from_rows(rows, input_bits)
            })
            .collect();
        Self::from_matrices(geom, matrices, skewed)
    }

    /// The linear map used by `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways()`.
    pub fn matrix(&self, way: u32) -> &BitMatrix {
        assert!(way < self.ways, "way {way} out of range");
        if self.skewed {
            &self.matrices[way as usize]
        } else {
            &self.matrices[0]
        }
    }

    /// Number of low block-address bits the map consumes.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }
}

impl IndexFunction for XorMatrixIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        self.matrix(way).apply(block_addr & self.input_mask) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Hxm-Sk", self.ways)
        } else {
            format!("a{}-Hxm", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        self.input_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn random_matrices_are_identity_plus_mix() {
        let f = XorMatrixIndex::random(geom(), false, 1).unwrap();
        let mat = f.matrix(0);
        assert_eq!(mat.num_rows(), 7);
        assert_eq!(mat.num_cols(), 14); // 19 - 5 offset bits
        for r in 0..7 {
            for c in 0..7 {
                assert_eq!(mat.get(r, c), u8::from(r == c), "identity block");
            }
        }
    }

    #[test]
    fn balanced_for_fixed_tag() {
        let f = XorMatrixIndex::random(geom(), true, 2).unwrap();
        for way in 0..2 {
            for tag in [0u64, 3, 99] {
                let seen: std::collections::HashSet<_> = (0..128u64)
                    .map(|f0| f.set_index((tag << 7) | f0, way))
                    .collect();
                assert_eq!(seen.len(), 128);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = XorMatrixIndex::random(geom(), true, 7).unwrap();
        let b = XorMatrixIndex::random(geom(), true, 7).unwrap();
        for ba in 0..2048u64 {
            for w in 0..2 {
                assert_eq!(a.set_index(ba, w), b.set_index(ba, w));
            }
        }
    }

    #[test]
    fn subsumes_conventional_modulo() {
        // M = [I | 0] is exactly conventional placement.
        let mat = {
            let rows = (0..7).map(|r| 1u64 << r).collect();
            BitMatrix::from_rows(rows, 14)
        };
        let f = XorMatrixIndex::from_matrices(geom(), vec![mat], false).unwrap();
        for ba in 0..4096u64 {
            assert_eq!(f.set_index(ba, 0), (ba & 127) as u32);
        }
    }

    #[test]
    fn rejects_rank_deficient_matrix() {
        let mut rows: Vec<u64> = (0..7).map(|r| 1u64 << r).collect();
        rows[6] = rows[5]; // duplicate row: rank 6
        let mat = BitMatrix::from_rows(rows, 14);
        let err = XorMatrixIndex::from_matrices(geom(), vec![mat], false).unwrap_err();
        assert!(err.to_string().contains("rank"));
    }

    #[test]
    fn rejects_wrong_shapes_and_counts() {
        let ok = BitMatrix::identity(7);
        // Skewed needs one matrix per way.
        assert!(XorMatrixIndex::from_matrices(geom(), vec![ok.clone()], true).is_err());
        // Wrong row count.
        let bad = BitMatrix::identity(6);
        assert!(XorMatrixIndex::from_matrices(geom(), vec![bad], false).is_err());
        // Mismatched column counts across ways.
        let a = BitMatrix::identity(7);
        let mut b_rows: Vec<u64> = (0..7).map(|r| 1u64 << r).collect();
        b_rows[0] |= 1 << 8;
        let b = BitMatrix::from_rows(b_rows, 14);
        assert!(XorMatrixIndex::from_matrices(geom(), vec![a, b], true).is_err());
    }

    #[test]
    fn rejects_degenerate_budget() {
        let err = XorMatrixIndex::random_with_address_bits(geom(), false, 0, 12).unwrap_err();
        assert!(matches!(err, Error::OutOfRange { .. }));
    }

    #[test]
    fn spreads_power_of_two_column_stride() {
        let f = XorMatrixIndex::random(geom(), false, 11).unwrap();
        let seen: std::collections::HashSet<_> =
            (0..64u64).map(|i| f.set_index(i * 128, 0)).collect();
        assert!(seen.len() > 32, "random mixing should spread the stride");
    }

    #[test]
    fn labels() {
        assert_eq!(
            XorMatrixIndex::random(geom(), false, 0).unwrap().label(),
            "a2-Hxm"
        );
        assert_eq!(
            XorMatrixIndex::random(geom(), true, 0).unwrap().label(),
            "a2-Hxm-Sk"
        );
    }
}

//! LUT compilation of placement functions.
//!
//! Every placement scheme in this workspace is (or degrades to) a pure
//! function of the low `v` block-address bits — the paper's §3.4 uses
//! `v ≤ 19` address bits throughout. [`IndexTable`] exploits that: at
//! cache-construction time the scheme is *compiled* into one flat lookup
//! table per distinct way, reducing the per-access `set_index` to a single
//! bounds-checked load with no dynamic dispatch, no mask/popcount loop and
//! no per-way branching.
//!
//! Schemes that inspect every address bit (the prime-modulus baseline) or
//! whose input width exceeds [`IndexTable::MAX_TABLE_BITS`] keep the
//! original computed path behind the same API, so a compiled table is
//! always safe to substitute for the function it was built from.
//!
//! Entries are stored as `u16` when the set count allows it (it almost
//! always does) and `u32` otherwise, keeping the hot table small enough to
//! live in L1/L2 of the *host* machine.

use crate::index::IndexFunction;
use std::sync::Arc;

/// Flat per-way lookup tables compiled from an [`IndexFunction`].
///
/// `set_index` is behaviourally identical to the source function for
/// every block address and way — including functions too wide to
/// tabulate, which transparently fall back to the computed path.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = IndexSpec::ipoly_skewed().build(geom)?;
/// let t = cac_core::index::IndexTable::compile(f.clone());
/// assert!(t.is_compiled());
/// for ba in [0u64, 0x3fff, 0xdead_beef] {
///     for w in 0..2 {
///         assert_eq!(t.set_index(ba, w), f.set_index(ba, w));
///     }
/// }
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndexTable {
    num_sets: u32,
    ways: u32,
    /// Low block-address bits covered by the table.
    table_bits: u32,
    /// `(1 << table_bits) - 1`.
    mask: u64,
    /// Entries per way in `storage`; 0 when all ways share one table
    /// (non-skewed placements), so the way term vanishes from the load.
    way_stride: usize,
    storage: Storage,
    /// The computed path, kept only when the source function inspects
    /// bits the table does not cover.
    fallback: Option<Arc<dyn IndexFunction>>,
}

#[derive(Debug, Clone)]
enum Storage {
    U16(Vec<u16>),
    U32(Vec<u32>),
}

impl IndexTable {
    /// Widest input (in block-address bits) that is compiled into a
    /// table: 2^20 entries per distinct way (2 MiB as `u16`). Wider
    /// functions keep the computed path.
    pub const MAX_TABLE_BITS: u32 = 20;

    /// Compiles `f` into lookup tables (or wraps it unchanged when its
    /// [`input_bits`](IndexFunction::input_bits) exceed
    /// [`MAX_TABLE_BITS`](IndexTable::MAX_TABLE_BITS)).
    pub fn compile(f: Arc<dyn IndexFunction>) -> Self {
        let num_sets = f.num_sets();
        let ways = f.ways();
        let input_bits = f.input_bits();
        if input_bits > Self::MAX_TABLE_BITS {
            return IndexTable {
                num_sets,
                ways,
                table_bits: 0,
                mask: 0,
                way_stride: 0,
                storage: Storage::U16(Vec::new()),
                fallback: Some(f),
            };
        }
        let table_bits = input_bits;
        let entries = 1usize << table_bits;
        let distinct_ways = if f.is_skewed() { ways as usize } else { 1 };
        let mut raw = vec![0u32; entries * distinct_ways];
        for w in 0..distinct_ways {
            f.fill_table(w as u32, &mut raw[w * entries..(w + 1) * entries]);
        }
        let storage = if num_sets <= 1 + u32::from(u16::MAX) {
            Storage::U16(raw.iter().map(|&s| s as u16).collect())
        } else {
            Storage::U32(raw)
        };
        IndexTable {
            num_sets,
            ways,
            table_bits,
            mask: (1u64 << table_bits) - 1,
            way_stride: if distinct_ways > 1 { entries } else { 0 },
            storage,
            fallback: None,
        }
    }

    /// The set index of `block_addr` in `way` — a single table load for
    /// compiled functions.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways()` (via the bounds check on the load).
    #[inline]
    pub fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        debug_assert!(way < self.ways, "way {way} out of range");
        if let Some(f) = &self.fallback {
            return f.set_index(block_addr, way);
        }
        let i = self.way_stride * way as usize + (block_addr & self.mask) as usize;
        match &self.storage {
            Storage::U16(t) => u32::from(t[i]),
            Storage::U32(t) => t[i],
        }
    }

    /// Number of sets the table indexes into.
    #[inline]
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Number of ways the table was compiled for.
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// `true` when lookups are table loads; `false` when the source
    /// function was too wide and kept its computed path.
    pub fn is_compiled(&self) -> bool {
        self.fallback.is_none()
    }

    /// Low block-address bits covered by the table (0 for an uncompiled
    /// function).
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// Bytes of table storage.
    pub fn storage_bytes(&self) -> usize {
        match &self.storage {
            Storage::U16(t) => t.len() * 2,
            Storage::U32(t) => t.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::index::IndexSpec;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    fn addresses() -> Vec<u64> {
        let mut v: Vec<u64> = (0u64..512).collect();
        v.extend((0..64).map(|i| i * 8191 + 12345));
        v.extend([u64::MAX, u64::MAX >> 5, 1 << 40, (1 << 19) - 1, 1 << 19]);
        v
    }

    #[test]
    fn compiled_table_agrees_with_source_for_all_specs() {
        for spec in [
            IndexSpec::modulo(),
            IndexSpec::xor(),
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime(),
            IndexSpec::prime_skewed(),
            IndexSpec::add_skew(),
            IndexSpec::add_skew_skewed(),
            IndexSpec::rand_table(),
            IndexSpec::rand_table_skewed(),
            IndexSpec::xor_matrix(),
            IndexSpec::xor_matrix_skewed(),
        ] {
            let f = spec.build(geom()).unwrap();
            let t = IndexTable::compile(f.clone());
            for ba in addresses() {
                for w in 0..2 {
                    assert_eq!(t.set_index(ba, w), f.set_index(ba, w), "{spec} ba={ba:#x}");
                }
            }
        }
    }

    #[test]
    fn prime_keeps_computed_path() {
        let f = IndexSpec::prime().build(geom()).unwrap();
        let t = IndexTable::compile(f);
        assert!(!t.is_compiled());
        assert_eq!(t.table_bits(), 0);
    }

    #[test]
    fn non_skewed_functions_share_one_table() {
        let f = IndexSpec::ipoly().build(geom()).unwrap();
        let skewed = IndexSpec::ipoly_skewed().build(geom()).unwrap();
        let t = IndexTable::compile(f);
        let ts = IndexTable::compile(skewed);
        assert!(t.is_compiled() && ts.is_compiled());
        assert_eq!(ts.storage_bytes(), 2 * t.storage_bytes());
    }

    #[test]
    fn u16_storage_for_normal_sets() {
        let f = IndexSpec::ipoly_skewed().build(geom()).unwrap();
        let t = IndexTable::compile(f);
        // 14 input bits, 2 ways, u16 entries.
        assert_eq!(t.storage_bytes(), 2 * (1 << 14) * 2);
        assert_eq!(t.num_sets(), 128);
        assert_eq!(t.ways(), 2);
    }

    #[test]
    fn degenerate_single_set_compiles() {
        let g = CacheGeometry::fully_associative(1024, 32).unwrap();
        let f = IndexSpec::ipoly_skewed().build(g).unwrap();
        let t = IndexTable::compile(f);
        assert!(t.is_compiled());
        for ba in addresses() {
            assert_eq!(t.set_index(ba, 0), 0);
        }
    }
}

//! Prime-modulus placement — the Lawrie–Vora scheme [16].
//!
//! The paper's related-work survey (§2.1) lists the *prime memory system*
//! of Lawrie and Vora as one of the bank-selection functions known to
//! reduce conflicts in interleaved memories: select a bank (here: a cache
//! set) as the address modulo a prime. A prime modulus has no small
//! factors in common with any array stride, so only strides that are
//! multiples of the prime itself are pathological.
//!
//! The cost, faithfully modelled here, is that a cache with `2^m` physical
//! sets can only use the largest prime `p <= 2^m` of them: `2^m - p` sets
//! are never indexed (for 128 sets, one set is wasted since `p = 127`).
//! Real designs also need a hardware modulo-by-prime unit, which is far
//! more expensive than the XOR tree the paper advocates — this module
//! exists as a *baseline*, not a recommendation.

use crate::geometry::CacheGeometry;
use crate::index::IndexFunction;

/// Largest prime less than or equal to `n` (`n >= 2`).
fn largest_prime_at_most(n: u32) -> u32 {
    fn is_prime(v: u32) -> bool {
        if v < 2 {
            return false;
        }
        if v.is_multiple_of(2) {
            return v == 2;
        }
        let mut d = 3u32;
        while (d as u64) * (d as u64) <= v as u64 {
            if v.is_multiple_of(d) {
                return false;
            }
            d += 2;
        }
        true
    }
    debug_assert!(n >= 2);
    (2..=n).rev().find(|&v| is_prime(v)).expect("n >= 2")
}

/// Prime-modulus placement: the set index is `block_addr mod p` for the
/// largest prime `p` not exceeding the set count.
///
/// With `skewed = true`, way `w` uses `(block_addr * (w + 1)) mod p`;
/// multiplication by a non-zero constant is a bijection modulo a prime, so
/// each way sees a distinct but equally uniform placement.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, PrimeModIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = PrimeModIndex::new(geom, false);
/// assert_eq!(f.prime(), 127); // largest prime <= 128 sets
/// // A power-of-two stride no longer repeats with a power-of-two period:
/// assert_ne!(f.set_index(0, 0), f.set_index(128, 0));
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrimeModIndex {
    prime: u32,
    sets: u32,
    ways: u32,
    skewed: bool,
}

impl PrimeModIndex {
    /// Builds the prime-modulus placement for a geometry.
    ///
    /// A geometry with a single set (fully associative) degenerates to the
    /// constant index 0.
    pub fn new(geom: CacheGeometry, skewed: bool) -> Self {
        let sets = geom.num_sets();
        let prime = if sets >= 2 {
            largest_prime_at_most(sets)
        } else {
            1
        };
        PrimeModIndex {
            prime,
            sets,
            ways: geom.ways(),
            skewed,
        }
    }

    /// The prime modulus actually in use (`<= num_sets`).
    pub fn prime(&self) -> u32 {
        self.prime
    }

    /// Number of physical sets this placement can never select
    /// (`num_sets - p`); the capacity cost of the scheme.
    pub fn wasted_sets(&self) -> u32 {
        self.sets - self.prime
    }
}

impl IndexFunction for PrimeModIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        assert!(way < self.ways, "way {way} out of range");
        if self.prime <= 1 {
            return 0;
        }
        let base = block_addr % u64::from(self.prime);
        if self.skewed {
            // (base * (way+1)) mod p — exact in u64 since both factors
            // are < 2^32.
            ((base * u64::from(way + 1)) % u64::from(self.prime)) as u32
        } else {
            base as u32
        }
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Hpr-Sk", self.ways)
        } else {
            format!("a{}-Hpr", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        // A modulus that is not a power of two inspects every address bit;
        // LUT compilation must keep the computed path for this scheme.
        if self.prime <= 1 {
            0
        } else {
            64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn largest_primes() {
        assert_eq!(largest_prime_at_most(2), 2);
        assert_eq!(largest_prime_at_most(3), 3);
        assert_eq!(largest_prime_at_most(4), 3);
        assert_eq!(largest_prime_at_most(128), 127);
        assert_eq!(largest_prime_at_most(256), 251);
        assert_eq!(largest_prime_at_most(1024), 1021);
    }

    #[test]
    fn paper_geometry_uses_127() {
        let f = PrimeModIndex::new(geom(), false);
        assert_eq!(f.prime(), 127);
        assert_eq!(f.wasted_sets(), 1);
    }

    #[test]
    fn indices_below_prime() {
        let f = PrimeModIndex::new(geom(), true);
        for ba in [0u64, 1, 127, 128, 0xdead_beef, u64::MAX] {
            for w in 0..2 {
                assert!(f.set_index(ba, w) < 127);
            }
        }
    }

    #[test]
    fn power_of_two_strides_do_not_repeat_with_short_period() {
        // Under modulo-2^m, stride 128 (blocks) visits one set forever.
        // Under modulo-127 it cycles through all 127 residues.
        let f = PrimeModIndex::new(geom(), false);
        let mut seen = std::collections::HashSet::new();
        for i in 0..127u64 {
            seen.insert(f.set_index(i * 128, 0));
        }
        assert_eq!(seen.len(), 127, "stride 128 should visit every residue");
    }

    #[test]
    fn multiples_of_prime_are_pathological() {
        // The one stride family the scheme cannot fix: multiples of p.
        let f = PrimeModIndex::new(geom(), false);
        let s0 = f.set_index(0, 0);
        for i in 1..50u64 {
            assert_eq!(f.set_index(i * 127, 0), s0);
        }
    }

    #[test]
    fn skewed_ways_are_distinct_bijections() {
        let f = PrimeModIndex::new(geom(), true);
        let mut differs = false;
        let mut seen0 = std::collections::HashSet::new();
        let mut seen1 = std::collections::HashSet::new();
        for ba in 0..127u64 {
            let (a, b) = (f.set_index(ba, 0), f.set_index(ba, 1));
            differs |= a != b;
            seen0.insert(a);
            seen1.insert(b);
        }
        assert!(differs);
        assert_eq!(seen0.len(), 127, "way 0 must be a bijection on 0..p");
        assert_eq!(seen1.len(), 127, "way 1 must be a bijection on 0..p");
    }

    #[test]
    fn degenerate_single_set() {
        let g = CacheGeometry::fully_associative(1024, 32).unwrap();
        let f = PrimeModIndex::new(g, false);
        assert_eq!(f.set_index(12345, 0), 0);
        assert_eq!(f.wasted_sets(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(PrimeModIndex::new(geom(), false).label(), "a2-Hpr");
        assert_eq!(PrimeModIndex::new(geom(), true).label(), "a2-Hpr-Sk");
    }
}

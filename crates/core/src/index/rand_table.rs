//! Table-driven pseudo-random placement — the Raghavan–Hayes scheme [17].
//!
//! The related-work survey (§2.1) cites *randomly interleaved memories*:
//! bank selection through a genuinely (pseudo-)random hash of the address,
//! realised in hardware as a small lookup table of random values. This
//! module implements the cache-index analogue: the conventional index
//! field is XOR-ed with a random value selected by the *tag-side* bits,
//!
//! `set = T_w[F1] ^ F0`
//!
//! where `F0` is the low `m` bits of the block address, `F1` the next `t`
//! bits, and `T_w` a table of `2^t` random `m`-bit values (per way when
//! skewed). XOR-ing with `F0` keeps the map balanced — for any fixed `F1`
//! it is a bijection on the sets — while the table decorrelates the
//! tag-side bits. Unlike I-Poly the scheme has no algebraic stride
//! guarantee; two tag fields can collide with probability `2^-m` per pair,
//! which is exactly the behaviour Rau's polynomial construction was
//! designed to improve on.

use crate::geometry::CacheGeometry;
use crate::index::prng::SplitMix64;
use crate::index::{IndexFunction, PAPER_ADDRESS_BITS};

/// Table-driven pseudo-random placement (`T_w[F1] ^ F0`).
///
/// The table input width is derived from the address-bit budget the same
/// way as the I-Poly scheme: of the low `v` address bits, the block offset
/// and the `m` index bits are consumed, and the remaining
/// `t = v - offset - m` bits select a table entry (capped at 14 bits /
/// 16K entries to bound the "hardware" cost).
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, RandTableIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = RandTableIndex::new(geom, true, 42);
/// assert_eq!(f.table_bits(), 7); // 19 - 5 offset - 7 index
/// assert!(f.set_index(0xdead_beef, 0) < 128);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandTableIndex {
    /// One table per way (all ways share table 0 when not skewed).
    tables: Vec<Vec<u32>>,
    table_bits: u32,
    index_bits: u32,
    mask: u64,
    sets: u32,
    ways: u32,
    skewed: bool,
    seed: u64,
}

impl RandTableIndex {
    /// Maximum table input width: 16K entries.
    const MAX_TABLE_BITS: u32 = 14;

    /// Builds the placement with the paper-default address budget
    /// ([`PAPER_ADDRESS_BITS`]).
    pub fn new(geom: CacheGeometry, skewed: bool, seed: u64) -> Self {
        Self::with_address_bits(geom, skewed, seed, PAPER_ADDRESS_BITS)
    }

    /// Builds the placement with an explicit low-address-bit budget.
    ///
    /// A budget that leaves no tag-side bits (`address_bits <= offset +
    /// index`) degenerates to conventional modulo placement (the table has
    /// a single entry).
    pub fn with_address_bits(
        geom: CacheGeometry,
        skewed: bool,
        seed: u64,
        address_bits: u32,
    ) -> Self {
        let m = geom.index_bits();
        let spent = geom.offset_bits() + m;
        let table_bits = address_bits.saturating_sub(spent).min(Self::MAX_TABLE_BITS);
        let num_ways = geom.ways();
        let num_tables = if skewed { num_ways as usize } else { 1 };
        let entries = 1usize << table_bits;
        let sets = geom.num_sets();

        let mut rng = SplitMix64::new(seed);
        let tables = (0..num_tables)
            .map(|_| {
                (0..entries)
                    .map(|_| rng.next_below(u64::from(sets)) as u32)
                    .collect()
            })
            .collect();

        RandTableIndex {
            tables,
            table_bits,
            index_bits: m,
            mask: u64::from(sets - 1),
            sets,
            ways: num_ways,
            skewed,
            seed,
        }
    }

    /// Width of the table input field in bits.
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// Number of random-table entries per way.
    pub fn table_entries(&self) -> usize {
        1 << self.table_bits
    }

    /// The seed the tables were generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl IndexFunction for RandTableIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        assert!(way < self.ways, "way {way} out of range");
        let f0 = block_addr & self.mask;
        let f1 = (block_addr >> self.index_bits) & ((1u64 << self.table_bits) - 1);
        let table = if self.skewed {
            &self.tables[way as usize]
        } else {
            &self.tables[0]
        };
        (u64::from(table[f1 as usize]) ^ f0) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Hr-Sk", self.ways)
        } else {
            format!("a{}-Hr", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        self.index_bits + self.table_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn paper_budget_gives_seven_table_bits() {
        let f = RandTableIndex::new(geom(), false, 1);
        assert_eq!(f.table_bits(), 7);
        assert_eq!(f.table_entries(), 128);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RandTableIndex::new(geom(), true, 99);
        let b = RandTableIndex::new(geom(), true, 99);
        let c = RandTableIndex::new(geom(), true, 100);
        let mut diff_c = false;
        for ba in 0..4096u64 {
            for w in 0..2 {
                assert_eq!(a.set_index(ba, w), b.set_index(ba, w));
                diff_c |= a.set_index(ba, w) != c.set_index(ba, w);
            }
        }
        assert!(diff_c, "different seeds should give different tables");
    }

    #[test]
    fn balanced_for_fixed_tag_field() {
        // With F1 fixed, the map F0 -> T[F1] ^ F0 is a bijection.
        let f = RandTableIndex::new(geom(), false, 3);
        for f1 in [0u64, 1, 77] {
            let seen: std::collections::HashSet<_> = (0..128u64)
                .map(|f0| f.set_index((f1 << 7) | f0, 0))
                .collect();
            assert_eq!(seen.len(), 128);
        }
    }

    #[test]
    fn breaks_power_of_two_column_stride() {
        // Stride of exactly one cache-of-sets (128 blocks): conventional
        // placement pins every access to one set; the random table spreads
        // them.
        let f = RandTableIndex::new(geom(), false, 5);
        let seen: std::collections::HashSet<_> =
            (0..64u64).map(|i| f.set_index(i * 128, 0)).collect();
        assert!(seen.len() > 32, "random table should spread the stride");
    }

    #[test]
    fn beyond_table_reach_is_pathological() {
        // Strides that change only bits above offset+index+table_bits are
        // invisible to the hash — the structural limit of a finite table.
        let f = RandTableIndex::new(geom(), false, 5);
        let stride = 1u64 << 14; // block-addr bits above 7 + 7
        let s0 = f.set_index(9, 0);
        for i in 1..32 {
            assert_eq!(f.set_index(9 + i * stride, 0), s0);
        }
    }

    #[test]
    fn degenerate_budget_is_conventional() {
        let f = RandTableIndex::with_address_bits(geom(), false, 7, 12);
        assert_eq!(f.table_bits(), 0);
        // One table entry XORed into F0: a fixed permutation of the sets,
        // i.e. conventional placement up to renaming.
        let t0 = f.set_index(0, 0);
        for f0 in 0..128u64 {
            assert_eq!(f.set_index(f0, 0), t0 ^ f0 as u32);
        }
    }

    #[test]
    fn skewed_tables_differ() {
        let f = RandTableIndex::new(geom(), true, 17);
        let differs = (0..4096u64).any(|ba| f.set_index(ba, 0) != f.set_index(ba, 1));
        assert!(differs);
    }

    #[test]
    fn labels() {
        assert_eq!(RandTableIndex::new(geom(), false, 0).label(), "a2-Hr");
        assert_eq!(RandTableIndex::new(geom(), true, 0).label(), "a2-Hr-Sk");
    }
}

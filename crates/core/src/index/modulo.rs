//! Conventional modulo power-of-two placement — the paper's `a2` baseline.

use crate::geometry::CacheGeometry;
use crate::index::IndexFunction;

/// Conventional cache indexing: the set index is the low `m` bits of the
/// block address.
///
/// This is the placement whose weakness motivates the paper (§2): addresses
/// `A1`, `A2` collide whenever `⌊A1/B⌋ ≡ ⌊A2/B⌋ (mod C)`, so regular
/// strides and power-of-two-spaced arrays produce *repetitive* conflicts.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, ModuloIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = ModuloIndex::new(geom);
/// assert_eq!(f.set_index(0x80, 0), 0);   // block 0x80 = set 0 mod 128
/// assert_eq!(f.set_index(0x81, 0), 1);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModuloIndex {
    mask: u64,
    sets: u32,
    ways: u32,
}

impl ModuloIndex {
    /// Builds the modulo placement for a geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        ModuloIndex {
            mask: u64::from(geom.num_sets() - 1),
            sets: geom.num_sets(),
            ways: geom.ways(),
        }
    }
}

impl IndexFunction for ModuloIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, _way: u32) -> u32 {
        (block_addr & self.mask) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        false
    }

    fn label(&self) -> String {
        format!("a{}", self.ways)
    }

    fn input_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_are_the_index() {
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let f = ModuloIndex::new(geom);
        for ba in [0u64, 1, 127, 128, 129, 0xffff] {
            assert_eq!(f.set_index(ba, 0), (ba % 128) as u32);
        }
    }

    #[test]
    fn power_of_two_strides_collide() {
        // The pathological case the paper opens with: a 2^k stride visits
        // only sets that share the low (m - k) pattern, so a stride equal
        // to the number of sets maps everything to one set.
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let f = ModuloIndex::new(geom);
        let stride_blocks = 128u64; // one full wrap
        let first = f.set_index(0, 0);
        for i in 0..64 {
            assert_eq!(f.set_index(i * stride_blocks, 0), first);
        }
    }

    #[test]
    fn direct_mapped_label() {
        let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        assert_eq!(ModuloIndex::new(geom).label(), "a1");
    }
}

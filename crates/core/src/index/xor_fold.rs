//! Two-field XOR placement — the skewed-associative baseline (`a2-Hx-Sk`).
//!
//! Seznec's skewed-associative cache [21] derives one index function per
//! way by XOR-ing two `m`-bit fields of the address. The paper uses this
//! scheme as the non-polynomial XOR baseline in Figure 1 and shows that,
//! unlike I-Poly, it still has pathological strides.

use crate::geometry::CacheGeometry;
use crate::index::IndexFunction;

/// XOR-fold placement: the set index of way `w` is
/// `rotl(F0, w) ^ F1`, where `F0` and `F1` are the two `m`-bit fields of
/// the block address directly above the set-index position.
///
/// With `skewed = false` every way uses `F0 ^ F1` (a plain hashed index);
/// with `skewed = true` way `w` rotates `F0` left by `w` bits (mod `m`),
/// giving each way a different — but equally simple — hash, in the spirit
/// of the inter-bank dispersion functions of the skewed-associative cache.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, XorFoldIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = XorFoldIndex::new(geom, true);
/// assert_eq!(f.label(), "a2-Hx-Sk");
/// // Fields: bits [0,7) and [7,14) of the block address.
/// assert_eq!(f.set_index(0b0000001_0000011, 0), 0b0000011 ^ 0b0000001);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct XorFoldIndex {
    index_bits: u32,
    mask: u64,
    sets: u32,
    ways: u32,
    skewed: bool,
}

impl XorFoldIndex {
    /// Builds the XOR-fold placement for a geometry.
    pub fn new(geom: CacheGeometry, skewed: bool) -> Self {
        XorFoldIndex {
            index_bits: geom.index_bits(),
            mask: u64::from(geom.num_sets() - 1),
            sets: geom.num_sets(),
            ways: geom.ways(),
            skewed,
        }
    }

    /// Rotates the low `m` bits of `v` left by `r` (mod `m`).
    #[inline]
    fn rotl_field(&self, v: u64, r: u32) -> u64 {
        let m = self.index_bits;
        if m == 0 {
            return 0;
        }
        let r = r % m;
        ((v << r) | (v >> (m - r))) & self.mask
    }
}

impl IndexFunction for XorFoldIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        let f0 = block_addr & self.mask;
        let f1 = (block_addr >> self.index_bits) & self.mask;
        let f0 = if self.skewed {
            self.rotl_field(f0, way)
        } else {
            f0
        };
        ((f0 ^ f1) & self.mask) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Hx-Sk", self.ways)
        } else {
            format!("a{}-Hx", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        2 * self.index_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn xor_of_two_fields() {
        let f = XorFoldIndex::new(geom(), false);
        // block addr = F1 << 7 | F0
        let ba = (0b1010101u64 << 7) | 0b0110011;
        assert_eq!(f.set_index(ba, 0), 0b1010101 ^ 0b0110011);
        assert_eq!(f.set_index(ba, 1), f.set_index(ba, 0));
    }

    #[test]
    fn skewed_ways_rotate() {
        let f = XorFoldIndex::new(geom(), true);
        let ba = 0b0000001u64; // F0 = 1, F1 = 0
        assert_eq!(f.set_index(ba, 0), 0b0000001);
        assert_eq!(f.set_index(ba, 1), 0b0000010); // rotl by 1
    }

    #[test]
    fn rotation_wraps_within_field() {
        let f = XorFoldIndex::new(geom(), true);
        let ba = 0b1000000u64; // F0 has its top field bit set
        assert_eq!(f.set_index(ba, 1), 0b0000001); // wraps to bit 0
    }

    #[test]
    fn index_within_range_for_wide_addresses() {
        let f = XorFoldIndex::new(geom(), true);
        for ba in [0u64, u64::MAX, 0xdead_beef_cafe, 1 << 40] {
            for w in 0..2 {
                assert!(f.set_index(ba, w) < 128);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(XorFoldIndex::new(geom(), true).label(), "a2-Hx-Sk");
        assert_eq!(XorFoldIndex::new(geom(), false).label(), "a2-Hx");
    }

    #[test]
    fn still_has_pathological_strides() {
        // A stride of 2^(2m) blocks leaves both fields unchanged, so every
        // access lands in the same set in every way — the weakness Figure 1
        // demonstrates for the XOR baseline.
        let f = XorFoldIndex::new(geom(), true);
        let stride = 1u64 << 14; // 2^(2*7) blocks
        for w in 0..2 {
            let s0 = f.set_index(3, w);
            for i in 0..32 {
                assert_eq!(f.set_index(3 + i * stride, w), s0);
            }
        }
    }
}

//! Additive skewing — the Harper–Jump / Sohi family [11][24].
//!
//! The second class of interleaved-memory dispersion functions the paper's
//! related-work survey cites: *skewing* schemes that add a multiple of the
//! row (high) address bits to the column (low) bits before taking the
//! power-of-two modulus. Harper & Jump used it to spread vector accesses
//! across banks; Sohi's *logical data skewing* generalised the multiplier.
//!
//! Placement here is
//! `set = (F0 + d_w * F1) mod 2^m`
//! where `F0` is the conventional index field, `F1` the next `m` bits of
//! the block address, and `d_w` an odd per-way skew factor. Because `d_w`
//! is odd, `x -> d_w * x mod 2^m` is a bijection, so the scheme is
//! balanced; because the arithmetic is mod `2^m`, strides whose `F1`
//! progression is trivial (multiples of `2^(2m)` blocks) remain
//! pathological — the same structural weakness as the two-field XOR
//! baseline, which Figure 1 of the paper exposes.

use crate::geometry::CacheGeometry;
use crate::index::IndexFunction;

/// Additive-skew placement: `(F0 + d_w * F1) mod 2^m` with odd skew
/// factor `d_w` per way.
///
/// With `skewed = false` every way uses `d = 1` (plain field addition);
/// with `skewed = true` way `w` uses `d_w = 2w + 1`.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{AddSkewIndex, IndexFunction}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = AddSkewIndex::new(geom, true);
/// // F0 = 3, F1 = 1: way 0 -> 3 + 1, way 1 -> 3 + 3.
/// let ba = (1u64 << 7) | 3;
/// assert_eq!(f.set_index(ba, 0), 4);
/// assert_eq!(f.set_index(ba, 1), 6);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddSkewIndex {
    index_bits: u32,
    mask: u64,
    sets: u32,
    ways: u32,
    skewed: bool,
}

impl AddSkewIndex {
    /// Builds the additive-skew placement for a geometry.
    pub fn new(geom: CacheGeometry, skewed: bool) -> Self {
        AddSkewIndex {
            index_bits: geom.index_bits(),
            mask: u64::from(geom.num_sets() - 1),
            sets: geom.num_sets(),
            ways: geom.ways(),
            skewed,
        }
    }

    /// The odd skew factor used by `way`.
    pub fn skew_factor(&self, way: u32) -> u64 {
        if self.skewed {
            u64::from(2 * way + 1)
        } else {
            1
        }
    }
}

impl IndexFunction for AddSkewIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        assert!(way < self.ways, "way {way} out of range");
        let f0 = block_addr & self.mask;
        let f1 = (block_addr >> self.index_bits) & self.mask;
        let d = self.skew_factor(way);
        ((f0.wrapping_add(d.wrapping_mul(f1))) & self.mask) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Ha-Sk", self.ways)
        } else {
            format!("a{}-Ha", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        2 * self.index_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn field_addition() {
        let f = AddSkewIndex::new(geom(), false);
        let ba = (0b0000101u64 << 7) | 0b0000011; // F1 = 5, F0 = 3
        assert_eq!(f.set_index(ba, 0), 8);
        assert_eq!(f.set_index(ba, 1), 8); // non-skewed: same for all ways
    }

    #[test]
    fn addition_wraps_mod_sets() {
        let f = AddSkewIndex::new(geom(), false);
        let ba = (0b1111111u64 << 7) | 0b0000001; // 127 + 1 = 128 ≡ 0
        assert_eq!(f.set_index(ba, 0), 0);
    }

    #[test]
    fn skew_factors_are_odd_and_distinct() {
        let f = AddSkewIndex::new(geom(), true);
        assert_eq!(f.skew_factor(0), 1);
        assert_eq!(f.skew_factor(1), 3);
        let g4 = CacheGeometry::new(8 * 1024, 32, 4).unwrap();
        let f4 = AddSkewIndex::new(g4, true);
        let factors: Vec<_> = (0..4).map(|w| f4.skew_factor(w)).collect();
        assert_eq!(factors, vec![1, 3, 5, 7]);
    }

    #[test]
    fn each_way_is_balanced() {
        // For fixed F1, varying F0 over all residues must hit every set —
        // and for fixed F0, varying F1 must too (d_w odd => bijection).
        let f = AddSkewIndex::new(geom(), true);
        for way in 0..2 {
            let by_f0: std::collections::HashSet<_> =
                (0..128u64).map(|f0| f.set_index(f0, way)).collect();
            assert_eq!(by_f0.len(), 128);
            let by_f1: std::collections::HashSet<_> =
                (0..128u64).map(|f1| f.set_index(f1 << 7, way)).collect();
            assert_eq!(by_f1.len(), 128);
        }
    }

    #[test]
    fn pathological_beyond_both_fields() {
        // Stride 2^(2m) blocks changes neither field: all accesses collide,
        // the structural weakness shared with the XOR baseline.
        let f = AddSkewIndex::new(geom(), true);
        let stride = 1u64 << 14;
        for w in 0..2 {
            let s0 = f.set_index(5, w);
            for i in 1..32 {
                assert_eq!(f.set_index(5 + i * stride, w), s0);
            }
        }
    }

    #[test]
    fn wide_addresses_stay_in_range() {
        let f = AddSkewIndex::new(geom(), true);
        for ba in [0u64, u64::MAX, 0xdead_beef_cafe, 1 << 60] {
            for w in 0..2 {
                assert!(f.set_index(ba, w) < 128);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(AddSkewIndex::new(geom(), false).label(), "a2-Ha");
        assert_eq!(AddSkewIndex::new(geom(), true).label(), "a2-Ha-Sk");
    }
}

//! I-Poly placement: irreducible-polynomial-modulus hashing (`a2-Hp`,
//! `a2-Hp-Sk`) — the paper's proposed conflict-avoiding index function.

use crate::error::Error;
use crate::geometry::CacheGeometry;
use crate::index::{IndexFunction, PAPER_ADDRESS_BITS};
use cac_gf2::irreducible::{irreducibles, is_irreducible};
use cac_gf2::xor_tree::XorTree;
use cac_gf2::Poly;

/// Polynomial-modulus placement (paper §2.1.1).
///
/// The low `v` bits of the block address are interpreted as a polynomial
/// `A(x)` over GF(2) and the set index of way `k` is
/// `A(x) mod P_k(x)`, with `deg(P_k) = m = log2(sets)`. Distinct `P_k`
/// per way skews the cache; a single shared `P` does not.
///
/// Construction synthesises one [`XorTree`] per way, so the per-access
/// cost is `m` AND+parity operations — the software analogue of the
/// `m` XOR gates a hardware implementation needs.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, index::{IndexFunction, IPolyIndex}};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// let f = IPolyIndex::new(geom, true)?; // skewed, auto-selected polynomials
/// assert_eq!(f.label(), "a2-Hp-Sk");
/// assert!(f.max_fan_in() <= 5); // the paper's §3.4 implementation claim
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IPolyIndex {
    trees: Vec<XorTree>,
    sets: u32,
    ways: u32,
    skewed: bool,
    input_bits: u32,
}

impl IPolyIndex {
    /// Builds an I-Poly placement with automatically selected
    /// minimum-fan-in irreducible polynomials and the paper's default
    /// address-bit budget ([`PAPER_ADDRESS_BITS`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry leaves fewer hash input bits than
    /// index bits (see [`IPolyIndex::from_parts`]).
    pub fn new(geom: CacheGeometry, skewed: bool) -> Result<Self, Error> {
        Self::from_parts(geom, skewed, None, None)
    }

    /// Builds an I-Poly placement from explicit parts.
    ///
    /// * `address_bits` — total low address bits available to the hash
    ///   (the paper's 19); the hash input width is
    ///   `v = address_bits - offset_bits`. `None` chooses
    ///   `max(PAPER_ADDRESS_BITS, offset + 2m)` so the scheme is always
    ///   meaningful for large geometries.
    /// * `polys` — explicit modulus polynomials. With `skewed` there must
    ///   be exactly `ways` of them, otherwise exactly one. `None`
    ///   auto-selects irreducible polynomials of degree `m`, preferring
    ///   low XOR fan-in.
    ///
    /// # Errors
    ///
    /// * [`Error::OutOfRange`] if `v <= m` (the paper requires
    ///   `m < v`, otherwise the scheme degenerates to conventional
    ///   placement) or `v > 64`.
    /// * [`Error::BadPolynomial`] if explicit polynomials have the wrong
    ///   degree or count. Reducible polynomials are *allowed* (the paper:
    ///   "for best performance P will be an irreducible polynomial, though
    ///   it need not be so") — irreducibility is only enforced for
    ///   auto-selected polynomials.
    pub fn from_parts(
        geom: CacheGeometry,
        skewed: bool,
        address_bits: Option<u32>,
        polys: Option<Vec<Poly>>,
    ) -> Result<Self, Error> {
        let m = geom.index_bits();
        let offset = geom.offset_bits();
        if m == 0 {
            // A single set (fully-associative geometry): every placement
            // degenerates to the constant index 0, and there is no
            // polynomial of degree 0 to select.
            return Ok(IPolyIndex {
                trees: Vec::new(),
                sets: 1,
                ways: geom.ways(),
                skewed,
                input_bits: 0,
            });
        }
        let address_bits = address_bits.unwrap_or_else(|| PAPER_ADDRESS_BITS.max(offset + 2 * m));
        if address_bits <= offset {
            return Err(Error::OutOfRange {
                what: "address bits",
                value: u64::from(address_bits),
                constraint: "> block offset bits",
            });
        }
        let v = address_bits - offset;
        if v <= m {
            return Err(Error::OutOfRange {
                what: "hash input bits (v)",
                value: u64::from(v),
                constraint: "> index bits (m)",
            });
        }
        if v > 64 {
            return Err(Error::OutOfRange {
                what: "hash input bits (v)",
                value: u64::from(v),
                constraint: "<= 64",
            });
        }
        let wanted = if skewed { geom.ways() as usize } else { 1 };
        let polys = match polys {
            Some(ps) => {
                if ps.len() != wanted {
                    return Err(Error::BadPolynomial {
                        reason: format!("expected {wanted} polynomial(s), got {}", ps.len()),
                    });
                }
                for &p in &ps {
                    if p.degree() != Some(m) {
                        return Err(Error::BadPolynomial {
                            reason: format!(
                                "polynomial {p} has degree {:?}, geometry needs {m}",
                                p.degree()
                            ),
                        });
                    }
                }
                ps
            }
            None => select_polys(m, v, wanted)?,
        };
        let trees: Vec<XorTree> = if skewed {
            polys.iter().map(|&p| XorTree::new(p, v)).collect()
        } else {
            vec![XorTree::new(polys[0], v)]
        };
        Ok(IPolyIndex {
            trees,
            sets: geom.num_sets(),
            ways: geom.ways(),
            skewed,
            input_bits: v,
        })
    }

    /// The modulus polynomial used by a way.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways()`.
    pub fn poly(&self, way: u32) -> Poly {
        self.tree(way).poly()
    }

    /// The synthesised XOR tree of a way.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways()`.
    pub fn tree(&self, way: u32) -> &XorTree {
        assert!(way < self.ways, "way {way} out of range");
        if self.skewed {
            &self.trees[way as usize]
        } else {
            &self.trees[0]
        }
    }

    /// Hash input width `v` in block-address bits.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Largest XOR fan-in over all ways and index bits (§3.4).
    pub fn max_fan_in(&self) -> u32 {
        self.trees
            .iter()
            .map(XorTree::max_fan_in)
            .max()
            .unwrap_or(0)
    }
}

/// Selects `count` irreducible polynomials of degree `m`, preferring
/// those whose XOR trees over `v` input bits have the smallest maximum
/// fan-in (ties broken by bit pattern, so selection is deterministic).
///
/// The paper's `P_k` are "possibly distinct" (§2.1.1); when fewer
/// irreducible polynomials of degree `m` exist than ways requested (only
/// tiny degrees are affected), the selection cycles through the available
/// ones.
fn select_polys(m: u32, v: u32, count: usize) -> Result<Vec<Poly>, Error> {
    let mut candidates: Vec<(u32, Poly)> = irreducibles(m)
        .map(|p| (XorTree::new(p, v).max_fan_in(), p))
        .collect();
    candidates.sort_by_key(|&(fan_in, p)| (fan_in, p.bits()));
    debug_assert!(!candidates.is_empty());
    let chosen: Vec<Poly> = candidates
        .iter()
        .cycle()
        .take(count)
        .map(|&(_, p)| p)
        .collect();
    debug_assert!(chosen.iter().all(|&p| is_irreducible(p)));
    Ok(chosen)
}

impl IndexFunction for IPolyIndex {
    #[inline]
    fn set_index(&self, block_addr: u64, way: u32) -> u32 {
        if self.trees.is_empty() {
            return 0; // single-set degenerate geometry
        }
        let tree = if self.skewed {
            &self.trees[way as usize]
        } else {
            &self.trees[0]
        };
        tree.apply(block_addr) as u32
    }

    fn num_sets(&self) -> u32 {
        self.sets
    }

    fn ways(&self) -> u32 {
        self.ways
    }

    fn is_skewed(&self) -> bool {
        self.skewed
    }

    fn label(&self) -> String {
        if self.skewed {
            format!("a{}-Hp-Sk", self.ways)
        } else {
            format!("a{}-Hp", self.ways)
        }
    }

    fn input_bits(&self) -> u32 {
        self.input_bits
    }

    fn fill_table(&self, way: u32, out: &mut [u32]) {
        if self.trees.is_empty() {
            out.fill(0);
            return;
        }
        let bits = out.len().trailing_zeros();
        if bits <= self.input_bits() {
            // GF(2)-linear: synthesise the table in O(len) via the tree's
            // incremental construction instead of len mask+popcnt hashes.
            out.copy_from_slice(&self.tree(way).apply_table(bits));
        } else {
            for (a, slot) in out.iter_mut().enumerate() {
                *slot = self.set_index(a as u64, way);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_gf2::default_poly;

    #[test]
    fn fully_associative_geometry_degenerates_to_constant_zero() {
        let geom = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
        let f = IPolyIndex::new(geom, true).unwrap();
        assert_eq!(f.num_sets(), 1);
        assert_eq!(f.input_bits(), 0);
        assert_eq!(f.max_fan_in(), 0);
        for addr in [0u64, 1, 0xdead_beef, u64::MAX] {
            for w in 0..4 {
                assert_eq!(f.set_index(addr, w), 0);
            }
        }
    }

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn matches_polynomial_division() {
        let f = IPolyIndex::new(geom(), false).unwrap();
        let p = f.poly(0);
        for ba in 0u64..(1 << 14) {
            let expected = Poly::from_bits(ba as u128).rem(p).bits() as u64;
            assert_eq!(u64::from(f.set_index(ba, 0)), expected);
        }
    }

    #[test]
    fn skewed_uses_distinct_polynomials() {
        let f = IPolyIndex::new(geom(), true).unwrap();
        assert_ne!(f.poly(0), f.poly(1));
        assert!(is_irreducible(f.poly(0)));
        assert!(is_irreducible(f.poly(1)));
        assert_eq!(f.poly(0).degree(), Some(7));
    }

    #[test]
    fn default_input_width_matches_paper() {
        // 19 address bits - 5 offset bits = 14 hash input bits.
        let f = IPolyIndex::new(geom(), true).unwrap();
        assert_eq!(f.input_bits(), 14);
        assert!(f.max_fan_in() <= 5, "fan-in {}", f.max_fan_in());
    }

    #[test]
    fn explicit_polynomials_accepted() {
        let p = default_poly(7);
        let f = IPolyIndex::from_parts(geom(), false, Some(19), Some(vec![p])).unwrap();
        assert_eq!(f.poly(0), p);
        assert_eq!(f.poly(1), p); // unskewed: same for both ways
    }

    #[test]
    fn reducible_polynomial_allowed_but_validated_for_degree() {
        // x^7 (reducible) has degree 7 and must be accepted: the paper says
        // irreducibility is for best performance, not correctness.
        let f =
            IPolyIndex::from_parts(geom(), false, Some(19), Some(vec![Poly::monomial(7)])).unwrap();
        // With P = x^7 the scheme degenerates to conventional indexing.
        for ba in 0u64..256 {
            assert_eq!(f.set_index(ba, 0), (ba & 0x7f) as u32);
        }
    }

    #[test]
    fn wrong_degree_rejected() {
        let err = IPolyIndex::from_parts(geom(), false, Some(19), Some(vec![default_poly(6)]))
            .unwrap_err();
        assert!(matches!(err, Error::BadPolynomial { .. }));
    }

    #[test]
    fn wrong_count_rejected() {
        let err = IPolyIndex::from_parts(
            geom(),
            true,
            Some(19),
            Some(vec![default_poly(7)]), // skewed 2-way needs 2
        )
        .unwrap_err();
        assert!(matches!(err, Error::BadPolynomial { .. }));
    }

    #[test]
    fn degenerate_input_width_rejected() {
        // v = m would be conventional placement; the constructor refuses.
        let err = IPolyIndex::from_parts(geom(), false, Some(12), None).unwrap_err();
        assert!(matches!(err, Error::OutOfRange { .. }));
        let err = IPolyIndex::from_parts(geom(), false, Some(3), None).unwrap_err();
        assert!(matches!(err, Error::OutOfRange { .. }));
    }

    #[test]
    fn power_of_two_strides_are_conflict_free() {
        // Rau's fundamental property (paper §2.1.2): 2^k strides produce
        // conflict-free sequences — any 128 consecutive elements of the
        // strided sequence map to 128 distinct sets.
        let f = IPolyIndex::new(geom(), false).unwrap();
        for k in 0..=7u32 {
            let stride = 1u64 << k;
            let mut seen = [false; 128];
            for i in 0..128u64 {
                let set = f.set_index(i * stride, 0) as usize;
                assert!(!seen[set], "stride 2^{k}: set {set} repeated");
                seen[set] = true;
            }
        }
    }

    #[test]
    fn large_geometry_auto_widens_input() {
        // 1MB 2-way, 32B blocks: m = 14, so the default 19 address bits
        // would give v = 14 = m; the constructor must widen to 2m.
        let g = CacheGeometry::new(1 << 20, 32, 2).unwrap();
        let f = IPolyIndex::new(g, true).unwrap();
        assert!(f.input_bits() > g.index_bits());
    }

    #[test]
    fn label_reflects_skew() {
        assert_eq!(IPolyIndex::new(geom(), false).unwrap().label(), "a2-Hp");
        assert_eq!(IPolyIndex::new(geom(), true).unwrap().label(), "a2-Hp-Sk");
    }

    #[test]
    #[should_panic(expected = "way 2 out of range")]
    fn tree_way_bounds_checked() {
        let f = IPolyIndex::new(geom(), true).unwrap();
        let _ = f.tree(2);
    }
}

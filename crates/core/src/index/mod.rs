//! Cache placement (index) functions.
//!
//! The paper's §2.1.1 defines block placement in a `w`-way cache with
//! `M = 2^m` sets by a set of indices `{i_1 … i_w}`, one per way, each
//! computed by a hash `h_v(A, P_k)` of the low `v` bits of the block
//! address. This module provides the trait abstracting that family and the
//! four concrete schemes evaluated in Figure 1 of the paper:
//!
//! | Label      | Scheme                                   | Type |
//! |------------|------------------------------------------|------|
//! | `a2`       | conventional modulo power-of-two          | [`ModuloIndex`] |
//! | `a2-Hx-Sk` | skewed two-field XOR (Seznec baseline)    | [`XorFoldIndex`] |
//! | `a2-Hp`    | I-Poly, same polynomial in every way      | [`IPolyIndex`] |
//! | `a2-Hp-Sk` | I-Poly, distinct polynomial per way       | [`IPolyIndex`] |
//!
//! In addition, the module implements the related-work placement schemes
//! the paper's §2.1 surveys as alternatives from the interleaved-memory
//! literature, so experiments can compare I-Poly against its historical
//! competitors rather than only against conventional indexing:
//!
//! | Label       | Scheme                                    | Type |
//! |-------------|-------------------------------------------|------|
//! | `a2-Hpr`    | prime-modulus (Lawrie–Vora \[16\])          | [`PrimeModIndex`] |
//! | `a2-Ha`     | additive skewing (Harper–Jump \[11\], Sohi \[24\]) | [`AddSkewIndex`] |
//! | `a2-Hr`     | random-table hashing (Raghavan–Hayes \[17\]) | [`RandTableIndex`] |
//! | `a2-Hxm`    | general XOR-matrix (Frailong et al. \[5\])  | [`XorMatrixIndex`] |

mod add_skew;
mod ipoly;
mod modulo;
mod prime;
mod prng;
mod rand_table;
mod table;
mod xor_fold;
mod xor_matrix;

pub use add_skew::AddSkewIndex;
pub use ipoly::IPolyIndex;
pub use modulo::ModuloIndex;
pub use prime::PrimeModIndex;
pub use rand_table::RandTableIndex;
pub use table::IndexTable;
pub use xor_fold::XorFoldIndex;
pub use xor_matrix::XorMatrixIndex;

use crate::error::Error;
use crate::geometry::CacheGeometry;
use cac_gf2::Poly;
use std::fmt;
use std::sync::Arc;

/// The number of low *address* bits the paper's experiments feed to the
/// I-Poly hash ("19 in the experiments reported in this paper", §3.4).
pub const PAPER_ADDRESS_BITS: u32 = 19;

/// A cache placement function: maps a block address to a set index, per
/// way.
///
/// Implementations must be pure functions of `(block_addr, way)` — the
/// simulators rely on replaying a placement decision giving the same
/// answer.
pub trait IndexFunction: fmt::Debug + Send + Sync {
    /// The set index (`< num_sets`) where `block_addr` may live in `way`.
    ///
    /// For non-skewed functions the result is independent of `way`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `way >= ways()`.
    fn set_index(&self, block_addr: u64, way: u32) -> u32;

    /// Number of sets this function indexes into.
    fn num_sets(&self) -> u32;

    /// Number of ways the function was built for.
    fn ways(&self) -> u32;

    /// `true` if different ways use different index functions (a *skewed*
    /// placement, §2.1.1).
    fn is_skewed(&self) -> bool;

    /// Paper-style label, e.g. `a2`, `a2-Hx-Sk`, `a2-Hp`, `a2-Hp-Sk`.
    fn label(&self) -> String;

    /// Number of low *block-address* bits the function depends on: for any
    /// block address `b` and way `w`,
    /// `set_index(b, w) == set_index(b & ((1 << input_bits()) - 1), w)`
    /// must hold (the hardware view: bits beyond `input_bits` are simply
    /// not wired into the hash).
    ///
    /// Functions that inspect every address bit (e.g. a prime modulus)
    /// return 64. The default is the conservative 64; implementations
    /// should override it with their true width so
    /// [`IndexTable`] can compile them into an
    /// exact lookup table.
    fn input_bits(&self) -> u32 {
        64
    }

    /// Writes `set_index(a, way)` for every `a` in `0..out.len()` into
    /// `out` (`out.len()` is a power of two).
    ///
    /// This is the bulk-evaluation hook [`IndexTable`]
    /// compiles placements through; the default calls [`set_index`] per
    /// entry, and implementations with algebraic structure (I-Poly's
    /// GF(2)-linearity) override it with an `O(out.len())` synthesis.
    ///
    /// [`set_index`]: IndexFunction::set_index
    fn fill_table(&self, way: u32, out: &mut [u32]) {
        debug_assert!(out.len().is_power_of_two());
        for (a, slot) in out.iter_mut().enumerate() {
            *slot = self.set_index(a as u64, way);
        }
    }
}

/// Declarative specification of a placement scheme; [`IndexSpec::build`]
/// instantiates it for a concrete geometry.
///
/// This is the type to put in experiment configuration tables: it is
/// `Clone + Eq`, cheap, and independent of cache geometry.
///
/// # Example
///
/// ```
/// use cac_core::{CacheGeometry, IndexSpec};
///
/// let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
/// for spec in [
///     IndexSpec::modulo(),
///     IndexSpec::xor_skewed(),
///     IndexSpec::ipoly(),
///     IndexSpec::ipoly_skewed(),
/// ] {
///     let f = spec.build(geom)?;
///     assert!(f.set_index(0xabcd, 0) < 128);
/// }
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IndexSpec {
    /// Conventional modulo power-of-two placement (paper label `a2`).
    Modulo,
    /// Two-field XOR placement; with `skewed` each way rotates the high
    /// field differently (paper label `a2-Hx-Sk`, the skewed-associative
    /// baseline of Seznec).
    XorFold {
        /// Use a distinct permutation per way.
        skewed: bool,
    },
    /// Polynomial-modulus placement (paper labels `a2-Hp` / `a2-Hp-Sk`).
    IPoly {
        /// Use a distinct polynomial per way.
        skewed: bool,
        /// Total low address bits fed to the hash (the paper's 19);
        /// `None` selects [`PAPER_ADDRESS_BITS`] capped to a sane range.
        address_bits: Option<u32>,
        /// Explicit modulus polynomials (one per way if `skewed`, exactly
        /// one otherwise); `None` selects minimum-fan-in irreducible
        /// polynomials automatically.
        polys: Option<Vec<Poly>>,
    },
    /// Prime-modulus placement (Lawrie–Vora \[16\]): block address modulo
    /// the largest prime not exceeding the set count.
    Prime {
        /// Multiply by a distinct non-zero constant per way.
        skewed: bool,
    },
    /// Additive skewing (Harper–Jump \[11\] / Sohi \[24\]):
    /// `(F0 + d_w * F1) mod 2^m` with odd per-way skew factors.
    AddSkew {
        /// Use a distinct odd multiplier per way.
        skewed: bool,
    },
    /// Table-driven pseudo-random placement (Raghavan–Hayes \[17\]):
    /// `T_w[F1] ^ F0` with seeded random tables.
    RandTable {
        /// Use a distinct random table per way.
        skewed: bool,
        /// Seed for the table contents (recorded so runs are replayable).
        seed: u64,
    },
    /// General GF(2) XOR-matrix placement (Frailong et al. \[5\]) with
    /// random `[I | R_w]` matrices.
    XorMatrix {
        /// Use a distinct random matrix per way.
        skewed: bool,
        /// Seed for the matrix contents.
        seed: u64,
    },
}

impl IndexSpec {
    /// Conventional modulo indexing (`a2`).
    pub fn modulo() -> Self {
        IndexSpec::Modulo
    }

    /// Non-skewed two-field XOR indexing.
    pub fn xor() -> Self {
        IndexSpec::XorFold { skewed: false }
    }

    /// Skewed two-field XOR indexing (`a2-Hx-Sk`).
    pub fn xor_skewed() -> Self {
        IndexSpec::XorFold { skewed: true }
    }

    /// Non-skewed I-Poly indexing (`a2-Hp`) with default polynomial and
    /// paper-default address bits.
    pub fn ipoly() -> Self {
        IndexSpec::IPoly {
            skewed: false,
            address_bits: None,
            polys: None,
        }
    }

    /// Skewed I-Poly indexing (`a2-Hp-Sk`) with default polynomials.
    pub fn ipoly_skewed() -> Self {
        IndexSpec::IPoly {
            skewed: true,
            address_bits: None,
            polys: None,
        }
    }

    /// I-Poly indexing with explicit polynomials (skewed iff more than one
    /// polynomial is supplied) and an explicit address-bit budget.
    pub fn ipoly_with(polys: Vec<Poly>, address_bits: u32) -> Self {
        IndexSpec::IPoly {
            skewed: polys.len() > 1,
            address_bits: Some(address_bits),
            polys: Some(polys),
        }
    }

    /// Prime-modulus indexing (Lawrie–Vora).
    pub fn prime() -> Self {
        IndexSpec::Prime { skewed: false }
    }

    /// Skewed prime-modulus indexing.
    pub fn prime_skewed() -> Self {
        IndexSpec::Prime { skewed: true }
    }

    /// Additive-skew indexing (Harper–Jump / Sohi), non-skewed across ways.
    pub fn add_skew() -> Self {
        IndexSpec::AddSkew { skewed: false }
    }

    /// Additive-skew indexing with distinct odd multipliers per way.
    pub fn add_skew_skewed() -> Self {
        IndexSpec::AddSkew { skewed: true }
    }

    /// Random-table indexing (Raghavan–Hayes) with a fixed default seed.
    pub fn rand_table() -> Self {
        IndexSpec::RandTable {
            skewed: false,
            seed: 0xcac,
        }
    }

    /// Skewed random-table indexing with a fixed default seed.
    pub fn rand_table_skewed() -> Self {
        IndexSpec::RandTable {
            skewed: true,
            seed: 0xcac,
        }
    }

    /// Random XOR-matrix indexing (Frailong et al.) with a fixed default
    /// seed.
    pub fn xor_matrix() -> Self {
        IndexSpec::XorMatrix {
            skewed: false,
            seed: 0xcac,
        }
    }

    /// Skewed random XOR-matrix indexing with a fixed default seed.
    pub fn xor_matrix_skewed() -> Self {
        IndexSpec::XorMatrix {
            skewed: true,
            seed: 0xcac,
        }
    }

    /// All placement specs compared in the related-work study (E11),
    /// in presentation order: the paper's four Figure-1 schemes followed
    /// by the four §2.1 related-work baselines (skewed variants).
    pub fn related_work_suite() -> Vec<IndexSpec> {
        vec![
            IndexSpec::modulo(),
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime_skewed(),
            IndexSpec::add_skew_skewed(),
            IndexSpec::rand_table_skewed(),
            IndexSpec::xor_matrix_skewed(),
        ]
    }

    /// Every spec reachable by [`IndexSpec::parse`], in presentation
    /// order (default seeds for the seeded schemes).
    pub fn named_specs() -> Vec<IndexSpec> {
        vec![
            IndexSpec::modulo(),
            IndexSpec::xor(),
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime(),
            IndexSpec::prime_skewed(),
            IndexSpec::add_skew(),
            IndexSpec::add_skew_skewed(),
            IndexSpec::rand_table(),
            IndexSpec::rand_table_skewed(),
            IndexSpec::xor_matrix(),
            IndexSpec::xor_matrix_skewed(),
        ]
    }

    /// Resolves a scheme name as printed by [`IndexSpec::name`]
    /// (`modulo`, `ipoly-skew`, ...). This is the parsing hook the CLI
    /// and the declarative configuration layer (`cac_sim::config`) share.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] naming the valid schemes.
    ///
    /// # Example
    ///
    /// ```
    /// use cac_core::IndexSpec;
    ///
    /// assert_eq!(IndexSpec::parse("ipoly-skew")?, IndexSpec::ipoly_skewed());
    /// assert!(IndexSpec::parse("md5").is_err());
    /// # Ok::<(), cac_core::Error>(())
    /// ```
    pub fn parse(name: &str) -> Result<IndexSpec, Error> {
        IndexSpec::named_specs()
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                Error::config(format!(
                    "unknown index scheme {name:?}; valid schemes: {}",
                    IndexSpec::named_specs()
                        .iter()
                        .map(IndexSpec::name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// Instantiates the placement function for `geom`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadPolynomial`] if explicit polynomials do not
    /// match the geometry (wrong degree or count) and
    /// [`Error::OutOfRange`] if the address-bit budget is not strictly
    /// larger than the index width (the scheme would degenerate to
    /// conventional placement).
    pub fn build(&self, geom: CacheGeometry) -> Result<Arc<dyn IndexFunction>, Error> {
        match self {
            IndexSpec::Modulo => Ok(Arc::new(ModuloIndex::new(geom))),
            IndexSpec::XorFold { skewed } => Ok(Arc::new(XorFoldIndex::new(geom, *skewed))),
            IndexSpec::IPoly {
                skewed,
                address_bits,
                polys,
            } => {
                let f = IPolyIndex::from_parts(geom, *skewed, *address_bits, polys.clone())?;
                Ok(Arc::new(f))
            }
            IndexSpec::Prime { skewed } => Ok(Arc::new(PrimeModIndex::new(geom, *skewed))),
            IndexSpec::AddSkew { skewed } => Ok(Arc::new(AddSkewIndex::new(geom, *skewed))),
            IndexSpec::RandTable { skewed, seed } => {
                Ok(Arc::new(RandTableIndex::new(geom, *skewed, *seed)))
            }
            IndexSpec::XorMatrix { skewed, seed } => {
                let f = XorMatrixIndex::random(geom, *skewed, *seed)?;
                Ok(Arc::new(f))
            }
        }
    }

    /// Instantiates the placement function for `geom` and compiles it
    /// into flat per-way lookup tables (see [`IndexTable`]).
    ///
    /// This is what the simulators call: the returned table answers
    /// `set_index` with a single load for every scheme narrow enough to
    /// tabulate, and transparently keeps the computed path otherwise.
    ///
    /// # Errors
    ///
    /// Same validation as [`IndexSpec::build`].
    pub fn build_table(&self, geom: CacheGeometry) -> Result<IndexTable, Error> {
        Ok(IndexTable::compile(self.build(geom)?))
    }

    /// Short lowercase name for file/CLI use: `modulo`, `xor`, `xor-skew`,
    /// `ipoly`, `ipoly-skew`, `prime`, `add-skew`, `rand-table`,
    /// `xor-matrix` (with `-skew` suffixes for the skewed variants).
    pub fn name(&self) -> &'static str {
        match self {
            IndexSpec::Modulo => "modulo",
            IndexSpec::XorFold { skewed: false } => "xor",
            IndexSpec::XorFold { skewed: true } => "xor-skew",
            IndexSpec::IPoly { skewed: false, .. } => "ipoly",
            IndexSpec::IPoly { skewed: true, .. } => "ipoly-skew",
            IndexSpec::Prime { skewed: false } => "prime",
            IndexSpec::Prime { skewed: true } => "prime-skew",
            IndexSpec::AddSkew { skewed: false } => "add-skew",
            IndexSpec::AddSkew { skewed: true } => "add-skew-skew",
            IndexSpec::RandTable { skewed: false, .. } => "rand-table",
            IndexSpec::RandTable { skewed: true, .. } => "rand-table-skew",
            IndexSpec::XorMatrix { skewed: false, .. } => "xor-matrix",
            IndexSpec::XorMatrix { skewed: true, .. } => "xor-matrix-skew",
        }
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    /// Every buildable spec, for exhaustive smoke tests.
    fn all_specs() -> Vec<IndexSpec> {
        vec![
            IndexSpec::modulo(),
            IndexSpec::xor(),
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime(),
            IndexSpec::prime_skewed(),
            IndexSpec::add_skew(),
            IndexSpec::add_skew_skewed(),
            IndexSpec::rand_table(),
            IndexSpec::rand_table_skewed(),
            IndexSpec::xor_matrix(),
            IndexSpec::xor_matrix_skewed(),
        ]
    }

    #[test]
    fn build_all_specs() {
        for spec in all_specs() {
            let f = spec.build(geom()).unwrap();
            assert_eq!(f.num_sets(), 128, "{spec}");
            assert_eq!(f.ways(), 2, "{spec}");
            for ba in [0u64, 1, 0x7f, 0x80, 0xdead, 0x3fff] {
                for w in 0..2 {
                    assert!(f.set_index(ba, w) < 128, "{spec}");
                }
            }
        }
    }

    #[test]
    fn all_specs_have_distinct_names() {
        let names: std::collections::HashSet<_> = all_specs().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), all_specs().len());
    }

    #[test]
    fn related_work_suite_builds() {
        let suite = IndexSpec::related_work_suite();
        assert_eq!(suite.len(), 8);
        for spec in suite {
            let f = spec.build(geom()).unwrap();
            assert!(f.set_index(0xdead_beef, 0) < 128, "{spec}");
        }
    }

    #[test]
    fn skew_flags_propagate() {
        assert!(!IndexSpec::modulo().build(geom()).unwrap().is_skewed());
        assert!(!IndexSpec::xor().build(geom()).unwrap().is_skewed());
        assert!(IndexSpec::xor_skewed().build(geom()).unwrap().is_skewed());
        assert!(!IndexSpec::ipoly().build(geom()).unwrap().is_skewed());
        assert!(IndexSpec::ipoly_skewed().build(geom()).unwrap().is_skewed());
        assert!(IndexSpec::prime_skewed().build(geom()).unwrap().is_skewed());
        assert!(IndexSpec::add_skew_skewed()
            .build(geom())
            .unwrap()
            .is_skewed());
        assert!(IndexSpec::rand_table_skewed()
            .build(geom())
            .unwrap()
            .is_skewed());
        assert!(IndexSpec::xor_matrix_skewed()
            .build(geom())
            .unwrap()
            .is_skewed());
    }

    #[test]
    fn paper_labels() {
        assert_eq!(IndexSpec::modulo().build(geom()).unwrap().label(), "a2");
        assert_eq!(
            IndexSpec::xor_skewed().build(geom()).unwrap().label(),
            "a2-Hx-Sk"
        );
        assert_eq!(IndexSpec::ipoly().build(geom()).unwrap().label(), "a2-Hp");
        assert_eq!(
            IndexSpec::ipoly_skewed().build(geom()).unwrap().label(),
            "a2-Hp-Sk"
        );
    }

    #[test]
    fn names_and_display() {
        assert_eq!(IndexSpec::modulo().name(), "modulo");
        assert_eq!(IndexSpec::xor().name(), "xor");
        assert_eq!(IndexSpec::xor_skewed().to_string(), "xor-skew");
        assert_eq!(IndexSpec::ipoly().to_string(), "ipoly");
        assert_eq!(IndexSpec::ipoly_skewed().name(), "ipoly-skew");
    }

    #[test]
    fn parse_round_trips_every_named_spec() {
        for spec in IndexSpec::named_specs() {
            assert_eq!(IndexSpec::parse(spec.name()).unwrap(), spec);
        }
        let err = IndexSpec::parse("nope").unwrap_err();
        assert!(err.to_string().contains("ipoly-skew"), "{err}");
    }

    #[test]
    fn non_skewed_functions_ignore_way() {
        for spec in [
            IndexSpec::modulo(),
            IndexSpec::xor(),
            IndexSpec::ipoly(),
            IndexSpec::prime(),
            IndexSpec::add_skew(),
            IndexSpec::rand_table(),
            IndexSpec::xor_matrix(),
        ] {
            let f = spec.build(geom()).unwrap();
            for ba in 0u64..512 {
                assert_eq!(f.set_index(ba, 0), f.set_index(ba, 1), "{spec}");
            }
        }
    }

    #[test]
    fn skewed_functions_differ_somewhere() {
        for spec in [
            IndexSpec::xor_skewed(),
            IndexSpec::ipoly_skewed(),
            IndexSpec::prime_skewed(),
            IndexSpec::add_skew_skewed(),
            IndexSpec::rand_table_skewed(),
            IndexSpec::xor_matrix_skewed(),
        ] {
            let f = spec.build(geom()).unwrap();
            let differs = (0u64..4096).any(|ba| f.set_index(ba, 0) != f.set_index(ba, 1));
            assert!(differs, "{spec} never differs between ways");
        }
    }
}

//! Minimal deterministic PRNG for seeded placement-function construction.
//!
//! The pseudo-random placement schemes ([`super::RandTableIndex`],
//! [`super::XorMatrixIndex`]) need reproducible randomness at *build* time
//! only. A tiny SplitMix64 keeps `cac-core` free of external dependencies;
//! every stream is a pure function of its seed, so experiment configs that
//! record a seed are replayable bit-for-bit.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer. Passes BigCrush when
/// used as a stream; more than good enough for choosing hash tables.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams for all practical purposes.
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), by rejection so the
    /// distribution is exact even for non-power-of-two bounds.
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 7, 128, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}

//! Load-hit latency model (§3.4 and §4).
//!
//! The paper's experiments distinguish three timing situations for a load
//! in an I-Poly cache:
//!
//! 1. **XOR gates not on the critical path** — the index XOR overlaps the
//!    computation of the high address bits, so the hit time is the base
//!    (2 cycles in the paper).
//! 2. **XOR gates on the critical path** — designs that begin the cache
//!    access as soon as the low address bits leave the adder pay one extra
//!    cycle (Figure 2 of the paper).
//! 3. **Address prediction correct** — the predicted line number was
//!    computed back in decode, the speculative access runs in parallel
//!    with the real address computation, and the *effective* hit time
//!    shrinks by one cycle (this also helps conventional caches, which is
//!    how the paper isolates the two effects in Table 2 column 5).

use crate::predictor::Outcome;

/// Where the index XOR tree sits relative to the address-generation
/// critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CriticalPath {
    /// The XOR delay is hidden behind the computation of the most
    /// significant address bits (§3.4's CLA argument); no penalty.
    #[default]
    XorHidden,
    /// The cache access is overlapped with address computation (Figure 2),
    /// so the XOR tree adds one cycle to the load's cache access.
    XorExposed,
}

/// Effective load-hit latency model.
///
/// # Example
///
/// ```
/// use cac_core::latency::{CriticalPath, HitLatencyModel};
/// use cac_core::predictor::Outcome;
///
/// // The paper's cache: 2-cycle hits, XOR on the critical path.
/// let m = HitLatencyModel::new(2, CriticalPath::XorExposed);
/// assert_eq!(m.hit_latency(Outcome::NotConfident), 3);      // +1 XOR
/// assert_eq!(m.hit_latency(Outcome::ConfidentCorrect), 1);  // overlapped
/// assert_eq!(m.hit_latency(Outcome::ConfidentWrong), 3);    // retry
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HitLatencyModel {
    base_hit: u32,
    critical_path: CriticalPath,
}

impl HitLatencyModel {
    /// Creates a model with the given base hit latency (the paper uses 2)
    /// and critical-path placement.
    pub fn new(base_hit: u32, critical_path: CriticalPath) -> Self {
        HitLatencyModel {
            base_hit,
            critical_path,
        }
    }

    /// The paper's configuration: 2-cycle base hit.
    pub fn paper_default(critical_path: CriticalPath) -> Self {
        Self::new(2, critical_path)
    }

    /// Base hit latency without any penalty or prediction.
    pub fn base_hit(&self) -> u32 {
        self.base_hit
    }

    /// The critical-path placement.
    pub fn critical_path(&self) -> CriticalPath {
        self.critical_path
    }

    /// Extra cycles the XOR tree adds when the prediction did not cover
    /// the access.
    pub fn xor_penalty(&self) -> u32 {
        match self.critical_path {
            CriticalPath::XorHidden => 0,
            CriticalPath::XorExposed => 1,
        }
    }

    /// Effective cache-hit latency for a load whose address prediction
    /// outcome is `outcome`.
    ///
    /// * `ConfidentCorrect` — the speculative access already ran; the
    ///   effective latency is one cycle less than the base (never below 1).
    /// * `ConfidentWrong` — the speculative access is discarded and the
    ///   access repeats with the real address: same timing as an
    ///   unpredicted access (the retry starts when the real index is
    ///   ready, exactly when an unpredicted access would have started).
    /// * `NotConfident` — ordinary access: base plus the XOR penalty.
    pub fn hit_latency(&self, outcome: Outcome) -> u32 {
        match outcome {
            Outcome::ConfidentCorrect => self.base_hit.saturating_sub(1).max(1),
            Outcome::ConfidentWrong | Outcome::NotConfident => self.base_hit + self.xor_penalty(),
        }
    }

    /// Hit latency when no predictor is present at all.
    pub fn hit_latency_unpredicted(&self) -> u32 {
        self.base_hit + self.xor_penalty()
    }
}

impl Default for HitLatencyModel {
    fn default() -> Self {
        Self::paper_default(CriticalPath::XorHidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_xor_has_no_penalty() {
        let m = HitLatencyModel::paper_default(CriticalPath::XorHidden);
        assert_eq!(m.xor_penalty(), 0);
        assert_eq!(m.hit_latency_unpredicted(), 2);
        assert_eq!(m.hit_latency(Outcome::NotConfident), 2);
    }

    #[test]
    fn exposed_xor_costs_one_cycle() {
        let m = HitLatencyModel::paper_default(CriticalPath::XorExposed);
        assert_eq!(m.xor_penalty(), 1);
        assert_eq!(m.hit_latency_unpredicted(), 3);
    }

    #[test]
    fn correct_prediction_saves_a_cycle_in_both_designs() {
        for cp in [CriticalPath::XorHidden, CriticalPath::XorExposed] {
            let m = HitLatencyModel::paper_default(cp);
            assert_eq!(m.hit_latency(Outcome::ConfidentCorrect), 1);
        }
    }

    #[test]
    fn wrong_prediction_is_no_worse_than_unpredicted() {
        for cp in [CriticalPath::XorHidden, CriticalPath::XorExposed] {
            let m = HitLatencyModel::paper_default(cp);
            assert_eq!(
                m.hit_latency(Outcome::ConfidentWrong),
                m.hit_latency_unpredicted()
            );
        }
    }

    #[test]
    fn latency_never_below_one() {
        let m = HitLatencyModel::new(1, CriticalPath::XorHidden);
        assert_eq!(m.hit_latency(Outcome::ConfidentCorrect), 1);
    }

    #[test]
    fn accessors_and_default() {
        let m = HitLatencyModel::default();
        assert_eq!(m.base_hit(), 2);
        assert_eq!(m.critical_path(), CriticalPath::XorHidden);
    }
}

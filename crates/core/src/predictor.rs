//! Memory address prediction (§3.4 and §4 of the paper).
//!
//! The paper proposes hiding the XOR-tree delay by predicting a load's
//! effective address early in the pipeline: a direct-mapped, **untagged**
//! table indexed by the instruction address holds the last address and last
//! observed stride of the load that most recently used the entry, plus a
//! 2-bit saturating confidence counter. The predicted cache line is
//! computed in decode (the XOR functions run on the predicted address) and
//! used to access the cache in parallel with the real address computation.

use std::fmt;

/// Default table size used in the paper's experiments (§4: "a
/// direct-mapped table with 1K entries and without tags").
pub const PAPER_TABLE_ENTRIES: usize = 1024;

/// One predictor entry: last effective address, last observed stride, and
/// a 2-bit saturating confidence counter.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    last_addr: u64,
    stride: i64,
    counter: u8, // 0..=3; confident iff >= 2 (MSB set)
}

/// A prediction returned by [`AddressPredictor::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted effective address (`last + stride`).
    pub addr: u64,
    /// `true` if the 2-bit counter's most-significant bit is set; the
    /// paper only *uses* the prediction in this case.
    pub confident: bool,
}

/// Outcome of confronting a prediction with the actual address, as
/// reported by [`AddressPredictor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The predictor was confident and the address matched.
    ConfidentCorrect,
    /// The predictor was confident but the address did not match
    /// (the speculative cache access must be repeated).
    ConfidentWrong,
    /// The predictor was not confident; no speculative access was made.
    NotConfident,
}

impl Outcome {
    /// `true` for [`Outcome::ConfidentCorrect`].
    pub fn is_correct_use(self) -> bool {
        matches!(self, Outcome::ConfidentCorrect)
    }
}

/// Running totals kept by the predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Total `observe` calls (dynamic loads seen).
    pub observations: u64,
    /// Observations where the counter was confident.
    pub confident: u64,
    /// Confident observations whose predicted address was correct.
    pub confident_correct: u64,
    /// Observations (confident or not) where `last + stride` equalled the
    /// actual address — the raw predictability of the stream.
    pub raw_correct: u64,
}

impl PredictorStats {
    /// Fraction of dynamic loads predicted correctly *and* confidently —
    /// the paper's usable prediction rate (≈75% on Spec95 per \[9\]).
    pub fn usable_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.confident_correct as f64 / self.observations as f64
        }
    }

    /// Fraction of confident predictions that were correct.
    pub fn confidence_precision(&self) -> f64 {
        if self.confident == 0 {
            0.0
        } else {
            self.confident_correct as f64 / self.confident as f64
        }
    }

    /// Fraction of loads whose address equalled `last + stride`,
    /// regardless of confidence.
    pub fn raw_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.raw_correct as f64 / self.observations as f64
        }
    }
}

/// The paper's last-address + stride predictor.
///
/// The table is untagged: distinct loads that alias to the same entry
/// interfere, exactly as the paper intends ("without tags in order to
/// reduce cost at the expense of more interference").
///
/// # Example
///
/// ```
/// use cac_core::AddressPredictor;
///
/// let mut p = AddressPredictor::new(1024)?;
/// let pc = 0x4000_1000;
/// // A constant-stride load becomes confidently predictable after a
/// // couple of observations.
/// for i in 0..4u64 {
///     p.observe(pc, 0x1000 + i * 8);
/// }
/// let pred = p.predict(pc);
/// assert!(pred.confident);
/// assert_eq!(pred.addr, 0x1000 + 4 * 8);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Clone)]
pub struct AddressPredictor {
    entries: Vec<Entry>,
    mask: u64,
    stats: PredictorStats,
}

impl AddressPredictor {
    /// Creates a predictor with `entries` slots (must be a power of two).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::NotPowerOfTwo`] if `entries` is zero or not
    /// a power of two.
    pub fn new(entries: usize) -> Result<Self, crate::Error> {
        if entries == 0 || !entries.is_power_of_two() {
            return Err(crate::Error::NotPowerOfTwo {
                what: "predictor entries",
                value: entries as u64,
            });
        }
        Ok(AddressPredictor {
            entries: vec![Entry::default(); entries],
            mask: (entries - 1) as u64,
            stats: PredictorStats::default(),
        })
    }

    /// Creates the paper's 1K-entry configuration.
    pub fn paper_default() -> Self {
        Self::new(PAPER_TABLE_ENTRIES).expect("1024 is a power of two")
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        // Instructions are word-aligned; drop the low 2 bits before
        // indexing so consecutive instructions use consecutive entries.
        ((pc >> 2) & self.mask) as usize
    }

    /// Returns the current prediction for the load at `pc` without
    /// updating any state (this is the decode-stage lookup).
    pub fn predict(&self, pc: u64) -> Prediction {
        let e = &self.entries[self.slot(pc)];
        Prediction {
            addr: e.last_addr.wrapping_add_signed(e.stride),
            confident: e.counter >= 2,
        }
    }

    /// Confronts the entry with the actual effective address, updating the
    /// counter, the address field (always) and the stride field (only when
    /// the counter has dropped below `10₂`, per §4).
    pub fn observe(&mut self, pc: u64, actual: u64) -> Outcome {
        let slot = self.slot(pc);
        let e = &mut self.entries[slot];
        let predicted = e.last_addr.wrapping_add_signed(e.stride);
        let confident = e.counter >= 2;
        let match_ = predicted == actual;

        if match_ {
            e.counter = (e.counter + 1).min(3);
        } else {
            e.counter = e.counter.saturating_sub(1);
        }
        // "the stride field is only updated when the counter goes below 10₂"
        if e.counter < 2 {
            e.stride = (actual as i64).wrapping_sub(e.last_addr as i64);
        }
        // "The address field is updated for each new reference regardless
        // of the prediction."
        e.last_addr = actual;

        self.stats.observations += 1;
        if match_ {
            self.stats.raw_correct += 1;
        }
        if confident {
            self.stats.confident += 1;
            if match_ {
                self.stats.confident_correct += 1;
                return Outcome::ConfidentCorrect;
            }
            return Outcome::ConfidentWrong;
        }
        Outcome::NotConfident
    }

    /// Running totals.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `false`; the table always has at least one entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.fill(Entry::default());
        self.stats = PredictorStats::default();
    }
}

impl fmt::Debug for AddressPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressPredictor")
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_becomes_confident() {
        let mut p = AddressPredictor::new(64).unwrap();
        let pc = 0x400;
        let mut outcomes = Vec::new();
        for i in 0..6u64 {
            outcomes.push(p.observe(pc, 0x1000 + i * 16));
        }
        // First observation: entry is cold (addr 0, stride 0) -> miss.
        assert_eq!(outcomes[0], Outcome::NotConfident);
        // After the stride locks in, the counter climbs to confident.
        assert!(matches!(
            outcomes.last().unwrap(),
            Outcome::ConfidentCorrect
        ));
        let pred = p.predict(pc);
        assert!(pred.confident);
        assert_eq!(pred.addr, 0x1000 + 6 * 16);
    }

    #[test]
    fn constant_address_is_predictable() {
        // stride 0: same address every time (e.g. a spilled scalar).
        let mut p = AddressPredictor::new(64).unwrap();
        for _ in 0..4 {
            p.observe(0x88, 0xBEEF);
        }
        let pred = p.predict(0x88);
        assert!(pred.confident);
        assert_eq!(pred.addr, 0xBEEF);
    }

    #[test]
    fn random_addresses_stay_unconfident() {
        let mut p = AddressPredictor::new(64).unwrap();
        let addrs = [0x10u64, 0x9000, 0x44, 0x123456, 0x7, 0x88, 0xfffff];
        let mut confident_uses = 0;
        for &a in &addrs {
            if p.observe(0x20, a) != Outcome::NotConfident {
                confident_uses += 1;
            }
        }
        assert_eq!(confident_uses, 0);
        assert_eq!(p.stats().confident, 0);
    }

    #[test]
    fn stride_change_retrains() {
        let mut p = AddressPredictor::new(64).unwrap();
        let pc = 0xA0;
        for i in 0..8u64 {
            p.observe(pc, 0x100 + i * 8); // stride 8, fully confident
        }
        assert_eq!(p.predict(pc).addr, 0x100 + 8 * 8);
        // Switch to stride 32: two wrong confident predictions drain the
        // counter (3 -> 2 -> 1), then the stride retrains.
        let base = 0x5000u64;
        let mut seq = Vec::new();
        for i in 0..6u64 {
            seq.push(p.observe(pc, base + i * 32));
        }
        assert_eq!(seq[0], Outcome::ConfidentWrong);
        assert!(matches!(seq[5], Outcome::ConfidentCorrect));
        assert_eq!(p.predict(pc).addr, base + 6 * 32);
    }

    #[test]
    fn negative_strides_supported() {
        let mut p = AddressPredictor::new(64).unwrap();
        let pc = 0xC4;
        for i in 0..5u64 {
            p.observe(pc, 0x10000 - i * 64);
        }
        let pred = p.predict(pc);
        assert!(pred.confident);
        assert_eq!(pred.addr, 0x10000 - 5 * 64);
    }

    #[test]
    fn untagged_aliasing_interferes() {
        // Two loads 4 * table-size apart in PC alias to the same entry and
        // destroy each other's stride — the cost the paper accepts.
        let mut p = AddressPredictor::new(16).unwrap();
        let pc_a = 0x0;
        let pc_b = 4 * 16; // same slot after >>2, &15
        for i in 0..16u64 {
            p.observe(pc_a, 0x1000 + i * 8);
            p.observe(pc_b, 0x20_0000 + i * 8);
        }
        // Neither achieves a high usable rate.
        assert!(p.stats().usable_rate() < 0.5);
    }

    #[test]
    fn stats_accumulate() {
        let mut p = AddressPredictor::new(64).unwrap();
        for i in 0..10u64 {
            p.observe(0x40, i * 4);
        }
        let s = p.stats();
        assert_eq!(s.observations, 10);
        assert!(s.raw_correct >= s.confident_correct);
        assert!(s.usable_rate() > 0.0);
        assert!(s.confidence_precision() > 0.9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = AddressPredictor::new(64).unwrap();
        for i in 0..10u64 {
            p.observe(0x40, i * 4);
        }
        p.reset();
        assert_eq!(p.stats(), PredictorStats::default());
        assert!(!p.predict(0x40).confident);
    }

    #[test]
    fn table_size_validation() {
        assert!(AddressPredictor::new(0).is_err());
        assert!(AddressPredictor::new(1000).is_err());
        assert_eq!(AddressPredictor::paper_default().len(), 1024);
        assert!(!AddressPredictor::paper_default().is_empty());
    }

    #[test]
    fn empty_stats_rates_are_zero() {
        let s = PredictorStats::default();
        assert_eq!(s.usable_rate(), 0.0);
        assert_eq!(s.confidence_precision(), 0.0);
        assert_eq!(s.raw_rate(), 0.0);
    }
}

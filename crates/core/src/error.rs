//! Error type for configuration validation.

use std::fmt;

/// Errors produced when validating cache geometry or placement
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A size parameter that must be a power of two was not.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A parameter was zero or otherwise out of its valid range.
    OutOfRange {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
        /// Human-readable constraint, e.g. `">= block size"`.
        constraint: &'static str,
    },
    /// The requested polynomial set does not match the geometry
    /// (wrong degree, wrong count, reducible when irreducibility was
    /// required, ...).
    BadPolynomial {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A declarative configuration (TOML file, scheme name, size string)
    /// could not be parsed or validated.
    Config {
        /// Explanation of what was wrong and what would be accepted.
        message: String,
    },
}

impl Error {
    /// Shorthand for a [`Error::Config`] with a formatted message.
    pub fn config(message: impl Into<String>) -> Self {
        Error::Config {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            Error::OutOfRange {
                what,
                value,
                constraint,
            } => write!(f, "{what} out of range: {value} (must be {constraint})"),
            Error::BadPolynomial { reason } => {
                write!(f, "invalid polynomial configuration: {reason}")
            }
            Error::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::NotPowerOfTwo {
            what: "capacity",
            value: 3000,
        };
        assert_eq!(e.to_string(), "capacity must be a power of two, got 3000");
        let e = Error::OutOfRange {
            what: "ways",
            value: 0,
            constraint: ">= 1",
        };
        assert!(e.to_string().contains("ways out of range"));
        let e = Error::BadPolynomial {
            reason: "degree 5 != index bits 7".into(),
        };
        assert!(e.to_string().contains("degree 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<Error>();
    }
}

//! Cache geometry: capacity, block size, associativity and the derived
//! index arithmetic shared by every placement function and simulator in the
//! workspace.

use crate::error::Error;
use std::fmt;

/// Validated cache geometry.
///
/// All three parameters must be powers of two (the paper's notation:
/// `C = 2^?` sets, block size `B`, and `w` ways; we validate `w` only for
/// being non-zero and dividing the block count). The number of sets is
/// `capacity / (block * ways)`.
///
/// # Example
///
/// ```
/// use cac_core::CacheGeometry;
///
/// let g = CacheGeometry::new(8 * 1024, 32, 2)?;
/// assert_eq!(g.num_sets(), 128);
/// assert_eq!(g.index_bits(), 7);
/// assert_eq!(g.offset_bits(), 5);
/// assert_eq!(g.block_addr(0x1f40), 0xfa);
/// # Ok::<(), cac_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    capacity: u64,
    block: u64,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPowerOfTwo`] if `capacity` or `block` is not a
    /// power of two, and [`Error::OutOfRange`] if any parameter is zero, if
    /// `block < 2` or `block > capacity`, or if `ways` exceeds the number
    /// of blocks. The two-byte block minimum guarantees block addresses
    /// (`addr >> offset_bits`) never reach `u64::MAX`, which the
    /// simulators reserve as their invalid-tag sentinel.
    pub fn new(capacity: u64, block: u64, ways: u32) -> Result<Self, Error> {
        if capacity == 0 || !capacity.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "capacity",
                value: capacity,
            });
        }
        if block == 0 || !block.is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "block size",
                value: block,
            });
        }
        if block < 2 {
            return Err(Error::OutOfRange {
                what: "block size",
                value: block,
                constraint: ">= 2 bytes",
            });
        }
        if block > capacity {
            return Err(Error::OutOfRange {
                what: "block size",
                value: block,
                constraint: "<= capacity",
            });
        }
        if ways == 0 {
            return Err(Error::OutOfRange {
                what: "ways",
                value: 0,
                constraint: ">= 1",
            });
        }
        let blocks = capacity / block;
        if u64::from(ways) > blocks {
            return Err(Error::OutOfRange {
                what: "ways",
                value: u64::from(ways),
                constraint: "<= number of blocks",
            });
        }
        if !u64::from(ways).is_power_of_two() {
            return Err(Error::NotPowerOfTwo {
                what: "ways",
                value: u64::from(ways),
            });
        }
        Ok(CacheGeometry {
            capacity,
            block,
            ways,
        })
    }

    /// A fully-associative geometry of the same capacity and block size
    /// (one set, all blocks are ways).
    pub fn fully_associative(capacity: u64, block: u64) -> Result<Self, Error> {
        let blocks = capacity
            .checked_div(block)
            .filter(|&b| b > 0 && b <= u64::from(u32::MAX))
            .ok_or(Error::OutOfRange {
                what: "block size",
                value: block,
                constraint: "<= capacity",
            })?;
        CacheGeometry::new(capacity, block, blocks as u32)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Block (cache line) size in bytes.
    #[inline]
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Associativity (number of ways).
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets: `capacity / (block * ways)`.
    #[inline]
    pub fn num_sets(&self) -> u32 {
        (self.capacity / (self.block * u64::from(self.ways))) as u32
    }

    /// Total number of blocks (lines) in the cache.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        (self.capacity / self.block) as u32
    }

    /// Number of block-offset bits: `log2(block)`.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.block.trailing_zeros()
    }

    /// Number of set-index bits: `log2(num_sets)` — the paper's `m`.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.num_sets().trailing_zeros()
    }

    /// Strips the block offset from a byte address, yielding the block
    /// address the placement functions operate on.
    #[inline]
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.offset_bits()
    }

    /// First byte address of the block containing `addr`.
    #[inline]
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.block - 1)
    }

    /// `true` if two byte addresses fall in the same cache block.
    #[inline]
    pub fn same_block(&self, a: u64, b: u64) -> bool {
        self.block_addr(a) == self.block_addr(b)
    }

    /// The conventional (modulo) set index of a byte address: block address
    /// modulo number of sets. This is the `a2` baseline of the paper.
    #[inline]
    pub fn modulo_index(&self, addr: u64) -> u32 {
        (self.block_addr(addr) & u64::from(self.num_sets() - 1)) as u32
    }

    /// Number of cache blocks a `bytes`-byte footprint occupies
    /// (rounded up) — the `m` of the analytic birthday/overflow bounds.
    #[inline]
    pub fn footprint_blocks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block)
    }

    /// Load factor of a footprint of `blocks` distinct blocks against
    /// this cache's total block count: values above 1.0 mean capacity
    /// misses are unavoidable regardless of placement.
    #[inline]
    pub fn load_factor(&self, blocks: u64) -> f64 {
        blocks as f64 / f64::from(self.num_blocks())
    }

    /// Returns a geometry identical except for the capacity.
    ///
    /// # Errors
    ///
    /// Same validation as [`CacheGeometry::new`].
    pub fn with_capacity(&self, capacity: u64) -> Result<Self, Error> {
        CacheGeometry::new(capacity, self.block, self.ways)
    }

    /// Returns a geometry identical except for the associativity.
    ///
    /// # Errors
    ///
    /// Same validation as [`CacheGeometry::new`].
    pub fn with_ways(&self, ways: u32) -> Result<Self, Error> {
        CacheGeometry::new(self.capacity, self.block, ways)
    }
}

/// Parses a byte-size string as used by declarative configurations:
/// a plain integer (`"8192"`, underscores allowed) or an integer with a
/// binary-unit suffix (`"8K"`, `"8KiB"`, `"256kb"`, `"1M"`, `"2GiB"` —
/// case-insensitive, `K`/`M`/`G` all meaning powers of 1024, as cache
/// capacities always are in the paper).
///
/// # Errors
///
/// [`Error::Config`] describing the accepted forms.
///
/// # Example
///
/// ```
/// use cac_core::geometry::parse_size;
///
/// assert_eq!(parse_size("8KiB")?, 8 * 1024);
/// assert_eq!(parse_size("256k")?, 256 * 1024);
/// assert_eq!(parse_size("32")?, 32);
/// assert!(parse_size("eight").is_err());
/// # Ok::<(), cac_core::Error>(())
/// ```
pub fn parse_size(s: &str) -> Result<u64, Error> {
    let trimmed = s.trim();
    let lower = trimmed.to_ascii_lowercase();
    let (digits, multiplier) = if let Some(d) = lower
        .strip_suffix("kib")
        .or_else(|| lower.strip_suffix("kb"))
        .or_else(|| lower.strip_suffix('k'))
    {
        (d, 1024u64)
    } else if let Some(d) = lower
        .strip_suffix("mib")
        .or_else(|| lower.strip_suffix("mb"))
        .or_else(|| lower.strip_suffix('m'))
    {
        (d, 1024 * 1024)
    } else if let Some(d) = lower
        .strip_suffix("gib")
        .or_else(|| lower.strip_suffix("gb"))
        .or_else(|| lower.strip_suffix('g'))
    {
        (d, 1024 * 1024 * 1024)
    } else {
        (lower.as_str(), 1u64)
    };
    let digits = digits.trim().replace('_', "");
    let value: u64 = digits.parse().map_err(|_| {
        Error::config(format!(
            "cannot parse size {trimmed:?}; expected bytes (\"8192\") or a \
             binary-unit suffix (\"8KiB\", \"256K\", \"1M\")"
        ))
    })?;
    value
        .checked_mul(multiplier)
        .ok_or_else(|| Error::config(format!("size {trimmed:?} overflows a 64-bit byte count")))
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = if self.capacity.is_multiple_of(1024) {
            format!("{}KB", self.capacity / 1024)
        } else {
            format!("{}B", self.capacity)
        };
        write!(
            f,
            "{cap} {}-way {}B-block ({} sets)",
            self.ways,
            self.block,
            self.num_sets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_l1() -> CacheGeometry {
        CacheGeometry::new(8 * 1024, 32, 2).unwrap()
    }

    #[test]
    fn paper_configuration_derivations() {
        let g = paper_l1();
        assert_eq!(g.num_sets(), 128);
        assert_eq!(g.num_blocks(), 256);
        assert_eq!(g.index_bits(), 7);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.to_string(), "8KB 2-way 32B-block (128 sets)");
    }

    #[test]
    fn sixteen_kb_configuration() {
        let g = CacheGeometry::new(16 * 1024, 32, 2).unwrap();
        assert_eq!(g.num_sets(), 256);
        assert_eq!(g.index_bits(), 8);
    }

    #[test]
    fn direct_mapped_and_fully_associative() {
        let dm = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
        assert_eq!(dm.num_sets(), 256);
        let fa = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
        assert_eq!(fa.num_sets(), 1);
        assert_eq!(fa.ways(), 256);
    }

    #[test]
    fn block_address_arithmetic() {
        let g = paper_l1();
        assert_eq!(g.block_addr(0), 0);
        assert_eq!(g.block_addr(31), 0);
        assert_eq!(g.block_addr(32), 1);
        assert_eq!(g.block_base(0x1234), 0x1220);
        assert!(g.same_block(0x1220, 0x123f));
        assert!(!g.same_block(0x123f, 0x1240));
    }

    #[test]
    fn modulo_index_wraps_at_sets() {
        let g = paper_l1();
        // Two addresses one cache-worth/ways apart collide (the paper's
        // "A1/B mod C == A2/B mod C" condition).
        let a1 = 0x0000u64;
        let a2 = a1 + 128 * 32; // sets * block
        assert_eq!(g.modulo_index(a1), g.modulo_index(a2));
        assert_ne!(g.modulo_index(a1), g.modulo_index(a1 + 32));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(matches!(
            CacheGeometry::new(3000, 32, 2),
            Err(Error::NotPowerOfTwo {
                what: "capacity",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(8192, 33, 2),
            Err(Error::NotPowerOfTwo {
                what: "block size",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(8192, 32, 0),
            Err(Error::OutOfRange { what: "ways", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(8192, 32, 3),
            Err(Error::NotPowerOfTwo { what: "ways", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(32, 64, 1),
            Err(Error::OutOfRange {
                what: "block size",
                ..
            })
        ));
        // ways > blocks
        assert!(CacheGeometry::new(64, 32, 4).is_err());
        // 1-byte blocks would let block addresses collide with the
        // simulators' u64::MAX invalid-tag sentinel.
        assert!(matches!(
            CacheGeometry::new(8192, 1, 2),
            Err(Error::OutOfRange {
                what: "block size",
                ..
            })
        ));
    }

    #[test]
    fn with_capacity_and_ways() {
        let g = paper_l1();
        let g16 = g.with_capacity(16 * 1024).unwrap();
        assert_eq!(g16.num_sets(), 256);
        let g4 = g.with_ways(4).unwrap();
        assert_eq!(g4.num_sets(), 64);
        assert!(g.with_capacity(999).is_err());
    }

    #[test]
    fn parse_size_accepts_suffixes() {
        assert_eq!(parse_size("8192").unwrap(), 8192);
        assert_eq!(parse_size("8_192").unwrap(), 8192);
        assert_eq!(parse_size(" 8K ").unwrap(), 8 * 1024);
        assert_eq!(parse_size("8KiB").unwrap(), 8 * 1024);
        assert_eq!(parse_size("8kb").unwrap(), 8 * 1024);
        assert_eq!(parse_size("1MiB").unwrap(), 1 << 20);
        assert_eq!(parse_size("2G").unwrap(), 2u64 << 30);
        for bad in [
            "",
            "KB",
            "1.5K",
            "eight",
            "8KB extra",
            "99999999999999999999",
        ] {
            assert!(parse_size(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn display_for_odd_capacity() {
        let g = CacheGeometry::new(512, 32, 1).unwrap();
        assert_eq!(g.to_string(), "512B 1-way 32B-block (16 sets)");
    }

    #[test]
    fn footprint_math() {
        let g = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        assert_eq!(g.footprint_blocks(0), 0);
        assert_eq!(g.footprint_blocks(1), 1);
        assert_eq!(g.footprint_blocks(32), 1);
        assert_eq!(g.footprint_blocks(33), 2);
        assert_eq!(g.footprint_blocks(8 * 1024), 256);
        assert_eq!(g.load_factor(256), 1.0);
        assert_eq!(g.load_factor(128), 0.5);
        assert!(g.load_factor(512) > 1.0);
    }
}

//! Conflict-avoiding cache placement functions.
//!
//! This crate implements the primary contribution of Topham, González &
//! González, *"The Design and Performance of a Conflict-Avoiding Cache"*
//! (MICRO-30, 1997): cache index functions based on **irreducible
//! polynomial modulus (I-Poly) hashing over GF(2)**, together with the
//! supporting machinery the paper's implementation study develops:
//!
//! * [`geometry`] — cache geometry (capacity / block size / associativity)
//!   and derived index arithmetic.
//! * [`index`] — the [`IndexFunction`] trait and the four placement schemes
//!   of the paper's Figure 1: conventional modulo (`a2`), skewed bit-field
//!   XOR (`a2-Hx-Sk`, the Seznec skewed-associative baseline), I-Poly
//!   (`a2-Hp`) and skewed I-Poly (`a2-Hp-Sk`) — plus [`IndexTable`], the
//!   LUT compiler that turns any of them into flat per-way lookup tables
//!   (every scheme is a pure function of the low `v ≤ 19` address bits,
//!   §3.4, so `set_index` becomes a single bounds-checked load on the
//!   simulator hot path).
//! * [`holes`] — the analytical model of §3.3 for *holes* created at L1 by
//!   inclusion enforcement in a two-level virtual-real hierarchy
//!   (equations (vii)–(ix)).
//! * [`predictor`] — the memory address prediction scheme of §3.4: an
//!   untagged, direct-mapped table of last-address + stride entries with
//!   2-bit confidence counters, used to hide the XOR-tree delay.
//! * [`latency`] — the load-hit latency model of §3.4/§4: where the XOR
//!   gates sit relative to the critical path and how address prediction
//!   offsets the penalty.
//! * [`cla`] — the carry-lookahead timing argument of §3.4: block delays
//!   until the low address bits are valid, and whether the XOR tree fits
//!   in the resulting slack.
//!
//! # Quick start
//!
//! ```
//! use cac_core::geometry::CacheGeometry;
//! use cac_core::index::IndexSpec;
//!
//! // The paper's primary configuration: 8KB, 2-way, 32-byte blocks.
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! assert_eq!(geom.num_sets(), 128);
//!
//! // Build the skewed I-Poly placement (curve "a2-Hp-Sk" in Figure 1).
//! let ipoly = IndexSpec::ipoly_skewed().build(geom)?;
//! let set = ipoly.set_index(0x1234 >> geom.offset_bits(), 0);
//! assert!(set < geom.num_sets());
//! # Ok::<(), cac_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cla;
pub mod error;
pub mod geometry;
pub mod holes;
pub mod index;
pub mod latency;
pub mod predictor;

pub use error::Error;
pub use geometry::{parse_size, CacheGeometry};
pub use index::{IndexFunction, IndexSpec, IndexTable};
pub use latency::HitLatencyModel;
pub use predictor::AddressPredictor;

//! Carry-lookahead timing: when are the low address bits ready?
//!
//! §3.4 of the paper argues the XOR tree need not lengthen the critical
//! path because effective addresses are computed "from right to left": in
//! a carry-lookahead adder (CLA) with lookahead blocks of size `b`, the
//! `b` least-significant sum bits are ready after about one block delay,
//! the `b²` low bits after three, and in general the `bⁱ` low bits after
//! `2i − 1` block delays. For 64-bit addresses and a binary CLA, the 19
//! bits the paper's I-Poly functions consume are ready after ~9 block
//! delays while the full sum takes ~11 — two block delays of slack in
//! which to absorb one or two XOR gate levels.
//!
//! [`ClaModel`] reproduces that arithmetic so configurations can decide
//! *analytically* whether their hash belongs on the critical path
//! ([`CriticalPath::XorHidden`]) or not — the knob the IPC experiments
//! then price.
//!
//! # Example
//!
//! ```
//! use cac_core::cla::ClaModel;
//!
//! // The paper's worked example: 64-bit binary CLA.
//! let cla = ClaModel::binary64();
//! assert_eq!(cla.delay_for_bits(19), 9);  // "a delay of about 9 blocks"
//! assert_eq!(cla.full_delay(), 11);       // "requires 11 block-delays"
//! assert_eq!(cla.slack_for_bits(19), 2);  // room for the XOR tree
//! ```

use crate::error::Error;
use crate::latency::CriticalPath;

/// Timing model of a carry-lookahead adder, in units of one lookahead
/// block delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClaModel {
    block: u32,
    width: u32,
}

impl ClaModel {
    /// Creates a model for a `width`-bit adder built from lookahead
    /// blocks of `block` bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRange`] if `block < 2` (a one-bit "block" is
    /// a ripple adder, to which the lookahead recurrence does not apply)
    /// or if `width < block`.
    pub fn new(block: u32, width: u32) -> Result<Self, Error> {
        if block < 2 {
            return Err(Error::OutOfRange {
                what: "lookahead block size",
                value: u64::from(block),
                constraint: ">= 2",
            });
        }
        if width < block {
            return Err(Error::OutOfRange {
                what: "adder width",
                value: u64::from(width),
                constraint: ">= block size",
            });
        }
        Ok(ClaModel { block, width })
    }

    /// The paper's configuration: a binary (`b = 2`) CLA over 64-bit
    /// addresses.
    pub fn binary64() -> Self {
        ClaModel {
            block: 2,
            width: 64,
        }
    }

    /// Lookahead block size `b`.
    pub fn block(&self) -> u32 {
        self.block
    }

    /// Adder width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Block delays until the `n` least-significant sum bits are valid:
    /// `2·ceil(log_b(n)) − 1`, clamped to at least one block
    /// (`n` is clamped to the adder width).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` — asking when zero bits are ready is a caller
    /// bug.
    pub fn delay_for_bits(&self, n: u32) -> u32 {
        assert!(n > 0, "asked for the delay of zero bits");
        let n = n.min(self.width);
        // i = ceil(log_b(n)): smallest i with b^i >= n.
        let mut i = 0u32;
        let mut reach = 1u64;
        while reach < u64::from(n) {
            reach *= u64::from(self.block);
            i += 1;
        }
        // Even the first sum bit takes one block delay to produce.
        if i == 0 {
            1
        } else {
            2 * i - 1
        }
    }

    /// Block delays for the full `width`-bit sum.
    pub fn full_delay(&self) -> u32 {
        self.delay_for_bits(self.width)
    }

    /// Slack between the arrival of the `n` low bits and completion of the
    /// full sum — the window in which index-hash logic is architecturally
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (see [`ClaModel::delay_for_bits`]).
    pub fn slack_for_bits(&self, n: u32) -> u32 {
        self.full_delay() - self.delay_for_bits(n)
    }

    /// Whether an XOR tree of `xor_depth_blocks` block-delays, fed by the
    /// `hash_bits` low address bits, fits entirely in the adder's slack.
    ///
    /// # Panics
    ///
    /// Panics if `hash_bits == 0`.
    pub fn hides_xor(&self, hash_bits: u32, xor_depth_blocks: u32) -> bool {
        xor_depth_blocks <= self.slack_for_bits(hash_bits)
    }

    /// The [`CriticalPath`] value this adder implies for a hash over the
    /// `hash_bits` low address bits with the given XOR depth — the
    /// analytical counterpart of the experimental toggle in
    /// [`crate::latency::HitLatencyModel`].
    ///
    /// # Panics
    ///
    /// Panics if `hash_bits == 0`.
    pub fn critical_path_for(&self, hash_bits: u32, xor_depth_blocks: u32) -> CriticalPath {
        if self.hides_xor(hash_bits, xor_depth_blocks) {
            CriticalPath::XorHidden
        } else {
            CriticalPath::XorExposed
        }
    }
}

impl Default for ClaModel {
    fn default() -> Self {
        Self::binary64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        let cla = ClaModel::binary64();
        // "the b least-significant bits ... available after a delay of
        // approximately one look-ahead block"
        assert_eq!(cla.delay_for_bits(2), 1);
        // "After a three-block delay the b^2 least-significant bits"
        assert_eq!(cla.delay_for_bits(4), 3);
        // "the 19 bits required by the I-poly functions ... have a delay
        // of about 9 blocks"
        assert_eq!(cla.delay_for_bits(19), 9);
        // "whereas the whole address computation requires 11 block-delays"
        assert_eq!(cla.full_delay(), 11);
        assert_eq!(cla.slack_for_bits(19), 2);
    }

    #[test]
    fn general_recurrence() {
        let cla = ClaModel::binary64();
        // b^i bits at exactly 2i-1 blocks.
        for i in 1..=6u32 {
            assert_eq!(cla.delay_for_bits(1 << i), 2 * i - 1, "i = {i}");
        }
        // One bit is ready after a single block (the first block's sum).
        assert_eq!(cla.delay_for_bits(1), 1);
        // Requests beyond the width clamp to the full delay.
        assert_eq!(cla.delay_for_bits(200), cla.full_delay());
    }

    #[test]
    fn wider_blocks_flatten_the_curve() {
        let quad = ClaModel::new(4, 64).unwrap();
        assert_eq!(quad.delay_for_bits(4), 1);
        assert_eq!(quad.delay_for_bits(16), 3);
        assert_eq!(quad.delay_for_bits(64), 5);
        assert!(quad.full_delay() < ClaModel::binary64().full_delay());
    }

    #[test]
    fn delay_is_monotone_in_bits() {
        let cla = ClaModel::binary64();
        let mut last = 0;
        for n in 1..=64 {
            let d = cla.delay_for_bits(n);
            assert!(d >= last, "delay must not decrease at {n} bits");
            last = d;
        }
    }

    #[test]
    fn xor_hiding_decision() {
        let cla = ClaModel::binary64();
        // Two XOR2 levels (the paper's degree-7 tree) fit in the slack;
        // a deep five-level tree would not.
        assert!(cla.hides_xor(19, 2));
        assert!(!cla.hides_xor(19, 3));
        assert_eq!(cla.critical_path_for(19, 2), CriticalPath::XorHidden);
        assert_eq!(cla.critical_path_for(19, 5), CriticalPath::XorExposed);
        // A hash that needs *all* address bits has no slack at all.
        assert_eq!(cla.slack_for_bits(64), 0);
        assert!(!cla.hides_xor(64, 1));
    }

    #[test]
    fn validation() {
        assert!(ClaModel::new(1, 64).is_err());
        assert!(ClaModel::new(4, 2).is_err());
        assert!(ClaModel::new(2, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "zero bits")]
    fn zero_bits_is_a_bug() {
        let _ = ClaModel::binary64().delay_for_bits(0);
    }
}

//! End-to-end integration: workload models → cache/CPU simulators →
//! the paper's headline effects, across crate boundaries.

use cac::core::{CacheGeometry, IndexSpec};
use cac::cpu::{CpuConfig, Processor};
use cac::sim::cache::Cache;
use cac::trace::kernels::mem_refs;
use cac::trace::spec::SpecBenchmark;

const OPS: usize = 120_000;

fn cache_miss_pct(b: SpecBenchmark, spec: IndexSpec) -> f64 {
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let mut c = Cache::build(geom, spec).unwrap();
    for r in mem_refs(b.generator(42).take(OPS)) {
        c.access(r.addr, r.is_write);
    }
    c.stats().read_miss_ratio() * 100.0
}

#[test]
fn high_conflict_benchmarks_collapse_under_conventional_indexing() {
    for b in [
        SpecBenchmark::Tomcatv,
        SpecBenchmark::Swim,
        SpecBenchmark::Wave5,
    ] {
        let conv = cache_miss_pct(b, IndexSpec::modulo());
        let poly = cache_miss_pct(b, IndexSpec::ipoly_skewed());
        assert!(conv > 30.0, "{b}: conventional miss {conv:.1}% too low");
        assert!(
            poly < conv / 2.0,
            "{b}: ipoly {poly:.1}% not a big enough win over {conv:.1}%"
        );
    }
}

#[test]
fn low_conflict_benchmarks_are_placement_insensitive() {
    for b in [
        SpecBenchmark::Compress,
        SpecBenchmark::Su2cor,
        SpecBenchmark::Applu,
        SpecBenchmark::Fpppp,
    ] {
        let conv = cache_miss_pct(b, IndexSpec::modulo());
        let poly = cache_miss_pct(b, IndexSpec::ipoly_skewed());
        assert!(
            (conv - poly).abs() < 3.0,
            "{b}: conv {conv:.1}% vs ipoly {poly:.1}% should be close"
        );
    }
}

#[test]
fn miss_ratio_stddev_shrinks_like_the_paper_claims() {
    // §5: I-Poly reduces the stddev of miss ratios across Spec95 from
    // 18.49 to 5.16. Check the direction and rough magnitude.
    let std = |spec: IndexSpec| {
        let xs: Vec<f64> = SpecBenchmark::all()
            .into_iter()
            .map(|b| cache_miss_pct(b, spec.clone()))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    let conv = std(IndexSpec::modulo());
    let poly = std(IndexSpec::ipoly_skewed());
    assert!(conv > 12.0, "conventional stddev {conv:.2}");
    assert!(poly < 8.0, "ipoly stddev {poly:.2}");
    assert!(poly < conv / 2.0);
}

#[test]
fn processor_ipc_improves_on_conflict_workload() {
    // Table 3's effect on the full processor model.
    let run = |spec: IndexSpec| {
        let config = CpuConfig::paper_baseline(spec).unwrap();
        let mut cpu = Processor::new(config).unwrap();
        cpu.run(SpecBenchmark::Tomcatv.generator(7), 60_000)
    };
    let conv = run(IndexSpec::modulo());
    let poly = run(IndexSpec::ipoly_skewed());
    assert!(
        poly.ipc() > conv.ipc() * 1.1,
        "ipoly IPC {:.3} vs conventional {:.3}",
        poly.ipc(),
        conv.ipc()
    );
    assert!(poly.load_miss_ratio_pct() < conv.load_miss_ratio_pct() / 2.0);
}

#[test]
fn ipoly_on_8kb_rivals_conventional_16kb() {
    // The paper: I-Poly on 8KB achieves over 60% of the IPC gain of
    // doubling the cache; on the bad programs it beats 16KB outright.
    let run = |config: CpuConfig| {
        let mut cpu = Processor::new(config).unwrap();
        cpu.run(SpecBenchmark::Swim.generator(7), 60_000)
    };
    let conv8 = run(CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap());
    let conv16 = run(CpuConfig::paper_16kb(IndexSpec::modulo()).unwrap());
    let ipoly8 = run(CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap());
    assert!(
        ipoly8.ipc() > conv16.ipc(),
        "swim: ipoly-8KB {:.3} should beat conv-16KB {:.3} (conv-8KB {:.3})",
        ipoly8.ipc(),
        conv16.ipc(),
        conv8.ipc()
    );
}

#[test]
fn all_benchmarks_run_on_the_processor() {
    for b in SpecBenchmark::all() {
        let config = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap();
        let mut cpu = Processor::new(config).unwrap();
        let stats = cpu.run(b.generator(1), 10_000);
        // Commit retires up to 4 per cycle, so the run may overshoot the
        // target by up to commit_width - 1.
        assert!(
            (10_000..10_004).contains(&stats.instructions),
            "{b}: {} instructions",
            stats.instructions
        );
        assert!(
            stats.ipc() > 0.05 && stats.ipc() <= 4.0,
            "{b}: IPC {}",
            stats.ipc()
        );
        assert!(stats.loads > 0, "{b}");
        assert!(stats.branches > 0, "{b}");
    }
}

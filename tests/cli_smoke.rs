//! Root-package integration smoke: shell the workspace-built `cac` CLI.
//!
//! The root `cac` package's other tests exercise the *library* across
//! crate boundaries; this suite makes the top-level `cargo test`
//! meaningful for the *binary* too, by driving the real `cac`
//! executable the way a user (and CI) does — including the declarative
//! config workflow (`cac run --config`, `cac config validate`).
//!
//! The binary comes from the tier-1 flow (`cargo build --release &&
//! cargo test`): we look for `target/release/cac`, then
//! `target/debug/cac`. If neither exists the suite prints a skip notice
//! rather than failing — run `cargo build --release` first for full
//! coverage. The complete workspace test suite is
//! `cargo test --workspace` (see README).

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn cac_binary() -> Option<PathBuf> {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("target"));
    ["release", "debug"]
        .iter()
        .map(|p| target.join(p).join("cac"))
        .find(|p| p.exists())
}

/// Runs `cac` with `args`; `None` means the binary is not built yet
/// (skip with a notice).
fn cac(args: &[&str]) -> Option<Output> {
    let bin = match cac_binary() {
        Some(b) => b,
        None => {
            eprintln!(
                "cli_smoke: skipping — build the CLI first (`cargo build --release`); \
                 the full suite is `cargo test --workspace`"
            );
            return None;
        }
    };
    Some(
        Command::new(bin)
            .args(args)
            .current_dir(repo_root())
            .output()
            .expect("spawn cac"),
    )
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn list_names_the_full_command_surface() {
    let Some(out) = cac(&["list"]) else { return };
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "fig1",
        "table2",
        "replay",
        "trace-gen",
        "run",
        "config-validate",
    ] {
        assert!(text.contains(cmd), "cac list lost {cmd:?}:\n{text}");
    }
}

#[test]
fn fig1_renders_json() {
    let Some(out) = cac(&["--format", "json", "fig1", "16", "2"]) else {
        return;
    };
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("a2-Hp-Sk"));
}

#[test]
fn run_replays_a_config_end_to_end() {
    let Some(out) = cac(&[
        "--format",
        "json",
        "run",
        "--config",
        "examples/ipoly_skewed.toml",
        "--bench",
        "swim",
        "--ops",
        "20000",
    ]) else {
        return;
    };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("demand stream"), "{text}");
    assert!(text.contains("\"accesses\""), "{text}");
}

#[test]
fn config_validate_covers_every_shipped_example() {
    let examples = repo_root().join("examples");
    let mut files: Vec<String> = std::fs::read_dir(&examples)
        .expect("examples/ exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "toml").then(|| p.to_str().unwrap().to_owned())
        })
        .collect();
    files.sort();
    assert!(files.len() >= 12, "shipped config set shrank: {files:?}");
    let mut args = vec!["config", "validate"];
    args.extend(files.iter().map(String::as_str));
    let Some(out) = cac(&args) else { return };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("ok"));
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cac-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn shipped_configs() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(repo_root().join("examples"))
        .expect("examples/ exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "toml").then(|| p.to_str().unwrap().to_owned())
        })
        .collect();
    files.sort();
    files
}

#[test]
fn version_and_exit_code_contract() {
    let Some(out) = cac(&["--version"]) else {
        return;
    };
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).starts_with("cac "), "{}", stdout(&out));

    // 2: usage errors (unknown command, bad parameter value).
    let out = cac(&["no-such-command"]).unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cac(&["fig1", "--max-stride", "1"]).unwrap();
    assert_eq!(out.status.code(), Some(2));

    // 3: input errors (missing trace, missing config).
    let out = cac(&["replay", "--trace", "/nonexistent/trace.bin"]).unwrap();
    assert_eq!(out.status.code(), Some(3));
    let out = cac(&["run", "--config", "/nonexistent/model.toml"]).unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn fault_injection_verify_and_lenient_replay() {
    let dir = temp_dir("faults");
    let clean = dir.join("clean.bin");
    let bad = dir.join("bad.bin");
    let Some(out) = cac(&[
        "trace",
        "gen",
        "--bench",
        "swim",
        "--ops",
        "20000",
        "--out",
        clean.to_str().unwrap(),
    ]) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    assert_eq!(out.status.code(), Some(0));

    // A clean file audits clean, exit 0.
    let out = cac(&["trace", "info", clean.to_str().unwrap(), "--verify", "true"]).unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("clean"), "{}", stdout(&out));

    // Injected truncation damages the file deterministically; the
    // audit reports it and exits 1 (report-with-failures).
    let out = cac(&[
        "trace",
        "gen",
        "--bench",
        "swim",
        "--ops",
        "20000",
        "--out",
        bad.to_str().unwrap(),
        "--inject",
        "truncate=30000",
    ])
    .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let out = cac(&["trace", "info", bad.to_str().unwrap(), "--verify", "true"]).unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("DAMAGED"), "{}", stdout(&out));

    // Strict replay refuses the damaged file (3); lenient completes,
    // reports what it skipped, and exits 1.
    let out = cac(&["replay", "--trace", bad.to_str().unwrap()]).unwrap();
    assert_eq!(out.status.code(), Some(3));
    let out = cac(&[
        "replay",
        "--trace",
        bad.to_str().unwrap(),
        "--mode",
        "lenient",
    ])
    .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("skipped"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_resumes_byte_identically() {
    let dir = temp_dir("ckpt");
    let configs = shipped_configs();
    assert!(configs.len() >= 12);
    let all = configs.join(",");
    let subset = configs[..3].join(",");
    let j1 = dir.join("full.journal");
    let j2 = dir.join("resume.journal");
    let run = |config: &str, journal: &PathBuf| {
        cac(&[
            "run",
            "--config",
            config,
            "--bench",
            "swim",
            "--ops",
            "5000",
            "--checkpoint",
            journal.to_str().unwrap(),
        ])
    };

    // Uninterrupted full run.
    let Some(full) = run(&all, &j1) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    assert_eq!(
        full.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&full.stderr)
    );

    // "Killed" run: only a subset completes, then the full grid
    // resumes against the same journal. Output must be byte-identical
    // to the uninterrupted run.
    let partial = run(&subset, &j2).unwrap();
    assert_eq!(partial.status.code(), Some(0));
    let resumed = run(&all, &j2).unwrap();
    assert_eq!(resumed.status.code(), Some(0));
    assert_eq!(
        stdout(&full),
        stdout(&resumed),
        "resumed report differs from uninterrupted report"
    );

    // A journal recorded for a different workload is refused (exit 3).
    let out = cac(&[
        "run",
        "--config",
        &subset,
        "--bench",
        "swim",
        "--ops",
        "6000",
        "--checkpoint",
        j2.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different workload"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_config_degrades_without_touching_siblings() {
    let dir = temp_dir("poison");
    let poison = dir.join("poison.toml");
    std::fs::write(&poison, "[poison]\nafter = 1000\n").unwrap();
    let grid = format!(
        "examples/ipoly_skewed.toml,{},examples/two_way.toml",
        poison.to_str().unwrap()
    );
    let Some(out) = cac(&["run", "--config", &grid, "--bench", "swim", "--ops", "5000"]) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    // The grid completes (exit 1 = report carries failures) and the
    // healthy rows are intact.
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("poison model tripped"), "{text}");
    // Both healthy siblings completed with real numbers (their table
    // rows lead with the config path).
    let healthy: Vec<&str> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("examples/"))
        .collect();
    assert_eq!(healthy.len(), 2, "{text}");
    for line in healthy {
        assert!(line.contains("ok"), "healthy row degraded: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_sweep_matches_unjournaled_sweep() {
    let dir = temp_dir("sweep-ckpt");
    let journal = dir.join("sweep.journal");
    let base = ["sweep", "--max-stride", "24", "--passes", "2"];
    let Some(plain) = cac(&base) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    let mut with_ckpt: Vec<&str> = base.to_vec();
    with_ckpt.extend(["--checkpoint", journal.to_str().unwrap()]);
    let first = cac(&with_ckpt).unwrap();
    let second = cac(&with_ckpt).unwrap();
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(first.status.code(), Some(0));
    assert_eq!(second.status.code(), Some(0));
    assert_eq!(stdout(&plain), stdout(&first), "journaled sweep diverged");
    assert_eq!(stdout(&first), stdout(&second), "resumed sweep diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_config_fails_with_a_grounded_message() {
    let dir = std::env::temp_dir().join(format!("cac-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "[cache]\nsize = 3000\n").unwrap();
    let Some(out) = cac(&["config", "validate", bad.to_str().unwrap()]) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("power of two"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analytic_predict_renders_every_format() {
    let Some(out) = cac(&[
        "--format", "json", "analytic", "predict", "--bench", "swim", "--ops", "40000",
    ]) else {
        return;
    };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "{text}"
    );
    assert!(text.contains("predicted miss-ratio grid"), "{text}");
    assert!(text.contains("birthday conflict bounds"), "{text}");

    // CSV keeps both tables, separated by `# table:` markers.
    let out = cac(&[
        "--format", "csv", "analytic", "predict", "--bench", "swim", "--ops", "40000",
    ])
    .unwrap();
    assert!(out.status.success());
    let csv = stdout(&out);
    assert!(csv.contains("# table: predicted miss-ratio grid"), "{csv}");
    assert!(csv.contains("# table: birthday conflict bounds"), "{csv}");
}

#[test]
fn analytic_validate_passes_the_shipped_examples_and_round_trips_json() {
    let configs = shipped_configs();
    let mut args = vec!["--format", "json", "analytic", "validate"];
    args.extend(configs.iter().map(String::as_str));
    args.extend(["--bench", "tomcatv", "--ops", "60000"]);
    let Some(out) = cac(&args) else { return };
    assert!(
        out.status.success(),
        "validation must pass the documented bound; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "{text}"
    );
    assert!(text.contains("model vs simulation"), "{text}");
    assert!(text.contains("\"summary\""), "{text}");
    assert!(text.contains("PASS"), "{text}");
}

#[test]
fn analytic_validate_exit_codes() {
    // 1: validation ran but the model exceeded the (impossible) bound.
    let Some(out) = cac(&[
        "analytic",
        "validate",
        "examples/ipoly.toml",
        "--bench",
        "tomcatv",
        "--ops",
        "40000",
        "--bound",
        "0",
    ]) else {
        return;
    };
    assert_eq!(out.status.code(), Some(1), "over-bound validation exits 1");
    assert!(stdout(&out).contains("FAIL"));

    // 2: usage errors (no configs; malformed bound).
    let out = cac(&["analytic", "validate"]).unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cac(&[
        "analytic",
        "validate",
        "examples/ipoly.toml",
        "--bound",
        "wide",
    ])
    .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // 3: input errors (missing config file).
    let out = cac(&["analytic", "validate", "/nonexistent/model.toml"]).unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn pruned_sweep_reports_screened_cells() {
    let Some(out) = cac(&[
        "sweep",
        "--max-stride",
        "64",
        "--passes",
        "4",
        "--prune",
        "analytic",
    ]) else {
        return;
    };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("PRUNED(predicted="), "{text}");
    assert!(text.contains("analytic screen:"), "{text}");
}

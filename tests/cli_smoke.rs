//! Root-package integration smoke: shell the workspace-built `cac` CLI.
//!
//! The root `cac` package's other tests exercise the *library* across
//! crate boundaries; this suite makes the top-level `cargo test`
//! meaningful for the *binary* too, by driving the real `cac`
//! executable the way a user (and CI) does — including the declarative
//! config workflow (`cac run --config`, `cac config validate`).
//!
//! The binary comes from the tier-1 flow (`cargo build --release &&
//! cargo test`): we look for `target/release/cac`, then
//! `target/debug/cac`. If neither exists the suite prints a skip notice
//! rather than failing — run `cargo build --release` first for full
//! coverage. The complete workspace test suite is
//! `cargo test --workspace` (see README).

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn cac_binary() -> Option<PathBuf> {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("target"));
    ["release", "debug"]
        .iter()
        .map(|p| target.join(p).join("cac"))
        .find(|p| p.exists())
}

/// Runs `cac` with `args`; `None` means the binary is not built yet
/// (skip with a notice).
fn cac(args: &[&str]) -> Option<Output> {
    let bin = match cac_binary() {
        Some(b) => b,
        None => {
            eprintln!(
                "cli_smoke: skipping — build the CLI first (`cargo build --release`); \
                 the full suite is `cargo test --workspace`"
            );
            return None;
        }
    };
    Some(
        Command::new(bin)
            .args(args)
            .current_dir(repo_root())
            .output()
            .expect("spawn cac"),
    )
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn list_names_the_full_command_surface() {
    let Some(out) = cac(&["list"]) else { return };
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "fig1",
        "table2",
        "replay",
        "trace-gen",
        "run",
        "config-validate",
    ] {
        assert!(text.contains(cmd), "cac list lost {cmd:?}:\n{text}");
    }
}

#[test]
fn fig1_renders_json() {
    let Some(out) = cac(&["--format", "json", "fig1", "16", "2"]) else {
        return;
    };
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("a2-Hp-Sk"));
}

#[test]
fn run_replays_a_config_end_to_end() {
    let Some(out) = cac(&[
        "--format",
        "json",
        "run",
        "--config",
        "examples/ipoly_skewed.toml",
        "--bench",
        "swim",
        "--ops",
        "20000",
    ]) else {
        return;
    };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("demand stream"), "{text}");
    assert!(text.contains("\"accesses\""), "{text}");
}

#[test]
fn config_validate_covers_every_shipped_example() {
    let examples = repo_root().join("examples");
    let mut files: Vec<String> = std::fs::read_dir(&examples)
        .expect("examples/ exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "toml").then(|| p.to_str().unwrap().to_owned())
        })
        .collect();
    files.sort();
    assert!(files.len() >= 12, "shipped config set shrank: {files:?}");
    let mut args = vec!["config", "validate"];
    args.extend(files.iter().map(String::as_str));
    let Some(out) = cac(&args) else { return };
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("ok"));
}

#[test]
fn invalid_config_fails_with_a_grounded_message() {
    let dir = std::env::temp_dir().join(format!("cac-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "[cache]\nsize = 3000\n").unwrap();
    let Some(out) = cac(&["config", "validate", bad.to_str().unwrap()]) else {
        std::fs::remove_dir_all(&dir).ok();
        return;
    };
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("power of two"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

//! Integration tests for the beyond-paper extension subsystems: the §2.1
//! related-work placement functions, the interleaved-memory substrate,
//! the §3.1 option-1 (TLB) and option-2 (page-size) machinery, the §3.3
//! coherence-hole bus, and the scientific address patterns — all
//! exercised across crate boundaries.

use cac::core::{CacheGeometry, IndexSpec};
use cac::cpu::{CpuConfig, Processor, TranslationModel};
use cac::interleave::{stride_sweep, summarize, BankConfig, InterleavedMemory};
use cac::sim::cache::Cache;
use cac::sim::classify::{MissKind, ThreeCClassifier};
use cac::sim::coherence::SnoopingBus;
use cac::sim::hierarchy::TwoLevelHierarchy;
use cac::sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
use cac::sim::vm::PageMapper;
use cac::trace::kernels::mem_refs;
use cac::trace::patterns::{CsrSpmv, FftButterfly, Stencil5, TiledMatMul};
use cac::trace::spec::SpecBenchmark;

fn paper_geom() -> CacheGeometry {
    CacheGeometry::new(8 * 1024, 32, 2).unwrap()
}

// ---------------------------------------------------------------- E11 --

#[test]
fn every_related_work_scheme_beats_conventional_on_the_bad_programs() {
    // All §2.1 alternatives — skewed XOR, prime, additive skew, random
    // table, XOR matrix, I-Poly — fix the tomcatv-style column conflicts;
    // that is precisely why the paper surveys them.
    let mut conv_miss = 0.0f64;
    {
        let mut c = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
        for r in mem_refs(SpecBenchmark::Tomcatv.generator(3).take(60_000)) {
            c.access(r.addr, r.is_write);
        }
        conv_miss = conv_miss.max(c.stats().read_miss_ratio());
    }
    assert!(conv_miss > 0.3, "conventional baseline not pathological");
    for spec in IndexSpec::related_work_suite().into_iter().skip(1) {
        let mut c = Cache::build(paper_geom(), spec.clone()).unwrap();
        for r in mem_refs(SpecBenchmark::Tomcatv.generator(3).take(60_000)) {
            c.access(r.addr, r.is_write);
        }
        let miss = c.stats().read_miss_ratio();
        assert!(
            miss < conv_miss / 2.0,
            "{spec}: {miss:.3} vs conventional {conv_miss:.3}"
        );
    }
}

#[test]
fn related_work_schemes_work_at_degenerate_geometries() {
    // 1-set (fully associative) and 1-way (direct-mapped) corners.
    let fa = CacheGeometry::fully_associative(1024, 32).unwrap();
    let dm = CacheGeometry::new(512, 32, 1).unwrap();
    for spec in IndexSpec::related_work_suite() {
        for geom in [fa, dm] {
            let f = spec.build(geom).unwrap();
            for addr in [0u64, 31, 32, 0xffff_ffff, u64::MAX >> 8] {
                for w in 0..geom.ways().min(2) {
                    assert!(
                        f.set_index(geom.block_addr(addr), w) < geom.num_sets(),
                        "{spec} at {geom}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- E12 --

#[test]
fn interleave_and_cache_agree_on_the_stride_story() {
    // The same placement function family that fixes cache conflicts fixes
    // bank conflicts: measure both substrates with the same spec.
    let cfg = BankConfig::new(16, 8, 6).unwrap();
    let sweep_conv = stride_sweep(cfg, IndexSpec::modulo(), 64, 512).unwrap();
    let sweep_poly = stride_sweep(cfg, IndexSpec::ipoly(), 64, 512).unwrap();
    let conv = summarize(&sweep_conv, 0.5);
    let poly = summarize(&sweep_poly, 0.5);
    assert!(poly.degraded < conv.degraded);

    // Cache side: stride 16 words (= bank count) is the worst bank stride
    // and also a set-colliding cache stride at 4KB spacing.
    let mut conv_cache = Cache::build(paper_geom(), IndexSpec::modulo()).unwrap();
    let mut poly_cache = Cache::build(paper_geom(), IndexSpec::ipoly()).unwrap();
    for pass in 0..8 {
        for i in 0..64u64 {
            let addr = i * 4096 + pass; // pathological column stride
            conv_cache.read(addr);
            poly_cache.read(addr);
        }
    }
    assert!(conv_cache.stats().miss_ratio() > 0.9);
    assert!(poly_cache.stats().miss_ratio() < 0.2);
}

#[test]
fn interleaved_memory_conserves_every_request_with_cache_specs() {
    let cfg = BankConfig::new(8, 8, 4).unwrap().with_buffer_depth(2);
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly(), IndexSpec::prime()] {
        let mut m = InterleavedMemory::build(cfg, spec).unwrap();
        for i in 0..500u64 {
            m.access(i * 24);
        }
        assert_eq!(m.stats().requests, 500);
        assert_eq!(m.stats().per_bank.iter().sum::<u64>(), 500);
    }
}

// ---------------------------------------------------------------- E13 --

#[test]
fn option1_cpu_run_is_slower_but_not_broken() {
    let ops = 30_000;
    let virt = {
        let mut cpu =
            Processor::new(CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap()).unwrap();
        cpu.run(SpecBenchmark::Swim.generator(7), ops)
    };
    let phys = {
        let config = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
            .unwrap()
            .with_physical_indexing(TranslationModel::physically_indexed());
        let mut cpu = Processor::new(config).unwrap();
        cpu.run(SpecBenchmark::Swim.generator(7), ops)
    };
    assert_eq!(virt.instructions, phys.instructions);
    assert!(
        phys.ipc() > 0.1,
        "physical indexing must still make progress"
    );
    assert!(
        phys.ipc() <= virt.ipc() * 1.02,
        "translation latency cannot make the processor faster: {} vs {}",
        phys.ipc(),
        virt.ipc()
    );
    let tlb = phys.tlb.expect("option 1 reports TLB stats");
    assert!(tlb.accesses > 0);
    assert!(virt.tlb.is_none());
}

// ---------------------------------------------------------------- E14 --

#[test]
fn option2_controller_follows_a_process_lifetime() {
    let mut cache =
        DynamicIndexCache::new(paper_geom(), IndexSpec::ipoly_skewed(), 256 * 1024).unwrap();
    // Phase 1: large pages, the tomcatv kernel is clean.
    cache
        .map_segment(Segment::new(0, 1 << 28, 1 << 18).unwrap())
        .unwrap();
    assert_eq!(cache.mode(), IndexMode::IPoly);
    for _ in 0..8 {
        for i in 0..64u64 {
            cache.read(i * 4096);
        }
    }
    let phase1 = cache.stats();
    assert_eq!(phase1.misses, 64, "compulsory only under I-Poly");

    // Phase 2: a 4KB-page mmap forces conventional indexing.
    cache
        .map_segment(Segment::new(1 << 32, 1 << 20, 4096).unwrap())
        .unwrap();
    assert_eq!(cache.mode(), IndexMode::Conventional);
    for _ in 0..8 {
        for i in 0..64u64 {
            cache.read(i * 4096);
        }
    }
    let phase2 = cache.stats();
    assert!(
        phase2.misses > phase1.misses + 300,
        "conventional phase must conflict: {} misses",
        phase2.misses
    );
    assert_eq!(cache.flushes(), 2);
}

// ---------------------------------------------------------------- E15 --

#[test]
fn coherence_holes_are_index_function_independent() {
    let run = |spec: IndexSpec| -> (u64, f64) {
        let node = || {
            TwoLevelHierarchy::new(
                paper_geom(),
                spec.clone(),
                CacheGeometry::new(256 * 1024, 32, 2).unwrap(),
                IndexSpec::modulo(),
                PageMapper::identity(),
            )
            .unwrap()
        };
        let mut bus = SnoopingBus::new(vec![node(), node()]).unwrap();
        for round in 0..64u64 {
            let writer = (round % 2) as usize;
            for blk in 0..32u64 {
                bus.write(writer, 0x10_0000 + blk * 32).unwrap();
            }
            for node in 0..2 {
                for blk in 0..32u64 {
                    bus.read(node, 0x10_0000 + blk * 32).unwrap();
                }
                for i in 0..64u64 {
                    bus.read(node, ((node as u64 + 1) << 32) + i * 4096)
                        .unwrap();
                }
            }
        }
        assert!(bus.check_invariants());
        let holes = bus.node(0).unwrap().stats().external_invalidations_l1
            + bus.node(1).unwrap().stats().external_invalidations_l1;
        let miss = (bus.node(0).unwrap().l1_stats().miss_ratio()
            + bus.node(1).unwrap().l1_stats().miss_ratio())
            / 2.0;
        (holes, miss)
    };
    let (conv_holes, conv_miss) = run(IndexSpec::modulo());
    let (poly_holes, poly_miss) = run(IndexSpec::ipoly_skewed());
    // Miss ratios differ wildly; coherence holes differ by at most ~15%
    // (conventional conflicts occasionally evict a shared block first).
    assert!(conv_miss > poly_miss * 1.5);
    let ratio = conv_holes as f64 / poly_holes as f64;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "coherence holes should be placement-independent: {conv_holes} vs {poly_holes}"
    );
}

// ---------------------------------------------------------------- E16 --

#[test]
fn tiled_matmul_pitch_sensitivity_is_removed_by_ipoly() {
    let run = |spec: IndexSpec, pitch: u64| {
        let mut c = Cache::build(paper_geom(), spec).unwrap();
        for r in TiledMatMul::new(128, 16, pitch).block_row() {
            c.access(r.addr, r.is_write);
        }
        c.stats().read_miss_ratio()
    };
    let conv_pow2 = run(IndexSpec::modulo(), 128 * 8);
    let conv_padded = run(IndexSpec::modulo(), 136 * 8);
    let poly_pow2 = run(IndexSpec::ipoly_skewed(), 128 * 8);
    let poly_padded = run(IndexSpec::ipoly_skewed(), 136 * 8);
    // Conventional: pitch choice is the difference between catastrophe
    // and health. I-Poly: the pitch barely matters.
    assert!(
        conv_pow2 > 4.0 * conv_padded,
        "{conv_pow2} vs {conv_padded}"
    );
    assert!(
        (poly_pow2 - poly_padded).abs() < 0.02,
        "{poly_pow2} vs {poly_padded}"
    );
    assert!(poly_pow2 < conv_pow2 / 4.0);
}

#[test]
fn fft_column_pass_reuse_survives_only_under_ipoly() {
    let n = 128u64;
    let pitch = n * 16;
    let run = |spec: IndexSpec| {
        let mut c = Cache::build(paper_geom(), spec).unwrap();
        for col in 0..n {
            for r in FftButterfly::new(col * 16, 7, pitch).full_transform() {
                c.access(r.addr, r.is_write);
            }
        }
        c.stats().miss_ratio()
    };
    let conv = run(IndexSpec::modulo());
    let poly = run(IndexSpec::ipoly_skewed());
    assert!(conv > 0.4, "conventional column FFT must thrash: {conv}");
    assert!(poly < 0.1, "I-Poly column FFT must reuse: {poly}");
}

#[test]
fn stencil_row_pitch_conflicts_are_classified_as_conflict_misses() {
    // The 3C classifier should attribute the conventional cache's extra
    // misses on a power-of-two-pitch stencil to *conflicts*, not capacity.
    let mut classifier = ThreeCClassifier::new(paper_geom(), IndexSpec::modulo()).unwrap();
    let stencil = Stencil5::new(0, 32, 32, 8192, 8); // 8KB pitch: vertical neighbours collide
    for _ in 0..4 {
        for r in stencil.sweep() {
            classifier.access(r.addr, r.is_write);
        }
    }
    let s = classifier.stats();
    assert!(
        s.conflict_miss_ratio() > 0.1,
        "conflicts expected, got {:?}",
        s
    );

    let mut poly = ThreeCClassifier::new(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
    for _ in 0..4 {
        for r in stencil.sweep() {
            poly.access(r.addr, r.is_write);
        }
    }
    assert!(poly.stats().conflict_miss_ratio() < s.conflict_miss_ratio() / 2.0);
}

#[test]
fn spmv_gathers_are_placement_insensitive() {
    // Random gathers: no placement function can help or hurt much — the
    // control case for the whole study.
    let run = |spec: IndexSpec| {
        let mut c = Cache::build(paper_geom(), spec).unwrap();
        for _ in 0..3 {
            for r in CsrSpmv::new(256, 8, 4096, 5).product() {
                c.access(r.addr, r.is_write);
            }
        }
        c.stats().miss_ratio()
    };
    let conv = run(IndexSpec::modulo());
    let poly = run(IndexSpec::ipoly_skewed());
    assert!(
        (conv - poly).abs() < 0.05,
        "SpMV should not care about placement: {conv} vs {poly}"
    );
}

#[test]
fn buffers_and_placement_attack_different_miss_classes() {
    // Reference [13] (victim + stream buffers) vs the paper's placement:
    // the conflict trio favours placement, streaming codes favour
    // prefetch — the E10 finding, pinned as a test.
    use cac::sim::jouppi::JouppiCache;
    let dm = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
    let run_jouppi = |b: SpecBenchmark| {
        let mut c = JouppiCache::new(dm, 4, 4, 4).unwrap();
        let mut reads = 0u64;
        for r in mem_refs(b.generator(5).take(80_000)).filter(|r| !r.is_write) {
            reads += 1;
            c.read(r.addr);
        }
        c.stats().full_misses as f64 / reads as f64
    };
    let run_ipoly = |b: SpecBenchmark| {
        let mut c = Cache::build(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
        for r in mem_refs(b.generator(5).take(80_000)) {
            c.access(r.addr, r.is_write);
        }
        c.stats().read_miss_ratio()
    };
    // High-conflict program: placement wins.
    assert!(run_ipoly(SpecBenchmark::Tomcatv) < run_jouppi(SpecBenchmark::Tomcatv));
    // Streaming FP program: prefetch wins.
    assert!(run_jouppi(SpecBenchmark::Applu) < run_ipoly(SpecBenchmark::Applu));
}

// ----------------------------------------------------- classification --

#[test]
fn classifier_sees_no_conflicts_for_ipoly_on_power_of_two_strides() {
    let mut classifier = ThreeCClassifier::new(paper_geom(), IndexSpec::ipoly_skewed()).unwrap();
    let mut kinds = Vec::new();
    for _ in 0..4 {
        for i in 0..64u64 {
            kinds.push(classifier.read(i * 4096));
        }
    }
    assert!(
        !kinds.contains(&MissKind::Conflict),
        "I-Poly must not conflict on the 4KB stride"
    );
}

//! Direct checks of the paper's quantitative side claims, spanning the
//! gf2 / core / sim crates.

use cac::core::holes::HoleModel;
use cac::core::{AddressPredictor, CacheGeometry, IndexSpec};
use cac::gf2::xor_tree::{min_fan_in_poly, XorTree};
use cac::sim::cache::Cache;
use cac::sim::column::ColumnAssociative;
use cac::sim::hierarchy::TwoLevelHierarchy;
use cac::sim::vm::PageMapper;
use cac::trace::kernels::mem_refs;
use cac::trace::spec::SpecBenchmark;
use cac::trace::stride::VectorStride;

#[test]
fn hole_model_worked_example() {
    // §3.3: "an 8KB L1 cache and a 256KB L2 cache with 32 byte lines
    // yield P_H = 0.031".
    let l1 = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
    let l2 = CacheGeometry::new(256 * 1024, 32, 1).unwrap();
    let m = HoleModel::from_geometries(l1, l2).unwrap();
    assert!((m.p_hole_per_l2_miss() - 0.031).abs() < 0.001);
}

#[test]
fn xor_fan_in_claim() {
    // §3.4: "the number of inputs is never higher than 5" with 19 address
    // bits for the paper's polynomials.
    for m in [7, 8] {
        let tree = XorTree::new(min_fan_in_poly(m, 14), 14);
        assert!(tree.max_fan_in() <= 5, "degree {m}: {}", tree.max_fan_in());
    }
}

#[test]
fn stride_insensitivity_theorem() {
    // §2.1.2: all strides 2^k produce conflict-free sequences.
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    for k in 0..=9u32 {
        let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed()).unwrap();
        for r in VectorStride::paper_figure1(1 << k, 8) {
            cache.read(r.addr);
        }
        // 8 passes over 64 elements: only the first pass may miss.
        let stats = cache.stats();
        assert!(
            stats.misses <= 64,
            "stride 2^{k}: {} misses (conflicts!)",
            stats.misses
        );
    }
}

#[test]
fn conventional_cache_has_pathological_power_strides() {
    // The contrast that motivates the paper.
    let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let mut cache = Cache::build(geom, IndexSpec::modulo()).unwrap();
    for r in VectorStride::paper_figure1(512, 8) {
        cache.read(r.addr);
    }
    assert!(cache.stats().miss_ratio() > 0.9);
}

#[test]
fn column_associative_first_probe_rate() {
    // §3.1: "a typical probability of around 90% that a hit is detected
    // at the first probe".
    let geom = CacheGeometry::new(8 * 1024, 32, 1).unwrap();
    let mut rates = Vec::new();
    for b in SpecBenchmark::all() {
        let mut col = ColumnAssociative::new(geom).unwrap();
        for r in mem_refs(b.generator(3).take(60_000)).filter(|r| !r.is_write) {
            col.read(r.addr);
        }
        rates.push(col.stats().first_probe_hit_fraction());
    }
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(avg > 0.80, "first-probe rate {avg:.3}");
    assert!(avg <= 1.0);
}

#[test]
fn predictability_of_spec_loads() {
    // §3.4 (citing [9]): around 75% of dynamic loads are predictable; our
    // synthetic workloads are at least that regular.
    let mut total = 0.0;
    for b in SpecBenchmark::all() {
        let mut p = AddressPredictor::paper_default();
        for op in b.generator(11).take(60_000) {
            if op.is_load() {
                p.observe(op.pc, op.addr.unwrap());
            }
        }
        total += p.stats().usable_rate();
    }
    assert!(total / 18.0 > 0.70, "usable rate {:.3}", total / 18.0);
}

#[test]
fn holes_are_rare_with_a_big_l2() {
    // §3.3 simulation: with a 1MB L2, the percentage of L2 misses that
    // create a hole "averaged less than 0.1% and was never greater than
    // 1.2%". Use a subset of benchmarks to keep the test fast.
    let l1 = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
    let l2 = CacheGeometry::new(1024 * 1024, 32, 2).unwrap();
    for b in [
        SpecBenchmark::Tomcatv,
        SpecBenchmark::Gcc,
        SpecBenchmark::Compress,
    ] {
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            IndexSpec::modulo(),
            PageMapper::randomized(4096, 1 << 30, 42),
        )
        .unwrap();
        for r in mem_refs(b.generator(7).take(150_000)) {
            h.access(r.addr, r.is_write);
        }
        assert!(h.hole_rate() < 0.02, "{b}: hole rate {:.4}", h.hole_rate());
        assert!(h.check_inclusion(), "{b}: inclusion violated");
    }
}
